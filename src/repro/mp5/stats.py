"""Statistics collected during an MP5 simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class SwitchStats:
    """Counters and distributions gathered by the switch engine."""

    offered: int = 0
    egressed: int = 0
    dropped: int = 0
    drops_fifo_full: int = 0
    drops_no_phantom: int = 0
    drops_starvation: int = 0
    wasted_slots: int = 0  # conservative phantoms whose guard was false
    steering_moves: int = 0  # crossbar moves to a different pipeline
    phantoms_generated: int = 0
    # Phantoms lost in flight by §3.5.1 fault injection. Distinct from
    # drops_fifo_full: the FIFO had room, the channel lost the packet.
    phantoms_lost: int = 0
    remap_moves: int = 0
    # Fault-injection accounting (repro.faults). drops_crossbar counts
    # packets lost to a failed crossbar port; the emergency_* counters
    # track the degradation protocol's remap attempts/index moves.
    drops_crossbar: int = 0
    emergency_remaps: int = 0
    emergency_remap_moves: int = 0
    ticks: int = 0
    max_queue_depth: int = 0
    ecn_marked: int = 0  # packets marked by the §3.4 queue-threshold scheme
    # Per-packet pipeline latency (egress tick - arrival tick).
    latencies: List[float] = field(default_factory=list)
    # Egress timestamps for windowed throughput computation.
    egress_ticks: List[int] = field(default_factory=list)
    arrival_ticks: List[float] = field(default_factory=list)
    # Observed access order per state: (array, index) -> [pkt ids].
    access_order: Dict[Tuple[str, Optional[int]], List[int]] = field(
        default_factory=dict
    )
    # Per-flow egress order for reordering analysis: flow -> [pkt ids].
    flow_egress: Dict[int, List[int]] = field(default_factory=dict)
    per_stage_peak_queue: Dict[Tuple[int, int], int] = field(default_factory=dict)
    # Every drop bucketed by reason string (superset of the dedicated
    # drops_* counters; the degraded equivalence contract audits it).
    drops_by_reason: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------

    @property
    def delivery_ratio(self) -> float:
        return self.egressed / self.offered if self.offered else 0.0

    def throughput_normalized(self, warmup_fraction: float = 0.5) -> float:
        """Steady-state egress rate normalized to the offered rate.

        Measures both rates over the tail window starting after
        ``warmup_fraction`` of the arrival interval, which skips pipeline
        fill and initial sharding transients.
        """
        if not self.arrival_ticks or not self.egress_ticks:
            return 0.0
        first = min(self.arrival_ticks)
        last = max(self.arrival_ticks)
        if last <= first:
            return 1.0
        window_start = first + (last - first) * warmup_fraction
        window = last - window_start
        if window <= 0:
            return 1.0
        arrivals = sum(1 for t in self.arrival_ticks if t >= window_start)
        egresses = sum(
            1 for t in self.egress_ticks if window_start <= t <= last
        )
        if arrivals == 0:
            return 1.0
        return min(1.0, egresses / arrivals)

    def reordered_flows(self) -> int:
        """Number of flows whose packets egressed out of arrival order."""
        return sum(
            1
            for order in self.flow_egress.values()
            if any(b < a for a, b in zip(order, order[1:]))
        )

    def reordered_packets(self) -> int:
        """Packets that egressed before an earlier-arrived flow-mate."""
        count = 0
        for order in self.flow_egress.values():
            high = -1
            for pkt_id in order:
                if pkt_id < high:
                    count += 1
                else:
                    high = pkt_id
        return count

    def latency_percentile(self, percentile: float) -> float:
        """Pipeline latency percentile in ticks (0 when nothing egressed)."""
        if not 0.0 <= percentile <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = min(
            len(ordered) - 1, max(0, int(round(percentile / 100 * (len(ordered) - 1))))
        )
        return ordered[rank]

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def summary(self) -> Dict[str, float]:
        return {
            "offered": self.offered,
            "egressed": self.egressed,
            "dropped": self.dropped,
            "drops_fifo_full": self.drops_fifo_full,
            "drops_no_phantom": self.drops_no_phantom,
            "drops_starvation": self.drops_starvation,
            "drops_crossbar": self.drops_crossbar,
            "throughput": self.throughput_normalized(),
            "delivery_ratio": self.delivery_ratio,
            "wasted_slots": self.wasted_slots,
            "steering_moves": self.steering_moves,
            "phantoms": self.phantoms_generated,
            "phantoms_lost": self.phantoms_lost,
            "remap_moves": self.remap_moves,
            "emergency_remap_moves": self.emergency_remap_moves,
            "max_queue_depth": self.max_queue_depth,
            "ticks": self.ticks,
            "mean_latency": self.mean_latency,
            "p99_latency": self.latency_percentile(99),
            "ecn_marked": self.ecn_marked,
        }


@dataclass
class C1Report:
    """Both readings of "fraction of packets that violate C1" (§4.3.2).

    ``displaced_fraction`` counts packets whose position in some state's
    observed access sequence differs from their arrival rank — a strict,
    involvement-based reading. ``inversion_fraction`` counts state-access
    events that happen out of order w.r.t. the immediately preceding
    access of the same state — an event-density reading. Both are zero
    exactly when C1 holds; they differ in how widely a single reordering
    is charged.
    """

    displaced_packets: int
    displaced_fraction: float
    inversions: int
    inversion_fraction: float

    @property
    def violated(self) -> bool:
        return self.displaced_packets > 0


def c1_metrics(
    reference_order: Dict[Tuple[str, int], List[int]],
    observed_order: Dict[Tuple[str, Optional[int]], List[int]],
    total_packets: int,
) -> C1Report:
    """Compute both C1 violation metrics for an observed access order."""
    violators = set()
    inversions = 0
    total_accesses = 0
    for key, observed in observed_order.items():
        total_accesses += len(observed)
        expected = reference_order.get(key)
        if expected is None or len(expected) != len(observed):
            expected = sorted(observed)
        for want, got in zip(expected, observed):
            if want != got:
                violators.add(got)
        for a, b in zip(observed, observed[1:]):
            if b < a:
                inversions += 1
    return C1Report(
        displaced_packets=len(violators),
        displaced_fraction=len(violators) / total_packets if total_packets else 0.0,
        inversions=inversions,
        inversion_fraction=inversions / total_accesses if total_accesses else 0.0,
    )


def c1_violations(
    reference_order: Dict[Tuple[str, int], List[int]],
    observed_order: Dict[Tuple[str, Optional[int]], List[int]],
    total_packets: int,
) -> Tuple[int, float]:
    """Count packets violating condition C1 (state-access-order
    equivalence, §3).

    A packet violates C1 if, for some state, it accessed that state
    before another packet that arrived earlier (packet ids are assigned
    in arrival order, so id order is arrival order). Returns
    ``(violating_packet_count, fraction)``.
    """
    violators = set()
    for key, observed in observed_order.items():
        expected = reference_order.get(key)
        if expected is None or len(expected) != len(observed):
            # No usable reference sequence (e.g. a drop changed the
            # accessor set): arrival order must still hold within the
            # observed sequence, since packet ids are arrival-ordered.
            expected = sorted(observed)
        for want, got in zip(expected, observed):
            if want != got:
                violators.add(got)
    fraction = len(violators) / total_packets if total_packets else 0.0
    return len(violators), fraction
