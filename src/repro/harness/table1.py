"""Regenerate Table 1 (§4.2): chip area and clock speed vs (k, s)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..asic import (
    PAPER_TABLE1,
    chip_area_mm2,
    sram_overhead_paper_example,
    timing_report,
)
from .report import format_table

PIPELINE_COUNTS = (2, 4, 8)
STAGE_COUNTS = (4, 8, 12, 16)


@dataclass
class Table1Cell:
    pipelines: int
    stages: int
    area_mm2: float
    frequency_ghz: float
    meets_1ghz: bool
    paper_area_mm2: float


def run_table1() -> List[Table1Cell]:
    cells = []
    for k in PIPELINE_COUNTS:
        for s in STAGE_COUNTS:
            timing = timing_report(k, s)
            cells.append(
                Table1Cell(
                    pipelines=k,
                    stages=s,
                    area_mm2=round(chip_area_mm2(k, s), 3),
                    frequency_ghz=timing.frequency_ghz,
                    meets_1ghz=timing.meets_1ghz,
                    paper_area_mm2=PAPER_TABLE1[(k, s)],
                )
            )
    return cells


def render_table1(cells: List[Table1Cell] = None) -> str:
    """Render Table 1 (with the paper's values alongside)."""
    cells = cells or run_table1()
    rows = [
        (
            f"k={c.pipelines}",
            f"s={c.stages}",
            c.area_mm2,
            c.paper_area_mm2,
            f"{c.frequency_ghz:.2f} GHz",
            ">= 1 GHz" if c.meets_1ghz else "< 1 GHz",
        )
        for c in cells
    ]
    sram = sram_overhead_paper_example()
    table = format_table(
        ["pipelines", "stages", "area (model)", "area (paper)", "clock", "target"],
        rows,
        title="Table 1: chip area and clock speed vs pipelines (k) and stages (s)",
    )
    return (
        table
        + f"\nSRAM overhead (10 stateful stages x 1000 entries, 30 b/index): "
        + f"{sram.kilobytes:.1f} KB per pipeline"
    )
