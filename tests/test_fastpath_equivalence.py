"""Differential testing: fast engine vs the dense reference engine.

:class:`~repro.mp5.switch.MP5Switch` runs a sparse fast path (worklist
movement, tail teleport, precompiled operand readers, incremental queue
telemetry); :class:`~repro.mp5.reference.ReferenceSwitch` keeps the
original dense per-tick semantics. Every optimization in the fast path
is only admissible if the two engines produce tick-for-tick identical
:class:`~repro.mp5.stats.SwitchStats` and identical final register
state — this module asserts exactly that over fuzzed programs/traces
and over every config dimension that selects a different engine path
(phantom loss, starvation drops, ideal queues, ECN, flow ordering,
crossbar recording, phantom latency, tiny FIFOs).
"""

import numpy as np
import pytest

from repro.compiler import compile_program
from repro.errors import ConfigError
from repro.mp5 import MP5Config, MP5Switch, run_mp5, run_mp5_reference
from repro.obs import TraceRecorder, canonical_form
from repro.workloads import line_rate_trace
from repro.workloads.synthetic import make_sensitivity_program, sensitivity_trace

from tests.test_fuzz_equivalence import FIELDS, random_program


def _assert_engines_agree(
    program, trace_factory, config, max_ticks=None, record_access_order=False
):
    """Run both engines on identical inputs; the trace is regenerated
    per engine because the simulation mutates packet objects.

    Both runs record lifecycle events, and the event streams must match
    modulo tick-internal ordering (the fast path's worklist visits
    packets in a different within-tick order than the dense scan, which
    is exactly the freedom real hardware has)."""
    fast_rec, ref_rec = TraceRecorder(), TraceRecorder()
    fast_stats, fast_regs = run_mp5(
        program,
        trace_factory(),
        config,
        max_ticks=max_ticks,
        record_access_order=record_access_order,
        recorder=fast_rec,
    )
    ref_stats, ref_regs = run_mp5_reference(
        program,
        trace_factory(),
        config,
        max_ticks=max_ticks,
        record_access_order=record_access_order,
        recorder=ref_rec,
    )
    assert fast_stats == ref_stats
    assert fast_regs == ref_regs
    _assert_event_streams_match(fast_rec.events, ref_rec.events)
    return fast_stats


def _assert_event_streams_match(fast_events, ref_events):
    fast_canon = canonical_form(fast_events)
    ref_canon = canonical_form(ref_events)
    if fast_canon == ref_canon:
        return
    for tick in sorted(set(fast_canon) | set(ref_canon)):
        if fast_canon.get(tick) != ref_canon.get(tick):
            raise AssertionError(
                f"event streams diverge at tick {tick}:\n"
                f"  fast: {fast_canon.get(tick)}\n"
                f"  ref:  {ref_canon.get(tick)}"
            )


# ---------------------------------------------------------------------------
# Fuzzed programs on the default config
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(30))
def test_fuzzed_program_engines_agree(seed):
    rng = np.random.default_rng(1000 + seed)
    source = random_program(rng)
    program = compile_program(source, name=f"fp{seed}")
    k = int(rng.integers(1, 5))

    def trace_factory():
        return line_rate_trace(
            200,
            k,
            lambda r, i: {f: int(r.integers(0, 32)) for f in FIELDS},
            seed=seed,
        )

    _assert_engines_agree(program, trace_factory, MP5Config(num_pipelines=k))


# ---------------------------------------------------------------------------
# Targeted configs: every special-cased engine path
# ---------------------------------------------------------------------------

CONFIGS = {
    "default": dict(),
    "phantom_loss": dict(phantom_loss_rate=0.2),
    "starvation_tiny_fifo": dict(starvation_threshold=5, fifo_capacity=3),
    "tiny_fifo": dict(fifo_capacity=2),
    "ideal_queues": dict(ideal_queues=True),
    "no_phantoms": dict(enable_phantoms=False),
    "ecn_flow_order": dict(ecn_threshold=4, flow_order_field="f0"),
    "affinity_spray": dict(spray_policy="affinity"),
    "crossbar": dict(record_crossbar=True),
    "no_jit": dict(jit=False),
}


@pytest.mark.parametrize("name", sorted(CONFIGS))
@pytest.mark.parametrize("seed", (0, 1))
def test_engines_agree_on_config(name, seed):
    program = make_sensitivity_program(num_stateful=4, register_size=64)
    record = name == "ecn_flow_order"  # also exercise access-order logging

    def trace_factory():
        return sensitivity_trace(250, 4, 4, 64, seed=seed)

    stats = _assert_engines_agree(
        program,
        trace_factory,
        MP5Config(num_pipelines=4, **CONFIGS[name]),
        max_ticks=4000,
        record_access_order=record,
    )
    assert stats.egressed + stats.dropped > 0


def test_engines_agree_single_pipeline():
    program = make_sensitivity_program(num_stateful=2, register_size=16)

    def trace_factory():
        return sensitivity_trace(150, 1, 2, 16, seed=3)

    _assert_engines_agree(program, trace_factory, MP5Config(num_pipelines=1))


def test_engines_agree_skewed_pattern():
    program = make_sensitivity_program(num_stateful=4, register_size=64)

    def trace_factory():
        return sensitivity_trace(250, 4, 4, 64, pattern="skewed", seed=0)

    _assert_engines_agree(program, trace_factory, MP5Config(num_pipelines=4))


@pytest.mark.parametrize("seed", (0, 1))
def test_engines_agree_phantom_latency(seed):
    """Non-zero phantom latency needs slack before the first stateful
    stage; ewma_latency has one stateless stage of headroom."""
    program = compile_program("ewma_latency")
    fields = list(program.packet_fields)

    def trace_factory():
        return line_rate_trace(
            200,
            4,
            lambda r, i: {f: int(r.integers(0, 64)) for f in fields},
            seed=seed,
        )

    _assert_engines_agree(
        program,
        trace_factory,
        MP5Config(num_pipelines=4, phantom_latency=1),
    )


# ---------------------------------------------------------------------------
# Satellite bugfixes
# ---------------------------------------------------------------------------


def test_phantom_loss_counted_separately():
    """In-flight phantom losses land in ``phantoms_lost``, not in the
    FIFO-full drop counter."""
    program = make_sensitivity_program(num_stateful=4, register_size=64)
    config = MP5Config(num_pipelines=4, phantom_loss_rate=0.9)
    stats, _ = run_mp5(
        program, sensitivity_trace(100, 4, 4, 64, seed=0), config
    )
    assert stats.phantoms_lost > 0
    assert stats.drops_fifo_full == 0
    assert stats.summary()["phantoms_lost"] == stats.phantoms_lost


def test_switch_run_rejects_reuse():
    program = make_sensitivity_program(num_stateful=2, register_size=16)
    switch = MP5Switch(program, MP5Config(num_pipelines=2))
    switch.run(sensitivity_trace(50, 2, 2, 16, seed=0))
    with pytest.raises(ConfigError):
        switch.run(sensitivity_trace(50, 2, 2, 16, seed=1))
