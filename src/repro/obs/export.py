"""OpenMetrics / Prometheus text exposition for the metrics registry.

Turns a :class:`~repro.obs.metrics.MetricsRegistry` (live, or a saved
``metrics.json`` document) into the `OpenMetrics text format
<https://prometheus.io/docs/specs/om/open_metrics_spec/>`_ any
Prometheus-compatible scraper ingests::

    # TYPE mp5_egressed counter
    # HELP mp5_egressed Packets that left the switch.
    mp5_egressed_total 2000
    # TYPE mp5_queue_depth gauge
    mp5_queue_depth{pipe="0",stage="1"} 3
    ...
    # EOF

Three rules make the exposition stable and scrape-friendly:

* **Name sanitization** — series names are mapped onto the OpenMetrics
  charset (``[a-zA-Z_][a-zA-Z0-9_]*``) deterministically: every illegal
  character becomes ``_`` and a leading digit is prefixed with ``_``.
* **Lane labels** — the per-lane series ``queue_depth.p<k>.s<j>`` fold
  into one ``queue_depth`` family with ``pipe``/``stage`` labels
  instead of exploding into one family per FIFO.
* **Point-in-time semantics** — counters expose their running total,
  gauges their latest sample, histograms an OpenMetrics ``summary``
  (latest-window ``quantile`` samples plus running ``_count``/``_sum``).
  The per-window *series* stay in ``metrics.json``; the exposition is
  the scrape view, not the archive.

:func:`parse_openmetrics` is the minimal line parser the tests and the
CI service-smoke job validate expositions with — it checks framing
(``# EOF``), metadata ordering, name charset, label syntax, and sample
grouping, and returns the parsed families.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

PathLike = Union[str, Path]

__all__ = [
    "Family",
    "Sample",
    "families_from_snapshot",
    "families_from_values",
    "load_metrics_document",
    "parse_openmetrics",
    "render_families",
    "render_openmetrics",
    "sanitize_metric_name",
]

DEFAULT_PREFIX = "mp5_"

#: OpenMetrics metric types the renderer emits / the parser accepts.
KNOWN_TYPES = ("counter", "gauge", "summary", "unknown")

_NAME_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_]")
_LANE = re.compile(r"^(?P<base>.+)\.p(?P<pipe>\d+)\.s(?P<stage>\d+)$")

#: Help strings for the well-known switch series; anything else gets a
#: generic line. Keyed by the *raw* series name.
_HELP = {
    "egressed": "Packets that left the switch.",
    "dropped": "Packets dropped (all reasons).",
    "steering_moves": "Crossbar steering moves toward active pipelines.",
    "remap_moves": "Array indices moved by background remap epochs.",
    "phantoms_generated": "Phantom packets emitted toward stateful stages.",
    "phantoms_lost": "Phantoms lost in flight (fault injection).",
    "ecn_marked": "Packets ECN-marked by the queue-threshold scheme.",
    "wasted_slots": "Pipeline slots left idle by ordering stalls.",
    "queue_depth": "Data-packet occupancy of one stage FIFO.",
    "queue_depth_max": "Deepest stage FIFO at the window boundary.",
    "queue_depth_total": "Summed stage-FIFO occupancy at the boundary.",
    "fifo_drops_full": "Packets dropped by full stage FIFOs.",
    "fifo_drops_no_phantom": "Packets dropped for a missing phantom.",
    "sharder_moves": "Array indices moved by the sharding runtime.",
    "crossbar_crossings": "Inter-pipeline crossbar crossings.",
    "latency": "Per-packet ingress-to-egress latency in ticks.",
}


def sanitize_metric_name(name: str) -> str:
    """Deterministically map ``name`` onto the OpenMetrics charset.

    Every character outside ``[a-zA-Z0-9_]`` becomes ``_``; a leading
    digit is prefixed with ``_``; an empty name becomes ``_``. The map
    is stable: equal inputs always yield equal outputs.
    """
    out = _BAD_CHARS.sub("_", name)
    if not out:
        return "_"
    if out[0].isdigit():
        out = "_" + out
    return out


@dataclass
class Sample:
    """One exposition line: ``name{labels} value``."""

    suffix: str  # appended to the family name ("", "_total", "_count"...)
    labels: Tuple[Tuple[str, str], ...]
    value: float


@dataclass
class Family:
    """One metric family: a ``# TYPE``/``# HELP`` pair plus samples."""

    name: str
    kind: str
    help: str
    samples: List[Sample] = field(default_factory=list)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0`` so the
    exposition is stable across int/float sources."""
    number = float(value)
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _help_for(raw_name: str) -> str:
    return _HELP.get(raw_name, f"MP5 series {raw_name!r}.")


def families_from_values(
    values: Dict[str, float],
    kinds: Dict[str, str],
    prefix: str = DEFAULT_PREFIX,
    help_prefix: str = "",
    helps: Optional[Dict[str, str]] = None,
) -> List[Family]:
    """Build scalar families from a flat name → value mapping.

    ``kinds`` assigns ``counter``/``gauge`` per raw name; anything
    missing is exposed as ``unknown``. Lane-suffixed names
    (``base.p<k>.s<j>``) fold into one labelled family per base.
    ``helps`` overrides the help text per raw name (the service uses
    this so its families don't inherit switch-series descriptions).
    """
    families: Dict[str, Family] = {}
    for raw in sorted(values):
        lane = _LANE.match(raw)
        base = lane.group("base") if lane else raw
        kind = kinds.get(raw, kinds.get(base, "unknown"))
        name = prefix + sanitize_metric_name(base)
        family = families.get(name)
        if family is None:
            help_text = (helps or {}).get(base) or _help_for(base)
            family = families[name] = Family(
                name=name,
                kind=kind if kind in KNOWN_TYPES else "unknown",
                help=help_prefix + help_text,
            )
        labels: Tuple[Tuple[str, str], ...] = ()
        if lane:
            labels = (
                ("pipe", lane.group("pipe")),
                ("stage", lane.group("stage")),
            )
        suffix = "_total" if family.kind == "counter" else ""
        family.samples.append(Sample(suffix, labels, float(values[raw])))
    return [families[name] for name in sorted(families)]


def _summary_family(
    raw: str,
    window_rows: Sequence[Dict],
    totals: Dict[str, float],
    prefix: str,
) -> Family:
    name = prefix + sanitize_metric_name(raw)
    family = Family(name=name, kind="summary", help=_help_for(raw))
    if window_rows:
        last = window_rows[-1]
        for quantile, key in (("0.5", "p50"), ("0.99", "p99")):
            if key in last:
                family.samples.append(
                    Sample("", (("quantile", quantile),), float(last[key]))
                )
    count = float(totals.get(f"{raw}_count", 0))
    mean = float(totals.get(f"{raw}_mean", 0.0))
    family.samples.append(Sample("_count", (), count))
    family.samples.append(Sample("_sum", (), mean * count))
    return family


def families_from_snapshot(
    doc: Dict, prefix: str = DEFAULT_PREFIX
) -> List[Family]:
    """Families for a registry snapshot (``MetricsRegistry.to_dict()``
    shape, live or loaded from ``metrics.json``).

    Counters and gauges come from ``totals`` guided by the ``kinds``
    map (documents written before the map existed render as
    ``unknown``); each histogram renders as an OpenMetrics summary.
    """
    totals = doc.get("totals", {})
    kinds = doc.get("kinds", {})
    histograms = doc.get("histograms", {})
    scalar = {
        name: value
        for name, value in totals.items()
        if not any(
            name == f"{hist}_{part}"
            for hist in histograms
            for part in ("count", "mean")
        )
    }
    families = families_from_values(scalar, kinds, prefix=prefix)
    for raw in sorted(histograms):
        families.append(
            _summary_family(raw, histograms[raw], totals, prefix)
        )
    return sorted(families, key=lambda f: f.name)


def render_families(families: Sequence[Family]) -> str:
    """Render families as OpenMetrics text (terminated by ``# EOF``)."""
    lines: List[str] = []
    for family in families:
        if not _NAME_OK.match(family.name):
            raise ValueError(f"invalid metric family name {family.name!r}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        for sample in family.samples:
            label_text = ""
            if sample.labels:
                inner = ",".join(
                    f'{key}="{_escape_label(value)}"'
                    for key, value in sample.labels
                )
                label_text = "{" + inner + "}"
            lines.append(
                f"{family.name}{sample.suffix}{label_text} "
                f"{_format_value(sample.value)}"
            )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def render_openmetrics(
    source, prefix: str = DEFAULT_PREFIX, extra_families: Optional[List[Family]] = None
) -> str:
    """The one-call exposition: ``source`` is a live
    :class:`~repro.obs.metrics.MetricsRegistry` or a snapshot dict.

    ``extra_families`` (e.g. service-level counters) are prepended
    verbatim — the daemon uses this to serve one combined document at
    ``GET /metrics.prom``.
    """
    doc = source.to_dict() if hasattr(source, "to_dict") else source
    families = list(extra_families or []) + families_from_snapshot(
        doc, prefix=prefix
    )
    return render_families(families)


def load_metrics_document(path: PathLike) -> Dict:
    """Read a ``metrics.json`` written by ``MetricsRegistry.save``;
    raises ``ValueError`` on anything that is not one."""
    try:
        doc = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"not JSON: {exc}") from exc
    if not isinstance(doc, dict) or "totals" not in doc:
        raise ValueError("not a metrics document (missing 'totals')")
    return doc


# ----------------------------------------------------------------------
# Minimal validating parser (tests + CI smoke)
# ----------------------------------------------------------------------

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>.*)"$')

_SUFFIXES = ("_total", "_count", "_sum", "_bucket", "")


def _split_labels(text: str) -> Tuple[Tuple[str, str], ...]:
    if not text:
        return ()
    labels = []
    for part in text.split(","):
        match = _LABEL.match(part.strip())
        if not match:
            raise ValueError(f"malformed label {part!r}")
        labels.append(
            (
                match.group("key"),
                match.group("value")
                .replace('\\"', '"')
                .replace("\\n", "\n")
                .replace("\\\\", "\\"),
            )
        )
    return tuple(labels)


def parse_openmetrics(text: str) -> Dict[str, Dict]:
    """Parse and validate an OpenMetrics text exposition.

    Returns ``{family: {"type", "help", "samples": [(suffix, labels,
    value), ...]}}``. Raises ``ValueError`` on framing or syntax
    violations: missing ``# EOF`` terminator, content after it,
    duplicate or out-of-order metadata, bad names or labels, samples
    that do not group under the most recent family, unparseable values.
    """
    families: Dict[str, Dict] = {}
    current: Optional[str] = None
    saw_eof = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if saw_eof:
            raise ValueError(f"line {lineno}: content after # EOF")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE line")
            _, _, name, kind = parts
            if not _NAME_OK.match(name):
                raise ValueError(f"line {lineno}: bad family name {name!r}")
            if kind not in KNOWN_TYPES:
                raise ValueError(f"line {lineno}: unknown type {kind!r}")
            if name in families:
                raise ValueError(f"line {lineno}: duplicate TYPE for {name}")
            families[name] = {"type": kind, "help": None, "samples": []}
            current = name
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3:
                raise ValueError(f"line {lineno}: malformed HELP line")
            name = parts[2]
            if name != current:
                raise ValueError(
                    f"line {lineno}: HELP for {name!r} outside its "
                    f"family block (current: {current!r})"
                )
            families[name]["help"] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("#"):
            raise ValueError(f"line {lineno}: unknown comment {line!r}")
        match = _SAMPLE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        sample_name = match.group("name")
        if current is None:
            raise ValueError(
                f"line {lineno}: sample before any # TYPE metadata"
            )
        suffix = None
        for candidate in _SUFFIXES:
            if sample_name == current + candidate:
                suffix = candidate
                break
        if suffix is None:
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} does not group "
                f"under family {current!r}"
            )
        labels = _split_labels(match.group("labels") or "")
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: bad sample value {match.group('value')!r}"
            ) from exc
        families[current]["samples"].append((suffix, labels, value))
    if not saw_eof:
        raise ValueError("missing # EOF terminator")
    return families
