#!/usr/bin/env python3
"""Heavy-hitter detection across four pipelines with dynamic sharding.

The motivating example of design principle D2 (§3.1): a per-source
packet-counter table that must be sharded across pipelines for line-rate
processing, under a skewed (heavy-tailed) source distribution. The
script contrasts three designs on the same traffic:

* MP5 with dynamic sharding (the full system),
* MP5 with static random sharding (no runtime remap),
* the naive design with all state in one pipeline.

Run:  python examples/heavy_hitter_detection.py
"""

import numpy as np

from repro.baselines import run_single_pipeline_state, static_shard_config
from repro.compiler import compile_program
from repro.mp5 import MP5Config, run_mp5
from repro.workloads import SkewedAccess, clone_packets, line_rate_trace


def main() -> None:
    num_pipelines = 4
    program = compile_program("heavy_hitter")
    # Heavy-tailed sources: 90% of traffic from ~25 hot addresses. Each
    # hot counter bucket carries well under one pipeline's capacity, so
    # the remap heuristic can legally move buckets (their in-flight
    # counters drain), while a random static placement leaves one
    # pipeline oversubscribed — the case dynamic sharding (D2) fixes.
    sources = SkewedAccess(size=512, hot_fraction=0.05, hot_weight=0.9)

    def headers(rng: np.random.Generator, i: int) -> dict:
        return {"src_ip": sources.sample(rng), "hot": 0}

    trace = line_rate_trace(12000, num_pipelines, headers, seed=7)

    dynamic_stats, dynamic_regs = run_mp5(
        program, clone_packets(trace), MP5Config(num_pipelines=num_pipelines)
    )
    static_stats, _ = run_mp5(
        program,
        clone_packets(trace),
        static_shard_config(num_pipelines=num_pipelines),
    )
    naive_stats, _ = run_single_pipeline_state(
        program, clone_packets(trace), MP5Config(num_pipelines=num_pipelines)
    )

    print("Design                         throughput  remaps  max queue")
    print("-----------------------------  ----------  ------  ---------")
    for name, stats in [
        ("MP5 (dynamic sharding)", dynamic_stats),
        ("MP5 (static random sharding)", static_stats),
        ("naive single-pipeline state", naive_stats),
    ]:
        print(
            f"{name:29s}  {stats.throughput_normalized():10.3f}  "
            f"{stats.remap_moves:6d}  {stats.max_queue_depth:9d}"
        )

    counts = dynamic_regs["counts"]
    top = sorted(range(len(counts)), key=lambda i: -counts[i])[:5]
    print("\nTop-5 heavy-hitter buckets (index: packets):")
    for idx in top:
        print(f"  counts[{idx}] = {counts[idx]}")
    speedup = dynamic_stats.throughput_normalized() / max(
        static_stats.throughput_normalized(), 1e-9
    )
    print(f"\nDynamic vs static sharding speedup: {speedup:.2f}x "
          f"(paper band on skewed access: 1.1-3.3x)")


if __name__ == "__main__":
    main()
