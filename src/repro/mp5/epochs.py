"""Epoch schedule construction and (parallel) service execution.

The batch engine's run splits into two exact phases, hinging on one
structural fact the scalar engines establish: **every access index is
resolved at the resolution stage** (stage 0 plus the stateless transit
stages before the first plan stage), which contains no stateful
instructions. Register *values* therefore never influence the timing
layer — injection ticks, FIFO group membership, pop chains, access and
in-flight counters, and every remap decision derived from them.

* **Phase A** (:func:`build_epoch_schedule`) — the sequential sweep
  over remap epochs. It injects packets, maintains the per-(plan,
  pipeline) FIFO groups and their pop chains
  (``pop[j] = max(pop[j-1] + 1, insert[j])``), drives the real
  :class:`~repro.mp5.sharding.ShardingRuntime` at every boundary, and
  records *who pops when, from which pipeline* — but performs no
  stateful service. Its output, the :class:`EpochSchedule`, is the
  run's task DAG: per-plan pop streams in epoch order, independent of
  both the native tier and the worker count.

* **Phase B** (:func:`execute_service`) — replays the schedule against
  register state, plan by plan. Per-row order only matters *within* a
  register slot, so each plan admits three executions that are exact by
  construction: the NumPy wave decomposition (PR 5 semantics,
  per-epoch chunk), a fused per-row kernel over the whole stream in
  service order (:mod:`repro.compiler.native` — Numba-jitted or plain
  Python), and, for ``wave``-category plans, a **residue-class
  partition**: rows with ``index % nparts == w`` touch register slots
  and SoA rows disjoint from every other part, so the parts execute on
  separate workers against one ``multiprocessing.shared_memory``
  segment and the merged state is byte-identical at any worker count.

Workers come from the PR 1 pool (:mod:`repro.harness.parallel`) with an
initializer that attaches the segment and compiles kernels once per
worker. Any pool or shared-memory failure restores the pre-plan
snapshot and re-executes in process — silent, like every other engine
fallback, because the serial path is bit-for-bit the same reduction.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compiler.native import compile_native_stage, native_available
from ..compiler.tac import Const
from ..domino.builtins import hash2


def _parallel():
    """The pool module, imported lazily: ``repro.harness`` pulls in the
    workload package, which imports ``repro.mp5`` — importing it at
    module scope would close that cycle during interpreter startup."""
    from ..harness import parallel

    return parallel


_FAR = 1 << 62  # sentinel horizon: beyond any reachable tick

#: Minimum rows in a plan's stream before residue partitioning is worth
#: a worker round-trip (below this, pickling dwarfs the service work).
PARALLEL_MIN_ROWS = 4096


class _Group:
    """One (plan, pipeline) FIFO group: members in packet-id order."""

    __slots__ = ("members", "count", "ptr", "last_pop")

    def __init__(self, capacity: int):
        self.members = np.empty(capacity, dtype=np.int64)
        self.count = 0  # filled members (membership fixed at inject)
        self.ptr = 0  # members already popped
        self.last_pop = -1


class _RegView:
    """Scalar-JIT-compatible view of an int64 register column: reads
    come back as Python ints so builtin calls never overflow int64."""

    __slots__ = ("arr",)

    def __init__(self, arr: np.ndarray):
        self.arr = arr

    def __len__(self) -> int:
        return self.arr.shape[0]

    def __getitem__(self, i):
        return int(self.arr[i])

    def __setitem__(self, i, value) -> None:
        self.arr[i] = value


class EpochSchedule:
    """Phase A's output: the timing of one run, service still pending.

    ``chunks[pi]`` holds plan ``pi``'s pop stream as per-epoch
    ``(rows, pops)`` pairs in epoch order; the popped pipeline of a row
    is ``dest[pi][row]`` (group membership is fixed at inject). The
    remaining arrays are the per-packet timeline the statistics
    reconstruction consumes.
    """

    __slots__ = (
        "inj",
        "entry_pipe",
        "acc_idx",
        "dest",
        "ins_tick",
        "pop_tick",
        "groups",
        "chunks",
        "egr_tick",
        "egr_pipe",
        "injected",
        "egr_assigned",
        "last_egress",
        "epochs",
        "cut_limit",
        "remap_records",
    )

    def plan_stream(self, pi: int) -> Tuple[np.ndarray, np.ndarray]:
        """Plan ``pi``'s whole-run pop stream, concatenated epoch order."""
        pieces = self.chunks[pi]
        if not pieces:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        if len(pieces) == 1:
            return pieces[0]
        rows = np.concatenate([c[0] for c in pieces])
        pops = np.concatenate([c[1] for c in pieces])
        return rows, pops

    def service_order(self, pi: int) -> np.ndarray:
        """Plan ``pi``'s rows sorted into global (tick, pipeline)
        service order — the scalar engines' serialization order. Keys
        are unique: each (plan, pipeline) group pops once per tick."""
        rows, pops = self.plan_stream(pi)
        if rows.size == 0:
            return rows
        return rows[np.lexsort((self.dest[pi][rows], pops))]

    def dag_signature(self) -> str:
        """Digest of the task DAG — everything Phase B consumes. Equal
        signatures mean equal service work regardless of worker count
        or kernel tier (the determinism contract's test hook)."""
        digest = hashlib.sha256()
        digest.update(np.int64(self.epochs).tobytes())
        digest.update(np.int64(self.injected).tobytes())
        for pi, pieces in enumerate(self.chunks):
            digest.update(np.int64(len(pieces)).tobytes())
            for rows, pops in pieces:
                digest.update(rows.tobytes())
                digest.update(pops.tobytes())
                digest.update(self.dest[pi][rows].tobytes())
            idx = self.acc_idx[pi]
            if idx is not None:
                digest.update(idx.tobytes())
        digest.update(self.egr_tick.tobytes())
        digest.update(self.egr_pipe.tobytes())
        return digest.hexdigest()

    def partition(
        self, pi: int, nparts: int
    ) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Split plan ``pi``'s stream into residue classes by access
        index: part ``w`` gets rows with ``index % nparts == w``.

        Parts touch disjoint register slots and disjoint SoA rows, so
        they commute — the parallel executor's unit of work. Each part
        is ``(rows, idxs, offsets)`` with rows concatenated in epoch
        order and ``offsets`` marking the epoch-chunk boundaries the
        NumPy wave decomposition preserves. Empty parts are dropped.
        """
        pieces = self.chunks[pi]
        idx_col = self.acc_idx[pi]
        parts_rows: List[List[np.ndarray]] = [[] for _ in range(nparts)]
        parts_idx: List[List[np.ndarray]] = [[] for _ in range(nparts)]
        for rows, _pops in pieces:
            idxs = idx_col[rows]
            residue = idxs % nparts
            for w in range(nparts):
                sel = residue == w
                if np.any(sel):
                    parts_rows[w].append(rows[sel])
                    parts_idx[w].append(idxs[sel])
        out = []
        for w in range(nparts):
            if not parts_rows[w]:
                continue
            lens = np.fromiter(
                (r.shape[0] for r in parts_rows[w]),
                dtype=np.int64,
                count=len(parts_rows[w]),
            )
            offsets = np.concatenate(([0], np.cumsum(lens)))
            out.append(
                (
                    np.concatenate(parts_rows[w]),
                    np.concatenate(parts_idx[w]),
                    offsets,
                )
            )
        return out


def build_epoch_schedule(
    switch, packets: Sequence, H: Dict, E: Dict, R: Dict,
    max_ticks: Optional[int],
) -> EpochSchedule:
    """Phase A: sweep the epochs, recording timing but deferring service.

    Mutates the sharding runtime (access counters, remaps) and — for
    injected rows only — the stateless columns written by the
    resolution and pre-plan transit kernels. ``switch.stats`` receives
    the remap-move count; everything else lands on the returned
    schedule.
    """
    cfg = switch.config
    stats = switch.stats
    k = cfg.num_pipelines
    depth = switch.depth
    N = len(packets)
    vplans = switch._vplans
    nplans = len(vplans)
    kernels = switch._vkernels
    sharder = switch.sharder
    # Last executable tick: the run loop breaks before tick max_ticks.
    cut_limit = (max_ticks - 1) if max_ticks is not None else None

    sched = EpochSchedule()
    sched.cut_limit = cut_limit
    # Remap boundaries the scalar run loop would have executed, as
    # (tick, moved) pairs — the trace reconstruction's ``remap`` events.
    sched.remap_records = []

    # Injection schedule. Injection never blocks fault-free (every
    # stage-0 slot vacates within its tick), so with round-robin spray
    # the j-th arrival enters pipeline j % k, and within each residue
    # class ticks follow t_i = max(ceil(arrival_i), t_{i-1}+1) — a
    # running maximum.
    arrival = getattr(switch, "_arrival_f", None)
    if arrival is None or arrival.shape[0] != N:
        arrival = np.fromiter(
            (float(p.arrival) for p in packets), dtype=np.float64, count=N
        )
    ceil_a = np.ceil(arrival).astype(np.int64)
    inj = np.empty(N, dtype=np.int64)
    for r in range(min(k, N)):
        sel = np.arange(r, N, k)
        i_local = np.arange(sel.shape[0], dtype=np.int64)
        inj[sel] = i_local + np.maximum.accumulate(ceil_a[sel] - i_local)
    entry_pipe = np.arange(N, dtype=np.int64) % k
    sched.inj = inj
    sched.entry_pipe = entry_pipe

    acc_idx = [
        np.full(N, -1, dtype=np.int64) if p.has_index else None
        for p in vplans
    ]
    dest = [np.zeros(N, dtype=np.int64) for _ in vplans]
    ins_tick = [np.full(N, -1, dtype=np.int64) for _ in vplans]
    pop_tick = [np.full(N, -1, dtype=np.int64) for _ in vplans]
    groups = [[_Group(N) for _ in range(k)] for _ in vplans]
    chunks: List[List[Tuple[np.ndarray, np.ndarray]]] = [[] for _ in vplans]
    egr_tick = np.full(N, -1, dtype=np.int64)
    egr_pipe = np.full(N, -1, dtype=np.int64)
    sched.acc_idx = acc_idx
    sched.dest = dest
    sched.ins_tick = ins_tick
    sched.pop_tick = pop_tick
    sched.groups = groups
    sched.chunks = chunks
    sched.egr_tick = egr_tick
    sched.egr_pipe = egr_pipe

    period = cfg.remap_period
    remap_on = cfg.remap_algorithm != "none"
    inj_ptr = 0
    injected = 0
    egr_assigned = 0
    last_egress = -1
    epoch_start = 0
    epochs = 0

    def process_inject(rows: np.ndarray) -> None:
        nonlocal egr_assigned, last_egress
        # The resolution stage and pre-plan transit stages are
        # stateless by admission, so running them here — before any
        # service executes — reads and writes only the rows' own
        # columns, exactly as the interleaved engine did.
        kern0 = kernels[0]
        if kern0 is not None:
            kern0.fn(H, R, E, rows)
        for u in switch._transit_after_inject:
            kernels[u].fn(H, R, E, rows)
        t_rows = inj[rows]
        if not vplans:
            et = t_rows + (depth - 1)
            rows_e = rows
            if cut_limit is not None:
                keep = et <= cut_limit
                rows_e = rows[keep]
                et = et[keep]
            if rows_e.size:
                egr_tick[rows_e] = et
                egr_pipe[rows_e] = entry_pipe[rows_e]
                egr_assigned += rows_e.shape[0]
                last_egress = max(last_egress, int(et[-1]))
            return
        for pi, plan in enumerate(vplans):
            state = sharder.arrays[plan.base]
            if plan.is_flow:
                size = plan.size
                fkey = H[cfg.flow_order_field]
                iv = np.empty(rows.shape[0], dtype=np.int64)
                for pos, row in enumerate(rows.tolist()):
                    key = int(fkey[row])
                    iv[pos] = hash2(key, 0x5F0E) % size
                    pkt = packets[row]
                    if pkt.flow_id is None:
                        pkt.flow_id = key
            elif plan.has_index:
                op = plan.index_operand
                if isinstance(op, Const):
                    iv = np.full(
                        rows.shape[0], op.value % plan.size, dtype=np.int64
                    )
                else:
                    iv = E[op.name][rows] % plan.size
            else:
                iv = None
            if iv is not None:
                counts = np.bincount(iv, minlength=plan.size)
                state.access_counts += counts
                state.in_flight += counts.astype(state.in_flight.dtype)
                dv = state.index_to_pipeline[iv].astype(np.int64)
                acc_idx[pi][rows] = iv
            else:
                dv = np.full(
                    rows.shape[0],
                    int(state.index_to_pipeline[0]),
                    dtype=np.int64,
                )
            dest[pi][rows] = dv
            if k == 1:
                g = groups[pi][0]
                n = rows.shape[0]
                g.members[g.count : g.count + n] = rows
                g.count += n
            else:
                for pipe in range(k):
                    sel = rows[dv == pipe]
                    if sel.size:
                        g = groups[pi][pipe]
                        g.members[g.count : g.count + sel.size] = sel
                        g.count += sel.size
        ins_tick[0][rows] = t_rows + (vplans[0].stage - 1)

    while True:
        boundary = (epoch_start + period) if remap_on else None
        cut = _FAR
        if boundary is not None:
            cut = boundary
        if cut_limit is not None and cut_limit < cut:
            cut = cut_limit

        hi = int(np.searchsorted(inj, cut, side="right"))
        if hi > inj_ptr:
            rows = np.arange(inj_ptr, hi, dtype=np.int64)
            inj_ptr = hi
            injected += rows.shape[0]
            process_inject(rows)

        for pi, plan in enumerate(vplans):
            ipt = ins_tick[pi]
            popped = []
            for pipe in range(k):
                g = groups[pi][pipe]
                avail = g.count - g.ptr
                if avail <= 0:
                    continue
                max_pops = cut - g.last_pop
                if max_pops <= 0:
                    continue
                take = min(avail, max_pops)
                seg_rows = g.members[g.ptr : g.ptr + take]
                seg_ins = ipt[seg_rows]
                unknown = np.nonzero(seg_ins < 0)[0]
                if unknown.size:
                    take = int(unknown[0])
                    if take == 0:
                        continue
                    seg_rows = seg_rows[:take]
                    seg_ins = seg_ins[:take]
                j = np.arange(seg_rows.shape[0], dtype=np.int64)
                base = np.maximum(seg_ins, g.last_pop + 1)
                pops = j + np.maximum.accumulate(base - j)
                cnt = int(np.searchsorted(pops, cut, side="right"))
                if cnt == 0:
                    continue
                rows_p = seg_rows[:cnt]
                pops = pops[:cnt]
                g.ptr += cnt
                g.last_pop = int(pops[-1])
                pop_tick[pi][rows_p] = pops
                popped.append((rows_p, pops))
            if not popped:
                continue
            if len(popped) == 1:
                rows_p, pops = popped[0]
            else:
                rows_p = np.concatenate([c[0] for c in popped])
                pops = np.concatenate([c[1] for c in popped])
            chunks[pi].append((rows_p, pops))
            if plan.has_index and not plan.is_flow:
                state = sharder.arrays[plan.base]
                state.in_flight -= np.bincount(
                    acc_idx[pi][rows_p], minlength=plan.size
                ).astype(state.in_flight.dtype)
            if pi + 1 < nplans:
                delta = vplans[pi + 1].stage - plan.stage
                ins_tick[pi + 1][rows_p] = pops + delta
            else:
                # The run loop breaks before tick max_ticks, so an
                # egress scheduled past the cutoff never executes: the
                # packet is stuck in the tail.
                et = pops + (depth - plan.stage)
                rows_e = rows_p
                if cut_limit is not None:
                    keep = et <= cut_limit
                    rows_e = rows_p[keep]
                    et = et[keep]
                if rows_e.size:
                    egr_tick[rows_e] = et
                    egr_pipe[rows_e] = dest[pi][rows_e]
                    egr_assigned += rows_e.shape[0]
                    last_egress = max(last_egress, int(et.max()))

        if not remap_on:
            break
        if cut_limit is not None and boundary > cut_limit:
            break
        # The scalar run loop is alive at the boundary tick iff packets
        # are still pending injection or in flight there — only then
        # does the remap phase of that tick execute.
        alive = (
            inj_ptr < N
            or injected > egr_assigned
            or last_egress >= boundary
        )
        if alive:
            moved = sharder.end_epoch(cfg.remap_algorithm)
            stats.remap_moves += moved
            sched.remap_records.append((boundary, moved))
            epoch_start = boundary
            epochs += 1
        else:
            break

    sched.injected = injected
    sched.egr_assigned = egr_assigned
    sched.last_egress = last_egress
    sched.epochs = epochs
    return sched


# ---------------------------------------------------------------------------
# Phase B: service execution
# ---------------------------------------------------------------------------


def resolve_native_mode(native: Optional[bool]) -> str:
    """``off`` (default / ``native=False``), ``njit`` (``native=True``
    with Numba importable) or ``python`` (``native=True`` without it:
    the fused kernels run as plain Python — same source, same results,
    visible in ``native_unavailable_reason()``)."""
    if not native:
        return "off"
    return "njit" if native_available() else "python"


def _native_kernel(switch, stage: int, track_reg: Optional[str], mode: str):
    """Fused kernel for one stage, or None when outside the native
    envelope. Cached on the program object like the vjit kernels."""
    if mode == "off":
        return None
    cache = getattr(switch.program, "_native_kernel_cache", None)
    if cache is None:
        cache = {}
        try:
            switch.program._native_kernel_cache = cache
        except AttributeError:
            pass
    key = (stage, track_reg, mode)
    if key not in cache:
        from ..compiler.native import NativeUnsupported

        try:
            cache[key] = compile_native_stage(
                switch._stage_instrs[stage],
                f"s{stage}",
                track_reg=track_reg,
                force_python=(mode == "python"),
            )
        except NativeUnsupported:
            cache[key] = None
    return cache[key]


def _native_cols(nkern, H: Dict, E: Dict, R: Dict) -> List[np.ndarray]:
    return (
        [H[f] for f in nkern.fields]
        + [E[t] for t in nkern.temps]
        + [R[r] for r in nkern.regs]
    )


def _wave_service(
    kern, H, R, E, base, conservative, rows_p, idxs, mask=None
) -> int:
    """One epoch chunk of a wave plan, PR 5 semantics: rows touching
    distinct indices execute together; same-index rows execute in
    successive waves in pop order (the chunk's concatenation order is
    pop order per pipeline, and one index maps to one pipeline within
    an epoch). When ``mask`` is given (trace reconstruction), the rows
    whose conservative access wasted a slot are flagged in it."""
    wasted = 0
    n = rows_p.shape[0]
    # Fast path: no index repeats in the chunk -> one wave.
    if n == 1 or int(np.bincount(idxs).max()) <= 1:
        if conservative:
            lane = np.zeros(n, dtype=bool)
            kern.fn(H, R, E, rows_p, {base: lane})
            if mask is not None:
                mask[rows_p[~lane]] = True
            return int(n - np.count_nonzero(lane))
        kern.fn(H, R, E, rows_p)
        return 0
    order = np.argsort(idxs, kind="stable")
    sorted_idx = idxs[order]
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    new_group[1:] = sorted_idx[1:] != sorted_idx[:-1]
    starts = np.maximum.accumulate(np.where(new_group, np.arange(n), 0))
    rank = np.arange(n) - starts
    waves = np.empty(n, dtype=np.int64)
    waves[order] = rank
    n_waves = int(rank.max()) + 1
    if conservative:
        for w in range(n_waves):
            sel = rows_p[waves == w]
            lane = np.zeros(sel.shape[0], dtype=bool)
            kern.fn(H, R, E, sel, {base: lane})
            if mask is not None:
                mask[sel[~lane]] = True
            wasted += int(sel.shape[0] - np.count_nonzero(lane))
    elif n_waves == 1:
        kern.fn(H, R, E, rows_p)
    else:
        for w in range(n_waves):
            kern.fn(H, R, E, rows_p[waves == w])
    return wasted


def _run_wave_partition(
    kern, nkern, H, R, E, base, conservative, rows, idxs, offsets
) -> int:
    """Service one residue part of a wave plan: the fused per-row loop
    when a native kernel is in force (rows are in per-index pop order,
    which is all the per-row loop needs), else the NumPy wave
    decomposition chunk by chunk."""
    if nkern is not None:
        return int(nkern.fn(rows, *_native_cols(nkern, H, E, R)))
    wasted = 0
    for lo, hi in zip(offsets[:-1], offsets[1:]):
        if hi > lo:
            wasted += _wave_service(
                kern, H, R, E, base, conservative, rows[lo:hi], idxs[lo:hi]
            )
    return wasted


# Per-worker state for the epoch pool: set once by the initializer,
# read by every task. Lives at module level so tasks pickle as plain
# (plan, rows, idxs, offsets) tuples.
_WORKER: Optional[dict] = None


def _epoch_worker_init(seg_name, layout, stage_instrs, metas, mode) -> None:
    """Pool initializer: attach the SoA segment and map its columns.
    Kernels compile lazily per plan on first use (and are cached), so a
    worker that only ever serves one plan compiles one stage."""
    global _WORKER
    from multiprocessing import shared_memory

    seg = shared_memory.SharedMemory(name=seg_name)
    cols = {
        (kind, name): np.ndarray(
            (count,), dtype=np.int64, buffer=seg.buf, offset=offset
        )
        for kind, name, offset, count in layout
    }
    _WORKER = {
        "seg": seg,  # keep a reference: GC would detach the buffer
        "cols": cols,
        "instrs": stage_instrs,
        "metas": metas,
        "mode": mode,
        "kernels": {},
    }


def _worker_plan(pi: int):
    """Compile-and-cache the kernels plan ``pi`` needs in this worker."""
    ctx = _WORKER
    got = ctx["kernels"].get(pi)
    if got is None:
        from ..compiler.native import NativeUnsupported
        from ..compiler.vjit import compile_vector_stage

        stage, base, conservative = ctx["metas"][pi]
        instrs = ctx["instrs"][stage]
        kern = compile_vector_stage(instrs, name=f"w{stage}")
        nkern = None
        if ctx["mode"] == "njit":
            try:
                nkern = compile_native_stage(
                    instrs,
                    f"w{stage}",
                    track_reg=base if conservative else None,
                )
            except NativeUnsupported:
                nkern = None
            if nkern is not None and not nkern.jitted:
                nkern = None  # plain-Python rows loop loses to waves
        cols = ctx["cols"]
        H = {
            f: cols[("H", f)]
            for f in kern.fields_read | kern.fields_written
        }
        E = {t: cols[("E", t)] for t in set(kern.temps_in) | set(kern.temps_out)}
        R = {r: cols[("R", r)] for r in {i.reg for i in kern.stateful}}
        got = (kern, nkern, H, E, R, base, conservative)
        ctx["kernels"][pi] = got
    return got


def _epoch_worker_run(task) -> int:
    pi, rows, idxs, offsets = task
    kern, nkern, H, E, R, base, conservative = _worker_plan(pi)
    return _run_wave_partition(
        kern, nkern, H, R, E, base, conservative, rows, idxs, offsets
    )


def _share_columns(H: Dict, E: Dict, R: Dict):
    """Copy every SoA column into one shared-memory segment and return
    (segment, layout, H', E', R') with the dicts rebuilt as views."""
    from multiprocessing import shared_memory

    entries = (
        [("H", name, arr) for name, arr in sorted(H.items())]
        + [("E", name, arr) for name, arr in sorted(E.items())]
        + [("R", name, arr) for name, arr in sorted(R.items())]
    )
    total = sum(arr.shape[0] for _, _, arr in entries) * 8
    seg = shared_memory.SharedMemory(create=True, size=max(total, 8))
    _parallel().register_shared_segment(seg.name)
    layout = []
    views: Dict[Tuple[str, str], np.ndarray] = {}
    offset = 0
    for kind, name, arr in entries:
        count = arr.shape[0]
        view = np.ndarray((count,), dtype=np.int64, buffer=seg.buf, offset=offset)
        view[:] = arr
        layout.append((kind, name, offset, count))
        views[(kind, name)] = view
        offset += count * 8
    H2 = {name: views[("H", name)] for name in H}
    E2 = {name: views[("E", name)] for name in E}
    R2 = {name: views[("R", name)] for name in R}
    return seg, layout, H2, E2, R2


def execute_service(
    switch,
    schedule: EpochSchedule,
    H: Dict,
    E: Dict,
    R: Dict,
    native: Optional[bool] = None,
    epoch_jobs: Optional[int] = None,
    profiler=None,
    wasted_out: Optional[List[Optional[np.ndarray]]] = None,
) -> int:
    """Phase B: run every plan's deferred service, in plan order.

    Mutates ``H``/``E``/``R`` in place (via shared-memory staging when
    workers are used) and returns the wasted-slot count. The result is
    identical — and, once serialized, byte-identical — for every
    combination of ``native`` and ``epoch_jobs``, including every
    fallback path. ``profiler`` (a
    :class:`~repro.obs.profiler.PhaseProfiler`) receives per-stage
    kernel-tier timings and pool gauges; ``wasted_out`` is a per-plan
    list of bool row masks the trace reconstruction needs — plans with
    a mask run the mask-capable in-process paths (same results, per the
    exactness contract) and flag the rows whose conservative access
    wasted a slot.
    """
    from time import perf_counter

    vplans = switch._vplans
    mode = resolve_native_mode(native)
    jobs = _parallel().resolve_jobs(epoch_jobs)
    use_pool = (
        jobs > 1
        and not _parallel().pool_unavailable()
        and any(
            p.category == "wave"
            and sum(c[0].shape[0] for c in schedule.chunks[pi])
            >= PARALLEL_MIN_ROWS
            for pi, p in enumerate(vplans)
        )
    )
    seg = None
    originals = None
    if use_pool:
        try:
            originals = (H, E, R)
            seg, layout, H, E, R = _share_columns(H, E, R)
            metas = [(p.stage, p.base, p.conservative) for p in vplans]
            initargs = (seg.name, layout, switch._stage_instrs, metas, mode)
            if profiler is not None:
                profiler.record_pool(workers=jobs, shared_bytes=seg.size)
        except (OSError, ValueError):
            if seg is not None:
                _parallel().unregister_shared_segment(seg.name)
                seg.close()
                seg.unlink()
            seg = None
            H, E, R = originals
            originals = None
            use_pool = False
    wasted = 0
    try:
        for pi, plan in enumerate(vplans):
            rows_all, _pops = schedule.plan_stream(pi)
            if rows_all.size:
                mask = wasted_out[pi] if wasted_out is not None else None
                t0 = perf_counter() if profiler is not None else 0.0
                tier = None
                if plan.category == "wave":
                    got, tier = _service_wave_plan(
                        switch, schedule, pi, plan, H, E, R, mode,
                        jobs if use_pool else 1,
                        initargs if use_pool else None,
                        mask=mask,
                        profiler=profiler,
                    )
                    wasted += got
                elif plan.category == "serial":
                    got, tier = _service_serial_plan(
                        switch, schedule, pi, plan, H, E, R, mode, mask=mask
                    )
                    wasted += got
                # 'none' (flow-order arrays, kernel-free stages): the
                # FIFO timing is the whole effect; nothing to execute.
                if profiler is not None and tier is not None:
                    profiler.record_kernel(
                        plan.stage, tier, perf_counter() - t0
                    )
                for u in switch._transit_after[pi]:
                    switch._vkernels[u].fn(H, R, E, rows_all)
    finally:
        if seg is not None:
            oH, oE, oR = originals
            for name, arr in oH.items():
                arr[:] = H[name]
            for name, arr in oE.items():
                arr[:] = E[name]
            for name, arr in oR.items():
                arr[:] = R[name]
            del H, E, R  # drop the views before freeing their buffer
            seg.close()
            seg.unlink()
            _parallel().unregister_shared_segment(seg.name)
    return wasted


def _service_wave_plan(
    switch, schedule, pi, plan, H, E, R, mode, jobs, initargs,
    mask=None, profiler=None,
):
    kern = switch._vkernels[plan.stage]
    track = plan.base if plan.conservative else None
    # Per-row wasted-slot capture (trace reconstruction) needs the
    # chunked NumPy path, which knows which rows lost their lane; the
    # fused kernels and pool parts only count. Results are identical by
    # the exactness contract, so forcing the path changes nothing else.
    capture = mask is not None
    # A plain-Python per-row loop loses to the NumPy wave decomposition
    # for shardable plans; the python tier is reserved for the
    # serialized path, where it replaces a slower loop.
    nkern = (
        _native_kernel(switch, plan.stage, track, mode)
        if mode == "njit" and not capture
        else None
    )
    nparts = jobs if not capture else 1
    if nparts > 1:
        parts = schedule.partition(pi, nparts)
        big_enough = all(p[0].shape[0] >= 64 for p in parts)
        if len(parts) > 1 and big_enough:
            done = _dispatch_parts(
                switch, schedule, pi, plan, parts, H, E, R, kern, nkern,
                initargs,
            )
            if done is not None:
                if profiler is not None:
                    profiler.record_pool(tasks=len(parts))
                return done, "pool"
        # Partitioning didn't pay (or the pool broke and state was
        # restored): fall through to the in-process path.
    idx_col = schedule.acc_idx[pi]
    if nkern is not None:
        rows = schedule.service_order(pi)
        return int(nkern.fn(rows, *_native_cols(nkern, H, E, R))), "njit"
    wasted = 0
    for rows_p, _pops in schedule.chunks[pi]:
        wasted += _wave_service(
            kern, H, R, E, plan.base, plan.conservative, rows_p,
            idx_col[rows_p], mask=mask,
        )
    return wasted, "numpy"


def _dispatch_parts(
    switch, schedule, pi, plan, parts, H, E, R, kern, nkern, initargs
) -> Optional[int]:
    """Run a wave plan's residue parts on the pool. Returns the wasted
    count, or None after restoring state when the pool failed (the
    caller then re-executes in process; tasks are register-mutating and
    so never retried blindly)."""
    # Snapshot everything this plan's service can touch, so a pool that
    # breaks mid-plan (some parts applied, some not) can be rolled back.
    rows_all, _ = schedule.plan_stream(pi)
    snap_reg = {r: R[r].copy() for r in {i.reg for i in kern.stateful}}
    snap_E = {t: E[t][rows_all].copy() for t in kern.temps_out}
    snap_H = {f: H[f][rows_all].copy() for f in kern.fields_written}
    tasks = [(pi, rows, idxs, offsets) for rows, idxs, offsets in parts]
    try:
        results = _parallel().pool_map_strict(
            _epoch_worker_run,
            tasks,
            jobs=len(parts),
            initializer=_epoch_worker_init,
            initargs=initargs,
            pool_key="epoch",
        )
        return int(sum(results))
    except _parallel().PoolBroken:
        for r, arr in snap_reg.items():
            R[r][:] = arr
        for t, arr in snap_E.items():
            E[t][rows_all] = arr
        for f, arr in snap_H.items():
            H[f][rows_all] = arr
        return None


def _service_serial_plan(switch, schedule, pi, plan, H, E, R, mode, mask=None):
    """Serialized rows: pinned arrays, co-staged (multi) arrays,
    constant or in-stage index expressions. Exact by construction —
    execution in global (tick, pipeline) service order, either as one
    fused per-row kernel call or as the scalar-JIT dict loop. A
    ``mask`` (trace reconstruction) forces the dict loop, which knows
    *which* rows wasted their slot, not just how many."""
    stage = plan.stage
    kern = switch._vkernels[stage]
    track_wasted = plan.conservative and not plan.multi
    nkern = (
        _native_kernel(
            switch, stage, plan.base if track_wasted else None, mode
        )
        if mask is None
        else None
    )
    rows_sorted = schedule.service_order(pi)
    if nkern is not None:
        return int(nkern.fn(rows_sorted, *_native_cols(nkern, H, E, R))), "njit"
    fn = switch._vserial_fns[stage]
    regview = {name: _RegView(arr) for name, arr in R.items()}
    fields = sorted(kern.fields_read | kern.fields_written)
    written = sorted(kern.fields_written)
    temps_in = kern.temps_in
    temps_out = kern.temps_out
    wasted = 0
    for row in rows_sorted.tolist():
        headers = {f: int(H[f][row]) for f in fields}
        env = {t: int(E[t][row]) for t in temps_in}
        if track_wasted:
            hit: List[str] = []
            fn(headers, regview, env, lambda reg, i, kind: hit.append(reg))
            if plan.base not in hit:
                wasted += 1
                if mask is not None:
                    mask[row] = True
        else:
            fn(headers, regview, env, None)
        for f in written:
            H[f][row] = headers[f]
        for t in temps_out:
            E[t][row] = env[t]
    return wasted, "python"
