"""Fused native (Numba) kernels for the batch engine's service loops.

:mod:`repro.compiler.vjit` executes a stage as a *sequence of NumPy
whole-array operations* — one pass over the batch per TAC instruction,
with the engine slicing batches into "waves" so same-index register
chains never share an invocation. This module lowers one step further:
the stage's TAC is flattened to SSA statements
(:func:`repro.compiler.lower.lower_stage`) and emitted as **one fused
per-row loop** —

    wasted = kernel.fn(rows, *columns)

— that executes the *entire* stage for one packet before moving to the
next. Rows are processed in exactly the order given, so a caller that
passes rows in global (tick, pipeline) service order gets the scalar
engines' serialized register semantics for free: no wave partitioning,
no per-instruction batch traffic, and same-index read-modify-write
chains are correct by construction. Under Numba the loop compiles to
native code (``@njit(nogil=True)``, so epoch workers can overlap);
without Numba the same source runs as plain Python over the same int64
columns — still fused (one function call per stage per batch instead of
one dict per packet), still exact.

Admission rule is exactness, like vjit: a stage whose TAC contains a
builtin ``call`` (arbitrary Python, e.g. ``hash2``) raises
:class:`NativeUnsupported` and the engine keeps using the NumPy kernel
for that stage — per-stage, not per-program, so one hashing stage never
evicts the rest of the pipeline from the native tier.

Semantics are bit-identical to the TAC evaluator: 32-bit
two's-complement wrap after every arithmetic op (so int64 intermediates
never overflow), C-style truncating division/modulo with 0 on division
by zero, shift counts masked to 5 bits, guarded accesses that perform
no state access on a false guard, raw register/header stores, and
register indexes wrapped modulo the array size.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import CompilerError
from .lower import SSAStmt, StageSSA, lower_stage
from .tac import TacInstr

_counter = itertools.count()

# ---------------------------------------------------------------------------
# Numba availability probe (import once, never at module import time of
# the engines: `import numba` itself costs ~1 s when present)
# ---------------------------------------------------------------------------

_NUMBA_STATE: Optional[Tuple[Optional[object], Optional[str]]] = None


def _numba():
    """Return ``(numba_module | None, unavailable_reason | None)``."""
    global _NUMBA_STATE
    if _NUMBA_STATE is None:
        try:
            import numba  # type: ignore

            _NUMBA_STATE = (numba, None)
        except Exception as exc:  # ImportError, binary mismatch, ...
            _NUMBA_STATE = (None, f"{type(exc).__name__}: {exc}")
    return _NUMBA_STATE


def native_available() -> bool:
    """True when Numba can compile kernels in this interpreter."""
    return _numba()[0] is not None


def native_unavailable_reason() -> Optional[str]:
    """Why Numba is unavailable; None when it is importable."""
    return _numba()[1]


class NativeUnsupported(Exception):
    """The stage cannot be lowered to a native kernel (e.g. builtin
    calls); the engine keeps the NumPy kernel for it."""


@dataclass(frozen=True)
class NativeKernel:
    """One fused per-stage service kernel plus its column signature.

    ``fn(rows, *cols)`` expects ``cols`` in signature order: the header
    columns of :attr:`fields`, then the PHV columns of :attr:`temps`,
    then the register arrays of :attr:`regs` — all ``int64`` NumPy
    arrays. Returns the number of wasted slots (rows that executed no
    access on ``track_reg``; always 0 when tracking is off).
    """

    fn: Callable
    fields: Tuple[str, ...]
    temps: Tuple[str, ...]
    regs: Tuple[str, ...]
    track_reg: Optional[str]
    jitted: bool
    source: str


_WRAPPED_BINOPS = {"+", "-", "*", "&", "|", "^"}
_COMPARISONS = {"==", "!=", "<", "<=", ">", ">="}


def _wrap(expr: str) -> str:
    """Branchless wrap to signed 32 bits; see ``jit._wrapped``."""
    return f"((({expr}) + 2147483648) & 4294967295) - 2147483648"


def _ref(value, cols: dict) -> str:
    """Render an operand: inlined constant or local variable."""
    if isinstance(value, int):
        return repr(value)
    return value


class _Emitter:
    def __init__(self, ssa: StageSSA, track_reg: Optional[str]):
        self.ssa = ssa
        self.track_reg = track_reg
        self.lines: List[str] = []
        self.tmp = itertools.count()
        # Column parameter names, in signature order. Positional names
        # keep identifiers valid whatever the field/register names are.
        self.fields = tuple(
            sorted(set(ssa.fields_read) | set(ssa.fields_written))
        )
        self.temps = tuple(
            ssa.temps_in
            + tuple(t for t in ssa.temps_out if t not in ssa.temps_in)
        )
        self.regs = ssa.regs
        self.col = {}
        params = []
        for i, f in enumerate(self.fields):
            self.col[("field", f)] = name = f"hf{i}"
            params.append(name)
        for i, t in enumerate(self.temps):
            self.col[("temp", t)] = name = f"et{i}"
            params.append(name)
        for i, r in enumerate(self.regs):
            self.col[("reg", r)] = name = f"rg{i}"
            params.append(name)
        self.params = params

    def emit(self, line: str, depth: int = 2) -> None:
        self.lines.append("    " * depth + line)

    def _hit(self, reg: str, depth: int) -> None:
        if self.track_reg is not None and reg == self.track_reg:
            self.emit("_hit = 1", depth)

    def stmt(self, s: SSAStmt) -> None:
        emit = self.emit
        if s.kind == "field_load":
            arr = self.col[("field", s.field)]
            emit(f"{s.dest} = {_wrap(arr + '[_r]')}")
        elif s.kind == "field_store":
            value = _ref(s.args[0], self.col)
            if s.guard is None:
                emit(f"{self.col[('field', s.field)]}[_r] = {value}")
            else:
                emit(f"if {s.guard} != 0:")
                emit(f"{self.col[('field', s.field)]}[_r] = {value}", 3)
        elif s.kind == "const":
            emit(f"{s.dest} = {s.args[0]!r}")
        elif s.kind == "unary":
            a = _ref(s.args[0], self.col)
            if s.op == "-":
                emit(f"{s.dest} = {_wrap(f'-({a})')}")
            elif s.op == "!":
                emit(f"{s.dest} = 0 if ({a}) != 0 else 1")
            else:
                raise CompilerError(f"native: unknown unary op {s.op!r}")
        elif s.kind == "binary":
            self.binary(s)
        elif s.kind == "call":
            raise NativeUnsupported(
                f"builtin call {s.op!r} (arbitrary Python) in stage "
                f"{self.ssa.name}"
            )
        elif s.kind == "select":
            g, a, b = (_ref(x, self.col) for x in s.args)
            emit(f"{s.dest} = ({a}) if ({g}) != 0 else ({b})")
        elif s.kind == "reg_load":
            arr = self.col[("reg", s.reg)]
            idx = _ref(s.args[0], self.col)
            if s.guard is None:
                emit(f"{s.dest} = {arr}[({idx}) % {arr}.shape[0]]")
                self._hit(s.reg, 2)
            else:
                emit(f"if {s.guard} != 0:")
                emit(f"{s.dest} = {arr}[({idx}) % {arr}.shape[0]]", 3)
                self._hit(s.reg, 3)
                emit("else:")
                emit(f"{s.dest} = 0", 3)
        elif s.kind == "reg_store":
            arr = self.col[("reg", s.reg)]
            idx = _ref(s.args[0], self.col)
            value = _ref(s.args[1], self.col)
            if s.guard is None:
                emit(f"{arr}[({idx}) % {arr}.shape[0]] = {value}")
                self._hit(s.reg, 2)
            else:
                emit(f"if {s.guard} != 0:")
                emit(f"{arr}[({idx}) % {arr}.shape[0]] = {value}", 3)
                self._hit(s.reg, 3)
        else:
            raise CompilerError(f"native: unknown statement kind {s.kind}")

    def binary(self, s: SSAStmt) -> None:
        a = _ref(s.args[0], self.col)
        b = _ref(s.args[1], self.col)
        dest, op, emit = s.dest, s.op, self.emit
        if op in _WRAPPED_BINOPS:
            emit(f"{dest} = {_wrap(f'({a}) {op} ({b})')}")
        elif op in _COMPARISONS:
            emit(f"{dest} = 1 if ({a}) {op} ({b}) else 0")
        elif op in ("/", "%"):
            # C-style truncating division: quotient rounded toward zero,
            # remainder matching its sign rules, 0 on division by zero.
            q = f"_q{next(self.tmp)}"
            emit(f"if ({b}) == 0:")
            emit(f"{dest} = 0", 3)
            emit("else:")
            emit(f"{q} = abs({a}) // abs({b})", 3)
            emit(f"if (({a}) < 0) != (({b}) < 0):", 3)
            emit(f"{q} = -{q}", 4)
            if op == "/":
                emit(f"{dest} = {_wrap(q)}", 3)
            else:
                emit(f"{dest} = {_wrap(f'({a}) - ({b}) * {q}')}", 3)
        elif op == "&&":
            emit(f"{dest} = 1 if (({a}) != 0 and ({b}) != 0) else 0")
        elif op == "||":
            emit(f"{dest} = 1 if (({a}) != 0 or ({b}) != 0) else 0")
        elif op == "<<":
            emit(f"{dest} = {_wrap(f'({a}) << (({b}) & 31)')}")
        elif op == ">>":
            emit(f"{dest} = {_wrap(f'(({a}) & 4294967295) >> (({b}) & 31)')}")
        else:
            raise CompilerError(f"native: unknown binary op {op!r}")


def emit_stage_source(
    ssa: StageSSA, fname: str, track_reg: Optional[str] = None
) -> Tuple[str, _Emitter]:
    """Render a :class:`StageSSA` as fused per-row loop source."""
    em = _Emitter(ssa, track_reg)
    head = ", ".join(["rows"] + em.params)
    lines = [f"def {fname}({head}):", "    _wasted = 0"]
    em.lines = lines
    em.emit("for _k in range(rows.shape[0]):", 1)
    em.emit("_r = rows[_k]")
    if track_reg is not None:
        em.emit("_hit = 0")
    for t in ssa.temps_in:
        em.emit(f"{ssa.temp_vars[t]} = {em.col[('temp', t)]}[_r]")
    for s in ssa.stmts:
        em.stmt(s)
    for t in ssa.temps_out:
        em.emit(f"{em.col[('temp', t)]}[_r] = {ssa.temp_vars[t]}")
    if track_reg is not None:
        em.emit("if _hit == 0:")
        em.emit("_wasted += 1", 3)
    em.emit("return _wasted", 1)
    return "\n".join(lines), em


def compile_native_stage(
    instrs: Sequence[TacInstr],
    name: str = "stage",
    track_reg: Optional[str] = None,
    force_python: bool = False,
) -> Optional[NativeKernel]:
    """Compile one stage to a fused per-row kernel; None for empty input.

    Raises :class:`NativeUnsupported` for stages outside the envelope
    (builtin calls). When Numba is importable the loop is ``@njit``-
    compiled (``force_python=True`` skips that — the pure-Python tier,
    also what every platform without Numba gets). ``track_reg`` turns on
    wasted-slot counting for one register array (conservative phantoms).
    """
    if not instrs:
        return None
    ssa = lower_stage(instrs, name)
    if ssa is None:
        return None
    if ssa.has_call:
        raise NativeUnsupported(
            f"builtin call in stage {name} (arbitrary Python)"
        )
    fname = f"_n{name}"
    source, em = emit_stage_source(ssa, fname, track_reg)
    scope: dict = {}
    exec(compile(source, f"<native:{name}:{next(_counter)}>", "exec"), scope)
    fn = scope[fname]
    fn.__doc__ = source
    jitted = False
    if not force_python:
        numba, _reason = _numba()
        if numba is not None:
            fn = numba.njit(nogil=True, cache=False)(fn)
            jitted = True
    return NativeKernel(
        fn=fn,
        fields=em.fields,
        temps=em.temps,
        regs=em.regs,
        track_reg=track_reg,
        jitted=jitted,
        source=source,
    )
