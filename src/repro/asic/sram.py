"""SRAM overhead model for the sharding metadata (§4.2).

Per register index MP5 stores 30 bits:

* 6 bits  — index-to-pipeline map entry (supports up to 64 pipelines),
* 16 bits — packet access counter (reset every ~100 cycles),
* 8 bits  — in-flight packet counter.

With the paper's sizing example — 10 stateful stages x 1000 register
entries — this is ~36.6 KB per pipeline, the "about 35 KB" of §4.2,
nominal next to the 50-100 MB of SRAM on modern programmable switches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigError

MAP_BITS = 6
ACCESS_COUNTER_BITS = 16
INFLIGHT_COUNTER_BITS = 8
BITS_PER_INDEX = MAP_BITS + ACCESS_COUNTER_BITS + INFLIGHT_COUNTER_BITS

SWITCH_SRAM_BYTES = (50 * 1024 * 1024, 100 * 1024 * 1024)  # §4.2 reference


@dataclass(frozen=True)
class SramReport:
    total_indexes: int

    @property
    def bits(self) -> int:
        return BITS_PER_INDEX * self.total_indexes

    @property
    def kilobytes(self) -> float:
        return self.bits / 8 / 1024

    def fraction_of_switch_sram(self, switch_bytes: int = 64 * 1024 * 1024) -> float:
        return (self.bits / 8) / switch_bytes


def sram_overhead(register_sizes: Sequence[int]) -> SramReport:
    """Overhead for a program's register arrays (one entry per index)."""
    if any(size < 1 for size in register_sizes):
        raise ConfigError("register sizes must be positive")
    return SramReport(total_indexes=sum(register_sizes))


def sram_overhead_paper_example(
    stateful_stages: int = 10, entries_per_stage: int = 1000
) -> SramReport:
    """The §4.2 sizing example: all stages stateful, 1000 entries each."""
    return sram_overhead([entries_per_stage] * stateful_stages)
