#!/usr/bin/env python3
"""A tour of the MP5 compiler: from Domino source to pipeline layout.

Shows each phase of the Figure 5 workflow on three programs that
exercise different transformer paths:

* ``figure3``        — stateless predicates, fully resolvable addresses;
* ``stateful_predicate`` — guards that read state: conservative phantoms
  for both branches;
* ``stateful_index`` — a register indexed by another register: the array
  is pinned to one pipeline (no sharding).

Run:  python examples/compiler_tour.py
"""

from repro.compiler import BanzaiTarget, compile_program, preprocess, transform
from repro.domino import get_program, get_source


def tour(name: str) -> None:
    banner = f"=== {name} ==="
    print(banner)
    print(get_source(name).strip())
    print()

    program = get_program(name)
    tac = preprocess(program)
    print(f"-- three-address code ({len(tac.instrs)} instructions) --")
    for instr in tac.instrs:
        print(f"   {instr}")
    print()

    transformed = transform(tac)
    print("-- transformed PVSM (stage 0 = preemptive address resolution) --")
    for i, stage in enumerate(transformed.pvsm.stages):
        arrays = f"  arrays={stage.arrays}" if stage.arrays else ""
        print(f"   stage {i}: {len(stage.instrs)} ops{arrays}")
    print()

    compiled = compile_program(name, target=BanzaiTarget())
    print("-- code generation --")
    print("   " + compiled.describe().replace("\n", "\n   "))
    print()


def main() -> None:
    for name in ("figure3", "stateful_predicate", "stateful_index"):
        tour(name)


if __name__ == "__main__":
    main()
