"""Figure 8 (§4.4): real applications under realistic traffic.

For each of flowlet switching, CONGA, WFQ and the network sequencer:
bimodal 200 B / 1400 B packet sizes, web-search flow sizes, and a sweep
over the number of pipelines. The paper reports line-rate throughput for
every application and pipeline count, with bounded per-stage queues
(max 11 / 8 / 7 / 7 packets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..apps import ALL_APPS, FIGURE8_APPS, Application
from ..mp5 import ENGINES
from ..mp5.config import MP5Config
from .parallel import parallel_map
from .report import format_table

# Up to Tofino-2-class parallelism. Beyond k=8 the scalar-register
# applications (CONGA, WFQ, sequencer) hit the fundamental single-state
# processing limit of §3.5.2 once k * 64B / mean-packet-size exceeds one
# packet per clock; tests cover that regime explicitly.
PIPELINE_SWEEP = (1, 2, 4, 8)


@dataclass
class RealAppPoint:
    app: str
    num_pipelines: int
    throughput: float
    max_queue_depth: int
    wasted_slots: int
    dropped: int


@dataclass
class RealAppSettings:
    num_packets: int = 6000
    seeds: Sequence[int] = (0, 1)
    num_ports: int = 64
    max_ticks: Optional[int] = None
    fifo_capacity: Optional[int] = None  # None = adaptive (no loss), as §4.3.1
    engine: str = "fast"  # dense | fast | vector (see repro.mp5.ENGINES)
    native: Optional[bool] = None  # vector engine: fused kernel tier
    epoch_jobs: Optional[int] = None  # vector engine: service workers


def _run_app_serial(
    app: Application, k: int, settings: RealAppSettings, seed: int
) -> tuple:
    """One (application, pipeline count, seed) simulation."""
    program = app.compile()
    trace = app.workload(
        settings.num_packets,
        k,
        seed=seed,
        num_ports=settings.num_ports,
    )
    stats, _ = ENGINES[settings.engine](
        program,
        trace,
        MP5Config(
            num_pipelines=k,
            num_ports=settings.num_ports,
            fifo_capacity=settings.fifo_capacity,
        ),
        max_ticks=settings.max_ticks,
        native=settings.native,
        epoch_jobs=settings.epoch_jobs,
    )
    return (
        stats.throughput_normalized(),
        stats.max_queue_depth,
        stats.wasted_slots,
        stats.dropped,
    )


def _app_seed_task(task) -> tuple:
    """Worker entry: the application travels by catalog name (an
    :class:`Application` carries a workload closure that may not
    pickle), so only names from :data:`~repro.apps.ALL_APPS` can run in
    workers; callers check that before fanning out."""
    app_name, k, settings, seed = task
    return _run_app_serial(ALL_APPS[app_name], k, settings, seed)


def _app_points(
    app: Application,
    pipeline_counts: Sequence[int],
    settings: RealAppSettings,
    jobs: Optional[int],
) -> List[RealAppPoint]:
    seeds = list(settings.seeds)
    if ALL_APPS.get(app.name) is app:
        tasks = [
            (app.name, k, settings, seed)
            for k in pipeline_counts
            for seed in seeds
        ]
        results = parallel_map(_app_seed_task, tasks, jobs=jobs)
    else:
        # An application outside the catalog cannot be named across a
        # process boundary; run it serially against the object itself.
        results = [
            _run_app_serial(app, k, settings, seed)
            for k in pipeline_counts
            for seed in seeds
        ]
    points = []
    for i, k in enumerate(pipeline_counts):
        chunk = results[i * len(seeds) : (i + 1) * len(seeds)]
        points.append(
            RealAppPoint(
                app=app.name,
                num_pipelines=k,
                throughput=float(np.mean([r[0] for r in chunk])),
                max_queue_depth=int(np.max([r[1] for r in chunk])),
                wasted_slots=int(np.max([r[2] for r in chunk])),
                dropped=int(np.sum([r[3] for r in chunk])),
            )
        )
    return points


def run_application(
    app: Application,
    pipeline_counts: Sequence[int] = PIPELINE_SWEEP,
    settings: Optional[RealAppSettings] = None,
    jobs: Optional[int] = None,
) -> List[RealAppPoint]:
    """Sweep one application over pipeline counts."""
    settings = settings or RealAppSettings()
    return _app_points(app, pipeline_counts, settings, jobs)


def run_figure8(
    pipeline_counts: Sequence[int] = PIPELINE_SWEEP,
    settings: Optional[RealAppSettings] = None,
    jobs: Optional[int] = None,
) -> Dict[str, List[RealAppPoint]]:
    """All four Figure 8 panels.

    With ``jobs`` set, every (app, pipeline count, seed) simulation
    across all four panels becomes one flat task list, maximizing
    worker occupancy instead of parallelizing panel-by-panel.
    """
    settings = settings or RealAppSettings()
    seeds = list(settings.seeds)
    tasks = [
        (app.name, k, settings, seed)
        for app in FIGURE8_APPS
        for k in pipeline_counts
        for seed in seeds
    ]
    results = parallel_map(_app_seed_task, tasks, jobs=jobs)
    per_app = len(pipeline_counts) * len(seeds)
    out: Dict[str, List[RealAppPoint]] = {}
    for a, app in enumerate(FIGURE8_APPS):
        chunk = results[a * per_app : (a + 1) * per_app]
        points = []
        for i, k in enumerate(pipeline_counts):
            sub = chunk[i * len(seeds) : (i + 1) * len(seeds)]
            points.append(
                RealAppPoint(
                    app=app.name,
                    num_pipelines=k,
                    throughput=float(np.mean([r[0] for r in sub])),
                    max_queue_depth=int(np.max([r[1] for r in sub])),
                    wasted_slots=int(np.max([r[2] for r in sub])),
                    dropped=int(np.sum([r[3] for r in sub])),
                )
            )
        out[app.name] = points
    return out


def render_figure8(results: Dict[str, List[RealAppPoint]]) -> str:
    """Render one table per Figure 8 panel."""
    sections = []
    panel = dict(flowlet="8a", conga="8b", wfq="8c", sequencer="8d")
    for app, points in results.items():
        rows = [
            (p.num_pipelines, p.throughput, p.max_queue_depth, p.dropped)
            for p in points
        ]
        sections.append(
            format_table(
                ["pipelines", "throughput", "max queue", "drops"],
                rows,
                title=f"Figure {panel.get(app, '?')}: {app}",
            )
        )
    return "\n\n".join(sections)
