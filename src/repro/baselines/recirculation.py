"""A current-generation multi-pipelined switch with packet re-circulation.

Models the state of the art described in §2.3:

* **static port-to-pipeline mapping** — port ``p`` belongs to pipeline
  ``p // (num_ports / k)`` (the Tofino layout);
* **no state sharing between pipelines** — register indexes are sharded
  statically at configuration time and never move;
* **re-circulation** — a packet that needs state resident in another
  pipeline finishes its current pass and re-enters the target pipeline's
  input, paying a full pipeline traversal per extra pipeline visited and
  competing with fresh arrivals for the input slot.

Within one pass a packet performs the maximal stage-ordered *prefix* of
its outstanding accesses whose arrays are resident in the current
pipeline (an access cannot run before the accesses its inputs depend
on). Neither arrival-order state access (C1) nor line rate is
guaranteed — which is exactly what §4.3.2's microbenchmarks measure.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..compiler.codegen import CompiledProgram
from ..compiler.tac import TacEvaluator
from ..errors import ConfigError
from ..mp5.packet import DataPacket, StateAccess
from ..mp5.stats import SwitchStats


@dataclass
class RecircConfig:
    """Parameters of the re-circulating baseline switch."""

    num_pipelines: int = 4
    num_ports: int = 64
    pipeline_depth: int = 16
    recirc_latency: int = 1  # extra ticks from egress back to an input
    seed: int = 0
    recirc_priority: bool = True  # recirculated packets admitted first

    def __post_init__(self):
        if self.num_pipelines < 1:
            raise ConfigError("num_pipelines must be >= 1")
        if self.num_ports < self.num_pipelines:
            raise ConfigError("need at least one port per pipeline")
        if self.pipeline_depth < 2:
            raise ConfigError("pipeline_depth must be >= 2")
        if self.recirc_latency < 0:
            raise ConfigError("recirc_latency must be >= 0")


class _RecircEvaluator(TacEvaluator):
    """TAC evaluator that executes register ops only for allowed arrays.

    Disallowed reads define their destination with a placeholder zero;
    the instructions consuming it are re-executed on the pass that
    actually covers the access, so final values are correct.
    """

    def __init__(self, headers, registers, env, allowed: Set[str], on_access=None):
        super().__init__(headers, registers, env, on_access=on_access)
        self.allowed = allowed

    def run_instr(self, instr):
        if instr.is_stateful and instr.reg not in self.allowed:
            if instr.dest is not None:
                self.env.setdefault(instr.dest, 0)
            return
        super().run_instr(instr)


class RecirculationSwitch:
    """Tick-driven simulator of the re-circulating baseline."""

    def __init__(self, program: CompiledProgram, config: Optional[RecircConfig] = None):
        self.program = program
        self.config = config or RecircConfig()
        cfg = self.config
        self.depth = max(cfg.pipeline_depth, program.stage_count)
        self.registers = program.make_register_store()
        rng = np.random.default_rng(cfg.seed)

        # Static random sharding, never updated (§2.3).
        self.index_to_pipeline: Dict[str, np.ndarray] = {}
        for plan in program.arrays_in_stage_order():
            if plan.shardable and cfg.num_pipelines > 1:
                mapping = rng.integers(
                    0, cfg.num_pipelines, size=plan.size, dtype=np.int32
                )
            else:
                mapping = np.full(
                    plan.size, rng.integers(0, cfg.num_pipelines), dtype=np.int32
                )
            self.index_to_pipeline[plan.name] = mapping

        self._ports_per_pipe = max(1, cfg.num_ports // cfg.num_pipelines)
        self.stats = SwitchStats()
        self.total_recirculations = 0
        self.total_passes = 0
        self._record_access_order = False

    # ------------------------------------------------------------------

    def _pipe_of_port(self, port: int) -> int:
        return min(
            port // self._ports_per_pipe, self.config.num_pipelines - 1
        )

    def _pipe_of_access(self, access: StateAccess) -> int:
        mapping = self.index_to_pipeline[access.array]
        if access.index is None:
            return int(mapping[0])
        return int(mapping[access.index % len(mapping)])

    def _resolve(self, pkt: DataPacket) -> None:
        """Run the address-resolution logic to plan the packet's accesses
        (the baseline still knows its program's access pattern; what it
        lacks is steering, sharding and ordering machinery)."""
        evaluator = TacEvaluator(pkt.headers, self.registers, pkt.env)
        evaluator.run(self.program.stages[0].instrs)
        accesses: List[StateAccess] = []
        by_stage: Dict[int, List] = {}
        for plan in self.program.arrays_in_stage_order():
            by_stage.setdefault(plan.stage, []).append(plan)
        for stage, plans in sorted(by_stage.items()):
            for plan in plans:
                if plan.guard_operand is not None and plan.guard_resolvable:
                    if not evaluator.value(plan.guard_operand):
                        continue
                if plan.index_operand is not None:
                    index = evaluator.value(plan.index_operand) % plan.size
                else:
                    index = None
                accesses.append(
                    StateAccess(
                        array=plan.name,
                        stage=stage,
                        pipeline=-1,  # resolved per pass
                        index=index,
                        conservative=plan.conservative_phantom,
                    )
                )
        pkt.accesses = accesses

    # ------------------------------------------------------------------

    def run(
        self,
        trace: Iterable,
        max_ticks: Optional[int] = None,
        record_access_order: bool = False,
    ) -> SwitchStats:
        """Drive a packet trace to completion; returns run statistics."""
        cfg = self.config
        self._record_access_order = record_access_order
        packets: List[DataPacket] = []
        for i, entry in enumerate(trace):
            if isinstance(entry, DataPacket):
                packets.append(entry)
            else:
                arrival, port, headers = entry
                packets.append(
                    DataPacket(
                        pkt_id=i, arrival=arrival, port=port, headers=dict(headers)
                    )
                )
        packets.sort(key=lambda p: (p.arrival, p.port, p.pkt_id))
        for seq, pkt in enumerate(packets):
            pkt.pkt_id = seq
        self.stats.offered = len(packets)
        self.stats.arrival_ticks = [p.arrival for p in packets]

        pending = deque(packets)
        fresh: List[Deque[DataPacket]] = [deque() for _ in range(cfg.num_pipelines)]
        recirc: List[Deque[DataPacket]] = [deque() for _ in range(cfg.num_pipelines)]
        # (due_tick, seq, target_pipe, packet) — packets in the loopback.
        loopback: List[Tuple[int, int, int, DataPacket]] = []
        # (exec_tick, seq, pipe, packet, stage, allowed arrays this pass)
        events: List[Tuple[int, int, int, DataPacket, int, frozenset]] = []
        seq = itertools.count()
        live = len(packets)
        tick = 0

        while live > 0:
            if max_ticks is not None and tick >= max_ticks:
                break
            # Deliver loopback packets whose latency elapsed.
            while loopback and loopback[0][0] <= tick:
                _due, _s, pipe, pkt = heapq.heappop(loopback)
                recirc[pipe].append(pkt)
            # Sort fresh arrivals into their statically mapped pipelines.
            while pending and pending[0].arrival <= tick:
                pkt = pending.popleft()
                fresh[self._pipe_of_port(pkt.port)].append(pkt)
            # Admit at most one packet per pipeline input per tick.
            for pipe in range(cfg.num_pipelines):
                queue_order = (
                    (recirc[pipe], fresh[pipe])
                    if cfg.recirc_priority
                    else (fresh[pipe], recirc[pipe])
                )
                pkt = None
                for queue in queue_order:
                    if queue:
                        pkt = queue.popleft()
                        break
                if pkt is None:
                    continue
                if not pkt.accesses and pkt.entry_tick < 0:
                    self._resolve(pkt)
                pkt.entry_tick = tick
                self.total_passes += 1
                covered = self._covered_prefix(pkt, pipe)
                for stage in range(self.program.stage_count):
                    heapq.heappush(
                        events,
                        (tick + stage, next(seq), pipe, pkt, stage, covered),
                    )
                heapq.heappush(
                    events,
                    (
                        tick + self.depth - 1,
                        next(seq),
                        pipe,
                        pkt,
                        -1,  # completion marker
                        covered,
                    ),
                )
            # Execute this tick's stage events in deterministic order.
            while events and events[0][0] <= tick:
                _t, _s, pipe, pkt, stage, covered = heapq.heappop(events)
                if stage >= 0:
                    self._execute_stage(pkt, stage, covered)
                else:
                    live -= self._complete_pass(pkt, tick, loopback, seq)
            tick += 1

        self.stats.ticks = tick
        return self.stats

    # ------------------------------------------------------------------

    def _covered_prefix(self, pkt: DataPacket, pipe: int) -> frozenset:
        """Arrays this pass may access: the maximal stage-ordered prefix of
        outstanding accesses resident in ``pipe``."""
        covered = set()
        for access in pkt.accesses:
            if access.completed:
                continue
            if self._pipe_of_access(access) != pipe:
                break
            covered.add(access.array)
        return frozenset(covered)

    def _execute_stage(self, pkt: DataPacket, stage: int, covered: frozenset) -> None:
        instrs = self.program.stages[stage].instrs
        if not instrs:
            return
        if self._record_access_order:
            pkt_id = pkt.pkt_id

            def logger(reg, idx, kind, _pid=pkt_id):
                order = self.stats.access_order.setdefault((reg, idx), [])
                if not order or order[-1] != _pid:
                    order.append(_pid)

        else:
            logger = None
        evaluator = _RecircEvaluator(
            pkt.headers, self.registers, pkt.env, covered, on_access=logger
        )
        evaluator.run(instrs)
        if stage > 0:
            for access in pkt.accesses:
                if access.stage == stage and access.array in covered:
                    access.completed = True

    def _complete_pass(self, pkt, tick, loopback, seq) -> int:
        """Handle a packet reaching the pipeline output. Returns 1 when
        the packet is fully processed (egressed), else 0."""
        remaining = [a for a in pkt.accesses if not a.completed]
        if not remaining:
            pkt.egress_tick = tick
            self.stats.egressed += 1
            self.stats.egress_ticks.append(tick)
            if pkt.flow_id is not None:
                self.stats.flow_egress.setdefault(pkt.flow_id, []).append(pkt.pkt_id)
            return 1
        self.total_recirculations += 1
        target = self._pipe_of_access(remaining[0])
        heapq.heappush(
            loopback,
            (tick + 1 + self.config.recirc_latency, next(seq), target, pkt),
        )
        return 0

    @property
    def avg_recirculations(self) -> float:
        return (
            self.total_recirculations / self.stats.offered
            if self.stats.offered
            else 0.0
        )


def run_recirculation(
    program: CompiledProgram,
    trace: Iterable,
    config: Optional[RecircConfig] = None,
    max_ticks: Optional[int] = None,
    record_access_order: bool = False,
) -> Tuple[SwitchStats, RecirculationSwitch]:
    """Convenience runner; returns (stats, switch) so callers can read
    recirculation counts and final registers."""
    switch = RecirculationSwitch(program, config)
    stats = switch.run(
        trace, max_ticks=max_ticks, record_access_order=record_access_order
    )
    return stats, switch
