"""§4.3.2 microbenchmark — D4: preemptive state-access-order enforcement.

C1 violations with D4 (always zero), without D4 (paper: 14-26% of
packets), and on the re-circulating current-generation design (paper:
18-31%). We report the inversion-density reading of "fraction violating
C1" as the headline and keep the strict displaced-packet reading
alongside (see EXPERIMENTS.md for the metric discussion).
"""

import numpy as np

from repro.harness import MicrobenchSettings, run_d4

from conftest import micro_params, run_once


def test_d4_order_enforcement(benchmark, show):
    settings = MicrobenchSettings(**micro_params())
    result = run_once(benchmark, lambda: run_d4(settings))

    show(
        "D4: C1 violation fraction (inversion / displaced metric)\n"
        f"  MP5 (D4)      : {float(np.mean(result.with_d4)):.3f} / "
        f"{float(np.mean(result.with_d4_displaced)):.3f}\n"
        f"  no D4         : {float(np.mean(result.without_d4)):.3f} / "
        f"{float(np.mean(result.without_d4_displaced)):.3f}\n"
        f"  recirculation : {float(np.mean(result.recirculation)):.3f} / "
        f"{float(np.mean(result.recirculation_displaced)):.3f}"
    )

    # With D4: zero violations under either metric, on every stream.
    assert all(v == 0.0 for v in result.with_d4)
    assert all(v == 0.0 for v in result.with_d4_displaced)
    # Without D4: double-digit-percent violations appear.
    assert all(v > 0.0 for v in result.without_d4)
    assert float(np.mean(result.without_d4)) > 0.03
    # Re-circulation is worse still (paper: 18-31% vs 14-26%).
    assert float(np.mean(result.recirculation)) > float(
        np.mean(result.without_d4)
    )
