"""MP5 design-ablation variants expressed as configurations.

These reuse the full MP5 engine with individual design principles
disabled, which is how §4.3.2 evaluates the contribution of D2 and D4.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from ..compiler.codegen import CompiledProgram
from ..mp5.config import MP5Config
from ..mp5.stats import SwitchStats
from ..mp5.switch import MP5Switch


def static_shard_config(**kwargs) -> MP5Config:
    """D2 ablation: register state sharded randomly across pipelines at
    compile time and never moved during runtime (§4.3.2)."""
    kwargs.setdefault("initial_shard", "random")
    kwargs["remap_algorithm"] = "none"
    return MP5Config(**kwargs)


def no_phantom_config(**kwargs) -> MP5Config:
    """D4 ablation: steering and sharding active, but no phantom packets —
    stateful packets queue in simple push order, so arrival-order state
    access is no longer enforced (§4.3.2 reports 14-26% violations)."""
    kwargs["enable_phantoms"] = False
    return MP5Config(**kwargs)


def make_single_pipeline_state_switch(
    program: CompiledProgram, config: Optional[MP5Config] = None
) -> MP5Switch:
    """The naive design from §3.1 Challenge #1: all register state lives
    in pipeline 0, so every stateful packet funnels through it and the
    stateful processing rate caps at 1/k of line rate."""
    config = config or MP5Config()
    switch = MP5Switch(program, config)
    for state in switch.sharder.arrays.values():
        state.index_to_pipeline[:] = 0
        state.shardable = False  # remap must never spread it again
    return switch


def run_single_pipeline_state(
    program: CompiledProgram,
    trace: Iterable,
    config: Optional[MP5Config] = None,
    max_ticks: Optional[int] = None,
    record_access_order: bool = False,
) -> Tuple[SwitchStats, dict]:
    """Run a trace through the naive single-pipeline-state design."""
    switch = make_single_pipeline_state_switch(program, config)
    stats = switch.run(
        trace, max_ticks=max_ticks, record_access_order=record_access_order
    )
    return stats, switch.registers
