"""Dense reference engine: the executable specification of one MP5 tick.

:class:`MP5Switch` runs a sparse fast path (worklist movement, in-place
occupancy, precompiled operand readers, incremental queue telemetry).
This module keeps the original dense semantics — full ``k × depth`` slot
scans, a fresh occupancy grid per tick, per-packet operand-reader
closures, and queue-depth telemetry recomputed by walking every FIFO
slot — exactly as the engine was first written. It exists so the fast
path can be *differentially* tested: ``tests/test_fastpath_equivalence``
runs fuzzed programs and traces through both engines and asserts
tick-for-tick identical :class:`~repro.mp5.stats.SwitchStats` and final
register state.

The reference intentionally recomputes occupancy from the slots rather
than trusting the FIFOs' incremental counters, so a counter bug in
:mod:`repro.mp5.fifo` shows up as a telemetry divergence instead of
being hidden by shared bookkeeping.
"""

from __future__ import annotations

from typing import Deque, Dict, Iterable, List, Optional, Tuple

from ..compiler.codegen import CompiledProgram
from ..compiler.tac import Const, TacEvaluator
from ..domino.builtins import hash2
from .config import MP5Config
from .fifo import IdealOrderBuffer
from .packet import DataPacket, PhantomPacket, StateAccess
from .stats import SwitchStats
from .switch import FLOW_ORDER_ARRAY, MP5Switch, TraceEntry


def _slot_data_occupancy(fifo) -> int:
    """Count queued data packets by walking the slots (seed semantics)."""
    if isinstance(fifo, IdealOrderBuffer):
        return sum(
            1
            for q in fifo.queues.values()
            for s in q
            if not s.is_phantom and not s.consumed
        )
    return sum(
        1 for b in fifo.buffers for s in b if not s.is_phantom and not s.consumed
    )


class ReferenceSwitch(MP5Switch):
    """MP5 switch with the original dense per-tick semantics.

    The executable specification the fast path is verified against: it
    rebuilds the full k x depth occupancy grid every tick and takes no
    shortcuts (no tail teleport, no sparse worklists), so its behaviour
    is the plain reading of the §3 tick. Differential tests assert both
    engines produce identical :class:`~repro.mp5.stats.SwitchStats`,
    registers, and canonical event streams on every program, config —
    and, via ``attach_faults``, every fault schedule.
    """

    def _run_resolution(self, headers, registers, env):
        """Execute the stage-0 (address resolution) program against the
        given state and return an operand-value reader."""
        if self._stage_fns is not None:
            fn = self._stage_fns[0]
            if fn is not None:
                fn(headers, registers, env, None)

            def value(operand):
                if isinstance(operand, Const):
                    return operand.value
                return env[operand.name]

            return value
        evaluator = TacEvaluator(headers, registers, env)
        evaluator.run(self._stage_instrs[0])
        return evaluator.value

    def _choose_entry_pipe(self, pkt: DataPacket) -> int:
        if self.config.spray_policy != "affinity":
            return self._spray_next
        value = self._run_resolution(
            dict(pkt.headers), self.registers, dict(pkt.env)
        )
        for _stage, plans in self._plans_by_stage:
            plan = plans[0]
            if len(plans) == 1:
                if plan.guard_operand is not None and plan.guard_resolvable:
                    if not value(plan.guard_operand):
                        continue
                if plan.index_operand is not None and plan.shardable:
                    index = value(plan.index_operand) % plan.size
                else:
                    index = None
            else:
                index = None
            return self.sharder.lookup(plan.name, index)
        return self._spray_next

    def _inject(self, pkt: DataPacket, pipe: int) -> None:
        """Address-resolution stage with per-packet operand closures."""
        cfg = self.config
        pkt.entry_pipeline = pipe
        pkt.entry_tick = self.tick
        self.occ[pipe][0] = pkt
        self._live += 1

        value = self._run_resolution(pkt.headers, self.registers, pkt.env)

        accesses: List[StateAccess] = []
        for stage, plans in self._plans_by_stage:
            if len(plans) == 1:
                plan = plans[0]
                if plan.guard_operand is not None and plan.guard_resolvable:
                    if not value(plan.guard_operand):
                        continue  # resolved: this packet never touches it
                if plan.index_operand is not None and plan.shardable:
                    index = value(plan.index_operand) % plan.size
                else:
                    index = None
                dest = self.sharder.note_resolved(plan.name, index)
                accesses.append(
                    StateAccess(
                        array=plan.name,
                        stage=stage,
                        pipeline=dest,
                        index=index,
                        conservative=plan.conservative_phantom,
                    )
                )
            else:
                dest = self.sharder.note_resolved(plans[0].name, None)
                accesses.append(
                    StateAccess(
                        array="+".join(p.name for p in plans),
                        stage=stage,
                        pipeline=dest,
                        index=None,
                        conservative=any(p.conservative_phantom for p in plans),
                    )
                )
        if self._flow_order_stage is not None:
            flow_key = pkt.headers.get(cfg.flow_order_field, 0)
            if pkt.flow_id is None:
                pkt.flow_id = flow_key
            index = hash2(flow_key, 0x5F0E) % cfg.flow_order_size
            dest = self.sharder.note_resolved(FLOW_ORDER_ARRAY, index)
            accesses.append(
                StateAccess(
                    array=FLOW_ORDER_ARRAY,
                    stage=self._flow_order_stage,
                    pipeline=dest,
                    index=index,
                )
            )
        pkt.accesses = accesses
        obs = self.obs
        if obs is not None:
            obs.ingress(self.tick, pkt.pkt_id, pipe, pkt.port, pkt.flow_id)

        if cfg.enable_phantoms:
            faults = self._faults
            for access in accesses:
                phantom = PhantomPacket(
                    pkt_id=pkt.pkt_id,
                    array=access.array,
                    index=access.index,
                    pipeline=access.pipeline,
                    stage=access.stage,
                    created_tick=self.tick,
                )
                self.stats.phantoms_generated += 1
                if obs is not None:
                    obs.phantom_emit(
                        self.tick,
                        pkt.pkt_id,
                        access.pipeline,
                        access.stage,
                        access.array,
                        access.index,
                    )
                delay = cfg.phantom_latency
                if faults is not None:
                    lost, extra = faults.phantom_fault(
                        pkt.pkt_id, access.pipeline, access.stage
                    )
                    if lost:
                        self.stats.phantoms_lost += 1
                        if obs is not None:
                            obs.phantom_loss(
                                self.tick,
                                pkt.pkt_id,
                                access.pipeline,
                                access.stage,
                                access.array,
                            )
                        continue
                    delay += extra
                if delay == 0:
                    if not self._deliver_phantom(phantom, pipe):
                        self._drop(pkt, "phantom_fifo_full")
                        self.occ[pipe][0] = None
                        return
                else:
                    self._phantom_mail.setdefault(
                        self.tick + delay, []
                    ).append((phantom, pipe))

    def _step(self, pending: Deque[DataPacket]) -> None:
        cfg = self.config
        tick = self.tick
        obs = self.obs

        # (0) Fault windows open/close at the tick boundary (same
        # injector protocol as the fast engine).
        faults = self._faults
        if faults is not None:
            faults.begin_tick(tick, self)
            stalled = faults.stalled
            xfail = faults.crossbar_failed
        else:
            stalled = None
            xfail = None

        # (1) Phantom deliveries scheduled for this tick.
        for phantom, fifo_id in self._phantom_mail.pop(tick, ()):
            self._deliver_phantom(phantom, fifo_id)

        # (2) Injections, strictly in arrival order.
        injected = 0
        while (
            pending
            and pending[0].arrival <= tick
            and injected < cfg.num_pipelines
        ):
            pipe = self._choose_entry_pipe(pending[0])
            probed = 0
            blocked = stalled is not None and pipe in stalled
            while (
                self.occ[pipe][0] is not None or blocked
            ) and probed < cfg.num_pipelines:
                pipe = (pipe + 1) % cfg.num_pipelines
                blocked = stalled is not None and pipe in stalled
                probed += 1
            if self.occ[pipe][0] is not None or blocked:
                break
            self._inject(pending.popleft(), pipe)
            self._spray_next = (pipe + 1) % cfg.num_pipelines
            injected += 1

        # (3) Movement using a full occupancy snapshot and a fresh grid.
        new_occ: List[List[Optional[DataPacket]]] = [
            [None] * self.depth for _ in range(cfg.num_pipelines)
        ]
        last = self.depth - 1
        if self.crossbar is not None:
            self.crossbar.begin_tick()
        for pipe in range(cfg.num_pipelines):
            row = self.occ[pipe]
            if stalled is not None and pipe in stalled:
                # Stalled pipeline: its packets freeze in place.
                new_occ[pipe] = row[:]
                continue
            for stage in range(self.depth):
                pkt = row[stage]
                if pkt is None:
                    continue
                if stage == last:
                    self._egress(pkt)
                    continue
                access = pkt.access_at_stage(stage + 1)
                if access is None:
                    if self.crossbar is not None:
                        self.crossbar.record(pipe, pipe, stage + 1)
                    new_occ[pipe][stage + 1] = pkt
                    continue
                dest = access.pipeline
                if xfail is not None and dest in xfail:
                    self._drop(pkt, "crossbar_down")
                    continue
                if self.crossbar is not None:
                    self.crossbar.record(pipe, dest, stage + 1)
                if dest != pipe:
                    self.stats.steering_moves += 1
                if obs is not None:
                    obs.steer(tick, pkt.pkt_id, pipe, dest, stage + 1)
                fifo = self.fifos[(dest, stage + 1)]
                if cfg.enable_phantoms:
                    if (
                        cfg.ecn_threshold is not None
                        and not pkt.ecn_marked
                        and _slot_data_occupancy(fifo) >= cfg.ecn_threshold
                    ):
                        pkt.ecn_marked = True
                        self.stats.ecn_marked += 1
                        if obs is not None:
                            obs.ecn_mark(tick, pkt.pkt_id, dest, stage + 1)
                    ok = fifo.insert(pkt, tick)
                    if ok:
                        if obs is not None:
                            obs.phantom_match(tick, pkt.pkt_id, dest, stage + 1)
                    else:
                        self._drop(pkt, "no_phantom")
                else:
                    ok = fifo.push(pkt, pipe, tick)
                    if not ok:
                        self._drop(pkt, "fifo_full")

        if self.crossbar is not None:
            self.crossbar.end_tick()

        # (4) Pops: fill free slots of stateful stages.
        for (pipe, stage), fifo in self.fifos.items():
            if stalled is not None and pipe in stalled:
                continue
            slot = new_occ[pipe][stage]
            if slot is not None:
                if cfg.starvation_threshold is not None:
                    age = fifo.head_data_age(tick)
                    if age is not None and age > cfg.starvation_threshold:
                        self._drop(slot, "starvation_preemption")
                        self.stats.drops_starvation += 1
                        new_occ[pipe][stage] = None
                    else:
                        continue
                else:
                    continue
            popped = fifo.pop()
            if popped is not None:
                new_occ[pipe][stage] = popped
                if obs is not None:
                    obs.fifo_pop(tick, popped.pkt_id, pipe, stage)
            elif obs is not None and fifo.data_occupancy():
                obs.fifo_block(tick, pipe, stage)

        # (5) Service every newly occupied slot, dense scan in
        # (pipeline, stage) order. Every occupied slot is newly occupied
        # *except* on a stalled pipeline, whose packets did not move and
        # must not be re-serviced (their atoms already ran).
        for pipe in range(cfg.num_pipelines):
            if stalled is not None and pipe in stalled:
                continue
            row = new_occ[pipe]
            for stage in range(1, self.depth):
                pkt = row[stage]
                if pkt is not None:
                    self._service(pkt, stage, pipe)

        self.occ = new_occ

        # (6) Background dynamic sharding.
        if (
            cfg.remap_algorithm != "none"
            and tick
            and tick % cfg.remap_period == 0
        ):
            moved = self.sharder.end_epoch(cfg.remap_algorithm)
            self.stats.remap_moves += moved
            if obs is not None:
                obs.remap(tick, moved)

        # Queue-depth telemetry recomputed from the slots every tick.
        for key, fifo in self.fifos.items():
            depth = _slot_data_occupancy(fifo)
            if depth > self.stats.max_queue_depth:
                self.stats.max_queue_depth = depth
            prev = self.stats.per_stage_peak_queue.get(key, 0)
            if depth > prev:
                self.stats.per_stage_peak_queue[key] = depth

        if self._metrics is not None:
            self._metrics.maybe_roll(tick)
        if self._monitor is not None:
            self._monitor.end_tick(tick, self)

        self.tick += 1


def run_mp5_reference(
    program: CompiledProgram,
    trace: Iterable[TraceEntry],
    config: Optional[MP5Config] = None,
    max_ticks: Optional[int] = None,
    record_access_order: bool = False,
    recorder=None,
    metrics=None,
    profiler=None,
    faults=None,
    monitor=None,
    native=None,
    epoch_jobs=None,
) -> Tuple[SwitchStats, Dict[str, List[int]]]:
    """Run a trace through the dense reference engine (see module doc).

    The reference emits the same lifecycle events as the fast engine
    (``recorder``), so differential tests can diff traces too; the
    profiler is accepted for interface parity but the dense ``_step``
    is not phase-timed. ``faults`` attaches a
    :class:`repro.faults.FaultSchedule`, as in :func:`run_mp5`.
    """
    switch = ReferenceSwitch(program, config)
    if (
        recorder is not None
        or metrics is not None
        or profiler is not None
        or monitor is not None
    ):
        switch.attach_observability(
            recorder=recorder, metrics=metrics, profiler=profiler,
            monitor=monitor,
        )
    if faults is not None:
        switch.attach_faults(faults)
    stats = switch.run(
        trace, max_ticks=max_ticks, record_access_order=record_access_order
    )
    registers = {
        name: values
        for name, values in switch.registers.items()
        if name != FLOW_ORDER_ARRAY
    }
    return stats, registers
