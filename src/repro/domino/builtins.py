"""Builtin functions available in Domino expressions.

Hash builtins model the hardware hash units of an RMT pipeline: they are
deterministic, stateless, and cheap. We use a Knuth-style multiplicative
mix so that distinct tuples spread well across register indexes, which is
what the sharding experiments rely on. All arithmetic is done modulo
2**32 to mirror 32-bit datapath semantics.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

MASK32 = 0xFFFFFFFF
_GOLDEN = 0x9E3779B1  # 2**32 / golden ratio, a classic Fibonacci-hash constant


def _mix(state: int, value: int) -> int:
    state = (state ^ (value & MASK32)) & MASK32
    state = (state * _GOLDEN) & MASK32
    state ^= state >> 15
    return state & MASK32


def hash_tuple(values: Sequence[int]) -> int:
    """Deterministic hash of an integer tuple.

    The result is masked to 31 bits so it stays non-negative under the
    32-bit two's-complement datapath semantics — hardware hash units feed
    address lines and never produce "negative" indexes.
    """
    state = 0x811C9DC5
    for value in values:
        state = _mix(state, value)
    return state & 0x7FFFFFFF


def hash2(a: int, b: int) -> int:
    return hash_tuple((a, b))


def hash3(a: int, b: int, c: int) -> int:
    return hash_tuple((a, b, c))


def hash5(a: int, b: int, c: int, d: int, e: int) -> int:
    return hash_tuple((a, b, c, d, e))


def builtin_min(a: int, b: int) -> int:
    return a if a < b else b


def builtin_max(a: int, b: int) -> int:
    return a if a > b else b


BUILTINS: Dict[str, Callable[..., int]] = {
    "hash2": hash2,
    "hash3": hash3,
    "hash5": hash5,
    "min": builtin_min,
    "max": builtin_max,
}
