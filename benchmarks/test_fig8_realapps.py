"""Figure 8 (§4.4): real applications with realistic traffic.

Flowlet switching, CONGA, WFQ, and the network sequencer under bimodal
200 B / 1400 B packets and web-search flow sizes, swept over pipeline
counts. Shape criteria from the paper:

* every application sustains line rate at every pipeline count;
* per-stage queues stay bounded and small (paper maxima: 11/8/7/7);
* zero packet drops (queuing is bounded, so no FIFO overflows).
"""

import pytest

from repro.harness import RealAppSettings, render_figure8, run_figure8

from conftest import bench_params, run_once

PAPER_MAX_QUEUE = {"flowlet": 11, "conga": 8, "wfq": 7, "sequencer": 7}


def test_fig8_real_applications(benchmark, show):
    params = bench_params()
    settings = RealAppSettings(
        num_packets=params["num_packets"], seeds=params["seeds"]
    )
    results = run_once(benchmark, lambda: run_figure8(settings=settings))
    show(render_figure8(results))

    assert set(results) == {"flowlet", "conga", "wfq", "sequencer"}
    for app, points in results.items():
        for point in points:
            assert point.throughput > 0.97, (app, point.num_pipelines)
            assert point.dropped == 0, (app, point.num_pipelines)
        # Queues stay small and bounded — same order as the paper's
        # 11/8/7/7 maxima (we allow a small factor for simulator
        # differences, not unbounded growth).
        max_queue = max(p.max_queue_depth for p in points)
        assert max_queue <= 3 * PAPER_MAX_QUEUE[app] + 4, (app, max_queue)


def test_fig8_scalar_state_limit_beyond_sweep(benchmark):
    """§3.5.2 check: past the sweep, a global-register application is
    fundamentally limited to mean_packet_size/(64*k) of line rate — at
    k=16 with ~740 B mean packets that is ~0.72, not line rate."""
    from repro.apps import SEQUENCER
    from repro.harness import run_application

    params = bench_params()
    settings = RealAppSettings(
        num_packets=params["num_packets"], seeds=params["seeds"][:1]
    )

    points = run_once(
        benchmark,
        lambda: run_application(SEQUENCER, pipeline_counts=(16,), settings=settings),
    )
    (point,) = points
    mean_bytes = 0.55 * 200 + 0.45 * 1400
    fundamental = mean_bytes / (64 * 16)
    assert point.throughput == pytest.approx(fundamental, abs=0.05)
    assert point.throughput < 0.85  # clearly below line rate
