"""Differential testing: vector (batch SoA) engine vs fast and dense.

:class:`~repro.mp5.vector.VectorSwitch` replaces per-tick, per-packet
stepping with an epoch reduction over structure-of-arrays state. Its
admission rule is exactness: for every supported (program, config,
trace) it must produce the *identical* :class:`SwitchStats` and final
register state as the fast engine (itself pinned to the dense
reference by ``test_fastpath_equivalence``). Anything it cannot
reproduce bit-for-bit must raise :class:`VectorUnsupported` or fall
back — never approximate.

This module asserts both halves of that contract: native agreement
over the sensitivity workload, every real application, fuzzed
programs, and the supported config matrix; and fallback equivalence
(silent for configs/program shapes, a one-line warning for faults)
for everything else — plus the end-to-end check that ``run_all``
produces byte-identical ``results.json`` under ``engine="vector"``
and ``engine="fast"``. Observability sinks no longer fall back: the
vector engine reconstructs the event stream after the closed-form run
(see ``tests/test_vector_obs.py`` for the parity suite).
"""

import json

import numpy as np
import pytest

from repro.apps import ALL_APPS
from repro.cli import main
from repro.compiler import compile_program
from repro.faults import FaultSchedule
from repro.harness.runall import run_all
from repro.mp5 import (
    ENGINES,
    FLOW_ORDER_ARRAY,
    MP5Config,
    VectorSwitch,
    VectorUnsupported,
    run_mp5,
    run_mp5_reference,
    run_mp5_vector,
)
from repro.mp5.vector import config_fallback_reason, reset_fallback_warnings
from repro.obs import InvariantMonitor
from repro.workloads import line_rate_trace
from repro.workloads.synthetic import make_sensitivity_program, sensitivity_trace

from tests.test_fuzz_equivalence import FIELDS, random_program


@pytest.fixture(autouse=True)
def _fresh_warning_scope():
    """The fallback-warning dedup set is process-global (one line per
    run, not per sweep cell); the service tests emit the same messages,
    so each test here starts a fresh scope like a CLI entry would."""
    reset_fallback_warnings()
    yield
    reset_fallback_warnings()


def _vector_native(program, trace, config, max_ticks=None):
    """Run the vector engine with no fallback permitted: an unsupported
    input fails the test instead of silently downgrading coverage."""
    switch = VectorSwitch(program, config)
    stats = switch.run(trace, max_ticks=max_ticks)
    registers = {
        name: values
        for name, values in switch.registers.items()
        if name != FLOW_ORDER_ARRAY
    }
    return stats, registers


def _assert_vector_agrees(
    program, trace_factory, config, max_ticks=None, dense=True
):
    """Vector vs fast (and optionally dense) on identical inputs; the
    trace is regenerated per engine because runs mutate packets."""
    vec_stats, vec_regs = _vector_native(
        program, trace_factory(), config, max_ticks=max_ticks
    )
    fast_stats, fast_regs = run_mp5(
        program, trace_factory(), config, max_ticks=max_ticks
    )
    assert vec_stats == fast_stats
    assert vec_regs == fast_regs
    if dense:
        ref_stats, ref_regs = run_mp5_reference(
            program, trace_factory(), config, max_ticks=max_ticks
        )
        assert vec_stats == ref_stats
        assert vec_regs == ref_regs
    return vec_stats


# ---------------------------------------------------------------------------
# Sensitivity workload (Figure 7 configurations)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("k", (1, 2, 4))
@pytest.mark.parametrize("seed", (0, 1))
def test_vector_agrees_sensitivity(k, seed):
    program = make_sensitivity_program(num_stateful=4, register_size=64)

    def trace_factory():
        return sensitivity_trace(250, k, 4, 64, seed=seed)

    stats = _assert_vector_agrees(
        program, trace_factory, MP5Config(num_pipelines=k)
    )
    assert stats.egressed == 250


def test_vector_agrees_skewed_pattern():
    program = make_sensitivity_program(num_stateful=4, register_size=64)

    def trace_factory():
        return sensitivity_trace(250, 4, 4, 64, pattern="skewed", seed=0)

    _assert_vector_agrees(program, trace_factory, MP5Config(num_pipelines=4))


# Every config knob the vector engine supports natively; the fallback
# matrix below covers the rest.
NATIVE_CONFIGS = {
    "remap_none": dict(remap_algorithm="none"),
    "remap_optimal": dict(remap_algorithm="optimal"),
    "short_remap_period": dict(remap_period=3),
    "random_initial_shard": dict(initial_shard="random"),
    "flow_order": dict(flow_order_field="f0"),
    "no_jit": dict(jit=False),
}


@pytest.mark.parametrize("name", sorted(NATIVE_CONFIGS))
def test_vector_agrees_on_native_config(name):
    program = make_sensitivity_program(num_stateful=4, register_size=64)

    def trace_factory():
        return sensitivity_trace(250, 4, 4, 64, seed=0)

    stats = _assert_vector_agrees(
        program,
        trace_factory,
        MP5Config(num_pipelines=4, **NATIVE_CONFIGS[name]),
    )
    assert stats.egressed == 250


@pytest.mark.parametrize("max_ticks", (0, 1, 37, 120))
def test_vector_agrees_truncated_run(max_ticks):
    """max_ticks cuts mid-flight: packets stuck in the tail must not
    egress, and partial register state must match exactly."""
    program = make_sensitivity_program(num_stateful=4, register_size=64)

    def trace_factory():
        return sensitivity_trace(200, 4, 4, 64, seed=0)

    _assert_vector_agrees(
        program,
        trace_factory,
        MP5Config(num_pipelines=4),
        max_ticks=max_ticks,
    )


def test_vector_agrees_phantom_latency():
    """Delayed phantoms shift every FIFO insert; stateful_firewall has
    slack before its first stateful stage."""
    app = ALL_APPS["stateful_firewall"]
    program = app.compile()

    def trace_factory():
        return app.workload(200, 4, seed=0)

    _assert_vector_agrees(
        program,
        trace_factory,
        MP5Config(num_pipelines=4, phantom_latency=1),
    )


# ---------------------------------------------------------------------------
# Real applications (Figure 8 workloads)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("app_name", sorted(ALL_APPS))
@pytest.mark.parametrize("k", (1, 4))
def test_vector_agrees_real_app(app_name, k):
    app = ALL_APPS[app_name]
    program = app.compile()

    def trace_factory():
        return app.workload(250, k, seed=0)

    _assert_vector_agrees(program, trace_factory, MP5Config(num_pipelines=k))


# ---------------------------------------------------------------------------
# Fuzzed programs
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(12))
def test_vector_agrees_fuzzed_program(seed):
    rng = np.random.default_rng(3000 + seed)
    source = random_program(rng)
    program = compile_program(source, name=f"vp{seed}")
    k = int(rng.integers(1, 5))

    def trace_factory():
        return line_rate_trace(
            200,
            k,
            lambda r, i: {f: int(r.integers(0, 32)) for f in FIELDS},
            seed=seed,
        )

    config = MP5Config(num_pipelines=k)
    try:
        _assert_vector_agrees(program, trace_factory, config)
    except VectorUnsupported:
        # Out of the vector envelope: the wrapper must still match the
        # fast engine via its silent fallback.
        vec = run_mp5_vector(program, trace_factory(), config)
        fast = run_mp5(program, trace_factory(), config)
        assert vec == fast


# ---------------------------------------------------------------------------
# Fallback matrix
# ---------------------------------------------------------------------------

FALLBACK_CONFIGS = {
    "ideal_queues": dict(ideal_queues=True),
    "no_phantoms": dict(enable_phantoms=False),
    "tiny_fifo": dict(fifo_capacity=2),
    "ecn": dict(ecn_threshold=4),
    "starvation": dict(starvation_threshold=5),
    "phantom_loss": dict(phantom_loss_rate=0.2),
    "crossbar": dict(record_crossbar=True),
    "affinity_spray": dict(spray_policy="affinity"),
}


@pytest.mark.parametrize("name", sorted(FALLBACK_CONFIGS))
def test_unsupported_config_falls_back_silently(name, capsys):
    config = MP5Config(num_pipelines=4, **FALLBACK_CONFIGS[name])
    assert config_fallback_reason(config) is not None
    program = make_sensitivity_program(num_stateful=4, register_size=64)
    vec = run_mp5_vector(
        program, sensitivity_trace(200, 4, 4, 64, seed=0), config
    )
    fast = run_mp5(
        program, sensitivity_trace(200, 4, 4, 64, seed=0), config
    )
    assert vec == fast
    assert capsys.readouterr().err == ""  # config fallback stays quiet


def test_observability_runs_on_vector_without_fallback(capsys):
    """Observability sinks no longer trigger fallback: the monitor
    attaches to the vector engine's reconstructed stream, runs clean on
    a fault-free workload, and never perturbs the results."""
    program = make_sensitivity_program(num_stateful=4, register_size=64)
    config = MP5Config(num_pipelines=4)
    monitor = InvariantMonitor()
    vec = run_mp5_vector(
        program,
        sensitivity_trace(200, 4, 4, 64, seed=0),
        config,
        monitor=monitor,
    )
    assert capsys.readouterr().err == ""  # no fallback warning
    assert monitor.health_report().verdict == "ok"  # sink really attached
    assert len(monitor.alerts) == 0
    fast = run_mp5(
        program, sensitivity_trace(200, 4, 4, 64, seed=0), config
    )
    assert vec == fast


def test_faults_fall_back_with_warning(capsys):
    program = make_sensitivity_program(num_stateful=4, register_size=64)
    config = MP5Config(num_pipelines=4)
    schedule = FaultSchedule.load("examples/faults/slowdown.json")
    vec = run_mp5_vector(
        program,
        sensitivity_trace(200, 4, 4, 64, seed=0),
        config,
        faults=schedule,
    )
    assert "faults attached" in capsys.readouterr().err
    fast = run_mp5(
        program,
        sensitivity_trace(200, 4, 4, 64, seed=0),
        config,
        faults=FaultSchedule.load("examples/faults/slowdown.json"),
    )
    assert vec == fast


def test_cli_vector_monitor_no_fallback(capsys):
    """``--engine vector --monitor`` runs natively on the vector engine
    (no fallback warning) and prints the health verdict."""
    assert main(
        ["run", "heavy_hitter", "--packets", "300", "--engine", "vector",
         "--monitor"]
    ) == 0
    captured = capsys.readouterr()
    assert "falling back" not in captured.err
    assert "throughput" in captured.out
    assert "health: ok" in captured.out


def test_cli_vector_faults_fallback_warns_once(capsys):
    """Faults remain outside the vector envelope: the CLI run warns
    exactly once and still prints the statistics block."""
    assert main(
        ["run", "heavy_hitter", "--packets", "300", "--engine", "vector",
         "--faults", "examples/faults/slowdown.json"]
    ) == 0
    captured = capsys.readouterr()
    assert captured.err.count("faults attached") == 1
    assert captured.err.count("falling back to the fast engine") == 1
    assert "throughput" in captured.out


def test_cli_vector_native_no_warning(capsys):
    assert main(
        ["run", "heavy_hitter", "--packets", "300", "--engine", "vector"]
    ) == 0
    captured = capsys.readouterr()
    assert "falling back" not in captured.err
    assert "throughput" in captured.out


# ---------------------------------------------------------------------------
# Streaming: start/feed/pump/finish vs run() (the PR 8 contract on the
# vector engine — byte-identical at any chunking, memory bounded by the
# largest epoch)
# ---------------------------------------------------------------------------


def _stream_vector(
    program,
    trace,
    config,
    chunk,
    native=None,
    epoch_jobs=None,
    monitor=None,
    metrics=None,
):
    """Feed ``trace`` in ``chunk``-sized batches with a watermark-gated
    pump after every feed — the exact loop the service daemon runs."""
    switch = VectorSwitch(
        program, config, native=native, epoch_jobs=epoch_jobs
    )
    if monitor is not None or metrics is not None:
        switch.attach_observability(metrics=metrics, monitor=monitor)
    switch.start()
    for i in range(0, len(trace), chunk):
        switch.feed(trace[i : i + chunk])
        switch.pump(until_tick=switch.ingest_watermark)
    stats = switch.finish()
    return switch, stats


def _snapshot(switch, stats):
    registers = {
        name: values
        for name, values in switch.registers.items()
        if name != FLOW_ORDER_ARRAY
    }
    return stats, registers, switch._last_schedule.dag_signature()


@pytest.mark.parametrize("chunk", (1, 7, 64, 1000))
def test_vector_streaming_matches_batch(chunk):
    """Streamed (feed + gated pump per chunk) equals the one-shot batch
    run bit-for-bit: stats, registers, and the epoch DAG itself."""
    program = make_sensitivity_program(num_stateful=4, register_size=64)
    config = MP5Config(num_pipelines=4, remap_period=3)

    batch = VectorSwitch(program, config)
    ref = _snapshot(batch, batch.run(sensitivity_trace(600, 4, 4, 64, seed=0)))

    switch, stats = _stream_vector(
        program, sensitivity_trace(600, 4, 4, 64, seed=0), config, chunk
    )
    assert switch.stream_stats()["epochs_serviced"] > 0
    assert _snapshot(switch, stats) == ref


@pytest.mark.parametrize(
    "knobs",
    [dict(native=True), dict(epoch_jobs=2), dict(native=True, epoch_jobs=2)],
    ids=["native", "jobs2", "native_jobs2"],
)
def test_vector_streaming_matches_batch_native_and_jobs(knobs):
    """The native kernel tier and the epoch pool are performance knobs
    only — streamed execution with them on still equals the plain batch
    run."""
    program = make_sensitivity_program(num_stateful=4, register_size=64)
    config = MP5Config(num_pipelines=4, remap_period=3)

    batch = VectorSwitch(program, config)
    ref = _snapshot(batch, batch.run(sensitivity_trace(600, 4, 4, 64, seed=0)))

    switch, stats = _stream_vector(
        program,
        sensitivity_trace(600, 4, 4, 64, seed=0),
        config,
        chunk=64,
        **knobs,
    )
    assert _snapshot(switch, stats) == ref


def test_vector_streaming_buffer_bounded_by_epoch_not_segment():
    """Acceptance: peak buffered-packet count tracks the largest epoch,
    not the segment. On a stable (underloaded) workload, quadrupling
    the trace must leave the peak essentially flat — what grows with
    trace length is throughput, not memory. (An *overloaded* workload
    accumulates genuinely in-flight packets inside the switch model
    itself; that queueing is the model's, not the streamer's.)"""
    program = make_sensitivity_program(num_stateful=4, register_size=64)
    config = MP5Config(num_pipelines=4, remap_period=3)

    def trace(n):
        return line_rate_trace(
            n,
            4,
            lambda rng, _i: {
                f"idx{j}": int(rng.integers(0, 64)) for j in range(4)
            },
            seed=0,
            utilization=0.7,
        )

    peaks = {}
    for n in (1500, 6000):
        switch, stats = _stream_vector(program, trace(n), config, chunk=32)
        assert stats.egressed == n
        gauges = switch.stream_stats()
        assert gauges["buffered"] == 0  # drained dry
        peaks[n] = gauges["peak_buffered"]
    assert peaks[6000] < 6000 / 10, peaks
    # O(largest epoch): the peak must not scale with segment length.
    assert peaks[6000] <= peaks[1500] * 1.25 + 32, peaks


def test_vector_streaming_observability_matches_batch():
    """Monitor + metrics attached, streamed vs batch: the reconstructed
    event stream (alerts, health, window series) is identical because
    the epoch DAG is."""
    from repro.obs import MetricsRegistry

    program = make_sensitivity_program(num_stateful=4, register_size=64)
    config = MP5Config(num_pipelines=4, remap_period=3)

    bat_mon, bat_met = InvariantMonitor(), MetricsRegistry(window=25)
    batch = VectorSwitch(program, config)
    batch.attach_observability(metrics=bat_met, monitor=bat_mon)
    batch.start()
    batch.feed(sensitivity_trace(600, 4, 4, 64, seed=0))
    bat_stats = batch.finish()

    str_mon, str_met = InvariantMonitor(), MetricsRegistry(window=25)
    switch, stats = _stream_vector(
        program,
        sensitivity_trace(600, 4, 4, 64, seed=0),
        config,
        chunk=48,
        monitor=str_mon,
        metrics=str_met,
    )
    assert stats == bat_stats
    assert str_mon.alerts.to_dicts() == bat_mon.alerts.to_dicts()
    assert (
        str_mon.health_report().to_dict() == bat_mon.health_report().to_dict()
    )
    assert str_met.since(-1) == bat_met.since(-1)


def test_vector_feed_after_draining_pump_rejected():
    """A draining pump commits the tail's remap decisions; feeding more
    arrivals afterwards would diverge from the batch run, so the engine
    refuses (the scalar engines allow it — the one asymmetry)."""
    from repro.errors import ConfigError

    program = make_sensitivity_program(num_stateful=4, register_size=64)
    switch = VectorSwitch(program, MP5Config(num_pipelines=4))
    switch.start()
    trace = sensitivity_trace(200, 4, 4, 64, seed=0)
    switch.feed(trace[:100])
    switch.pump()  # drain: no until_tick
    with pytest.raises(ConfigError, match="draining pump"):
        switch.feed(trace[100:])


def test_vector_work_available_gates_on_watermark():
    """The uniform scheduling probe: False before any feed, True only
    once the watermark proves an epoch complete (or at drain)."""
    program = make_sensitivity_program(num_stateful=4, register_size=64)
    config = MP5Config(num_pipelines=4, remap_period=3)
    switch = VectorSwitch(program, config)
    switch.start()
    assert not switch.work_available(False)
    assert not switch.work_available(True)
    trace = sensitivity_trace(400, 4, 4, 64, seed=0)
    switch.feed(trace)
    assert switch.work_available(True)
    assert switch.work_available(False)  # watermark closed epochs exist
    switch.pump(until_tick=switch.ingest_watermark)
    assert not switch.work_available(False)  # parked at the watermark
    assert switch.work_available(True)  # drain still has the tail
    stats = switch.finish()
    assert stats.egressed == 400
    assert not switch.work_available(True)


# ---------------------------------------------------------------------------
# Engine registry and end-to-end reproduction
# ---------------------------------------------------------------------------


def test_engine_registry_complete():
    assert set(ENGINES) == {"dense", "fast", "vector"}
    program = make_sensitivity_program(num_stateful=2, register_size=16)
    results = [
        ENGINES[name](
            program, sensitivity_trace(120, 2, 2, 16, seed=0),
            MP5Config(num_pipelines=2),
        )
        for name in ("dense", "fast", "vector")
    ]
    assert results[0] == results[1] == results[2]


def test_runall_results_identical_across_engines(tmp_path):
    """The acceptance check behind the CI differential smoke job:
    ``reproduce --scale tiny`` writes byte-identical ``results.json``
    (Table 1, microbenchmarks, Figure 7, Figure 8) for both engines."""
    fast_dir = tmp_path / "fast"
    vec_dir = tmp_path / "vector"
    run_all(out_dir=str(fast_dir), scale="tiny", engine="fast")
    run_all(out_dir=str(vec_dir), scale="tiny", engine="vector")
    fast_bytes = (fast_dir / "results.json").read_bytes()
    vec_bytes = (vec_dir / "results.json").read_bytes()
    assert fast_bytes == vec_bytes
    data = json.loads(vec_bytes)
    assert "engine" not in data  # the engine choice must never leak


def test_runall_rejects_unknown_engine():
    with pytest.raises(ValueError):
        run_all(scale="tiny", engine="warp")


def test_large_scale_defined():
    from repro.harness.runall import SCALES

    knobs = SCALES["large"]
    assert knobs["num_packets"] == 50000
    assert len(knobs["seeds"]) > 1  # multi-seed tier
    assert knobs["engine"] == "vector"
    assert knobs["micro_packets"] < knobs["num_packets"]
