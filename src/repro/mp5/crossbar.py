"""Explicit crossbar model between consecutive pipeline stages (D3).

The switch engine's movement phase *is* the crossbar semantically; this
module makes the hardware structure explicit so its constraints can be
asserted and its utilization measured — the crossbar dominates MP5's
chip area (§4.2), so knowing how loaded it actually runs matters.

A k x k crossbar at one stage boundary can, per tick:

* deliver at most one packet from each input (each stage emits <= 1);
* deliver up to k packets into one stage input — which is exactly why
  each stage input has k FIFOs (§3.2): simultaneous arrivals from
  different source pipelines land in different ring buffers.

:class:`CrossbarTelemetry` validates both per tick and accumulates the
distribution of crossing patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..errors import SimulationError


@dataclass
class CrossbarTelemetry:
    """Per-boundary crossbar accounting for one simulation run.

    The explicit model of D3's k x k inter-stage crossbars: counts
    crossings per stage boundary, asserts the one-packet-per-(input,
    output)-per-tick constraint the hardware design relies on, and
    reports per-boundary utilization. Attached only under
    ``record_crossbar`` — steering itself happens inline in the engines.
    """

    num_pipelines: int
    # boundary (stage index of the *destination*) -> counters
    crossings: Dict[int, int] = field(default_factory=dict)  # src != dst
    straight: Dict[int, int] = field(default_factory=dict)  # src == dst
    # histogram of simultaneous arrivals into one (dst, stage) per tick
    fan_in_histogram: Dict[int, int] = field(default_factory=dict)
    _tick_inputs: Dict[Tuple[int, int], int] = field(default_factory=dict)
    _tick_sources: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def begin_tick(self) -> None:
        self._tick_inputs.clear()
        self._tick_sources.clear()

    def record(self, source: int, dest: int, boundary: int) -> None:
        """One packet traverses the crossbar at ``boundary`` this tick."""
        if not (0 <= source < self.num_pipelines):
            raise SimulationError(f"bad crossbar source {source}")
        if not (0 <= dest < self.num_pipelines):
            raise SimulationError(f"bad crossbar destination {dest}")
        if source == dest:
            self.straight[boundary] = self.straight.get(boundary, 0) + 1
        else:
            self.crossings[boundary] = self.crossings.get(boundary, 0) + 1
        # Each input port carries at most one packet per tick.
        src_key = (source, boundary)
        used = self._tick_sources.get(src_key, 0)
        if used:
            raise SimulationError(
                f"crossbar input ({source}, boundary {boundary}) carried two "
                f"packets in one tick — a stage emitted more than one packet"
            )
        self._tick_sources[src_key] = 1
        dst_key = (dest, boundary)
        self._tick_inputs[dst_key] = self._tick_inputs.get(dst_key, 0) + 1
        if self._tick_inputs[dst_key] > self.num_pipelines:
            raise SimulationError(
                f"stage input ({dest}, {boundary}) received more than k "
                f"packets in one tick"
            )

    def end_tick(self) -> None:
        for count in self._tick_inputs.values():
            self.fan_in_histogram[count] = self.fan_in_histogram.get(count, 0) + 1

    # ------------------------------------------------------------------

    @property
    def total_crossings(self) -> int:
        return sum(self.crossings.values())

    @property
    def total_straight(self) -> int:
        return sum(self.straight.values())

    def crossing_fraction(self) -> float:
        total = self.total_crossings + self.total_straight
        return self.total_crossings / total if total else 0.0

    def max_fan_in(self) -> int:
        return max(self.fan_in_histogram, default=0)

    def busiest_boundary(self) -> Tuple[int, int]:
        """(boundary, crossings) of the most-used crossbar."""
        if not self.crossings:
            return (0, 0)
        boundary = max(self.crossings, key=self.crossings.get)
        return boundary, self.crossings[boundary]

    def summary(self) -> Dict[str, float]:
        return {
            "crossings": self.total_crossings,
            "straight": self.total_straight,
            "crossing_fraction": self.crossing_fraction(),
            "max_fan_in": self.max_fan_in(),
        }
