"""Tests for the AST-to-TAC lowering (preprocessing phase)."""

import pytest

from repro.compiler import OpKind, preprocess
from repro.compiler.tac import TacEvaluator
from repro.domino import analyze, parse
from repro.errors import CompilerError


def lower(body: str, regs: str = "", fields: str = "int a; int b; int c;"):
    program = parse(
        f"struct Packet {{ {fields} }};\n{regs}\n"
        f"void func(struct Packet p) {{ {body} }}"
    )
    analyze(program)
    return preprocess(program)


def execute(tac, headers, registers=None):
    regs = registers if registers is not None else {
        name: list(init) for name, (_s, init) in tac.registers.items()
    }
    ev = TacEvaluator(headers, regs)
    ev.run(tac.instrs)
    return headers, regs


def kinds(tac):
    return [i.kind for i in tac.instrs]


class TestBasicLowering:
    def test_field_copy(self):
        tac = lower("p.a = p.b;")
        headers, _ = execute(tac, {"a": 0, "b": 42})
        assert headers["a"] == 42

    def test_arithmetic(self):
        tac = lower("p.a = p.b * 2 + 1;")
        headers, _ = execute(tac, {"b": 5})
        assert headers["a"] == 11

    def test_local_variable(self):
        tac = lower("int tmp = p.b + 1; p.a = tmp * tmp;")
        headers, _ = execute(tac, {"b": 3})
        assert headers["a"] == 16

    def test_constant_folding(self):
        tac = lower("p.a = 2 + 3 * 4;")
        # All-constant arithmetic folds away: no BINARY instruction remains.
        assert OpKind.BINARY not in kinds(tac)
        headers, _ = execute(tac, {})
        assert headers["a"] == 14

    def test_value_numbering_shares_subexpressions(self):
        tac = lower("p.a = p.c % 4; p.b = p.c % 4;")
        mods = [i for i in tac.instrs if i.kind is OpKind.BINARY and i.op == "%"]
        assert len(mods) == 1

    def test_field_not_written_not_emitted(self):
        tac = lower("p.a = p.b;")
        written = [i.field_name for i in tac.instrs if i.kind is OpKind.WRITE_FIELD]
        assert written == ["a"]

    def test_validates_ssa(self):
        # preprocess() runs validate(); reaching here means it passed.
        lower("int x = 1; p.a = x;")


class TestBranchFlattening:
    def test_if_becomes_select(self):
        tac = lower("if (p.b > 0) { p.a = 1; } else { p.a = 2; }")
        assert OpKind.SELECT in kinds(tac)
        headers, _ = execute(tac, {"b": 5})
        assert headers["a"] == 1
        headers, _ = execute(tac, {"b": -5})
        assert headers["a"] == 2

    def test_if_without_else_keeps_old_value(self):
        tac = lower("if (p.b > 0) { p.a = 9; }")
        headers, _ = execute(tac, {"a": 4, "b": -1})
        assert headers["a"] == 4

    def test_nested_if(self):
        tac = lower(
            "if (p.b > 0) { if (p.c > 0) { p.a = 1; } else { p.a = 2; } }"
        )
        headers, _ = execute(tac, {"a": 0, "b": 1, "c": 0})
        assert headers["a"] == 2
        headers, _ = execute(tac, {"a": 0, "b": 0, "c": 0})
        assert headers["a"] == 0

    def test_ternary(self):
        tac = lower("p.a = p.b ? 10 : 20;")
        headers, _ = execute(tac, {"b": 1})
        assert headers["a"] == 10

    def test_local_conditional_reassign(self):
        tac = lower("int x = 0; if (p.b) { x = 5; } p.a = x;")
        headers, _ = execute(tac, {"b": 1})
        assert headers["a"] == 5

    def test_conditional_assign_before_unconditional_rejected(self):
        with pytest.raises(Exception):
            lower("if (p.b) { x = 5; } p.a = x;")


class TestRegisterTransactions:
    def test_single_read(self):
        tac = lower("p.a = r[p.b % 4];", regs="int r[4] = {1, 2, 3, 4};")
        reads = [i for i in tac.instrs if i.kind is OpKind.REG_READ]
        assert len(reads) == 1
        headers, _ = execute(tac, {"b": 2})
        assert headers["a"] == 3

    def test_read_modify_write(self):
        tac = lower("r[0] = r[0] + 1;", regs="int r[1];")
        headers, regs = execute(tac, {})
        assert regs["r"][0] == 1
        # Exactly one read and one write per array per packet.
        assert kinds(tac).count(OpKind.REG_READ) == 1
        assert kinds(tac).count(OpKind.REG_WRITE) == 1

    def test_read_after_write_sees_new_value(self):
        tac = lower(
            "r[0] = r[0] + 5; p.a = r[0];", regs="int r[1] = {10};"
        )
        headers, regs = execute(tac, {})
        assert headers["a"] == 15
        assert regs["r"][0] == 15

    def test_guarded_write_keeps_old_value(self):
        tac = lower(
            "if (p.b > 0) { r[0] = 99; } p.a = r[0];", regs="int r[1] = {7};"
        )
        headers, regs = execute(tac, {"b": 0})
        assert regs["r"][0] == 7
        assert headers["a"] == 7

    def test_guarded_read_has_guard(self):
        tac = lower(
            "p.a = p.b ? r1[0] : r2[0];", regs="int r1[1] = {1}; int r2[1] = {2};"
        )
        reads = {i.reg: i for i in tac.instrs if i.kind is OpKind.REG_READ}
        assert reads["r1"].guard is not None
        assert reads["r2"].guard is not None

    def test_unconditional_access_has_no_guard(self):
        tac = lower("r[0] = r[0] + 1;", regs="int r[1];")
        read = next(i for i in tac.instrs if i.kind is OpKind.REG_READ)
        assert read.guard is None

    def test_multi_index_same_array_rejected(self):
        with pytest.raises(CompilerError, match="two different index"):
            lower("p.a = r[p.b % 4] + r[p.c % 4];", regs="int r[4];")

    def test_same_index_expression_allowed(self):
        tac = lower(
            "p.a = r[p.b % 4]; r[p.b % 4] = p.a + 1;", regs="int r[4];"
        )
        assert kinds(tac).count(OpKind.REG_READ) == 1

    def test_figure3_semantics(self):
        from repro.domino import get_program

        tac = preprocess(get_program("figure3"))
        regs = {n: list(init) for n, (_s, init) in tac.registers.items()}
        for _ in range(4):
            execute(
                tac, {"h1": 1, "h2": 1, "h3": 2, "mux": 1, "val": 0}, regs
            )
        execute(tac, {"h1": 1, "h2": 3, "h3": 2, "mux": 0, "val": 0}, regs)
        # reg3[2] starts at 0: multiplied 4 times (stays 0), then +7.
        assert regs["reg3"][2] == 7

    def test_guarded_access_pattern_preserved(self):
        # A packet with mux==1 must not access reg2 at all.
        from repro.domino import get_program

        tac = preprocess(get_program("figure3"))
        regs = {n: list(init) for n, (_s, init) in tac.registers.items()}
        seen = []
        ev = TacEvaluator(
            {"h1": 1, "h2": 1, "h3": 2, "mux": 1, "val": 0},
            regs,
            on_access=lambda reg, idx, kind: seen.append(reg),
        )
        ev.run(tac.instrs)
        assert "reg1" in seen
        assert "reg2" not in seen

    def test_access_guard_union_of_branches(self):
        # Access under both branches of the same array merges into one
        # transaction whose guard covers both.
        tac = lower(
            "if (p.b) { r[0] = 1; } else { r[0] = 2; }", regs="int r[1];"
        )
        assert kinds(tac).count(OpKind.REG_WRITE) == 1
        headers, regs = execute(tac, {"b": 0})
        assert regs["r"][0] == 2
