"""Cross-module integration tests: the full toolchain end to end."""

import pytest

from repro.banzai import run_reference
from repro.compiler import BanzaiTarget, compile_program
from repro.domino import program_names
from repro.equivalence import check_equivalence
from repro.mp5 import MP5Config, MP5Switch, run_mp5
from repro.workloads import (
    FlowWorkload,
    clone_packets,
    line_rate_trace,
    reference_trace,
)

HEADER_GENERATORS = {
    "bloom_filter": lambda r, i: {"key": int(r.integers(0, 80)), "member": 0},
    "conga": lambda r, i: {
        "util": int(r.integers(0, 100)),
        "path_id": int(r.integers(0, 8)),
    },
    "figure3": lambda r, i: {
        "h1": int(r.integers(0, 4)),
        "h2": int(r.integers(0, 4)),
        "h3": int(r.integers(0, 4)),
        "mux": int(r.integers(0, 2)),
        "val": 0,
    },
    "flowlet": lambda r, i: {
        "sport": int(r.integers(0, 30)),
        "dport": int(r.integers(0, 30)),
        "arrival": i,
        "new_hop": 0,
        "next_hop": 0,
        "id": 0,
    },
    "heavy_hitter": lambda r, i: {"src_ip": int(r.integers(0, 200)), "hot": 0},
    "packet_counter": lambda r, i: {"dummy": 0},
    "rcp": lambda r, i: {
        "rtt": int(r.integers(0, 60)),
        "size_bytes": int(r.integers(64, 1500)),
    },
    "sampled_netflow": lambda r, i: {"sampled": 0},
    "avq": lambda r, i: {
        "bytes": int(r.integers(64, 1500)),
        "now": i // 4,
        "mark": 0,
    },
    "netcache": lambda r, i: {
        "key": int(r.integers(0, 100)),
        "is_read": int(r.random() < 0.9),
        "value_in": int(r.integers(0, 1000)),
        "value_out": 0,
        "cache_hit": 0,
    },
    "dctcp_alpha": lambda r, i: {
        "flow": int(r.integers(0, 40)),
        "ecn": int(r.integers(0, 2)),
        "alpha_out": 0,
    },
    "dns_ttl_change": lambda r, i: {
        "domain": int(r.integers(0, 60)),
        "ttl": int(r.integers(0, 4)),
        "suspicious": 0,
    },
    "token_bucket": lambda r, i: {
        "sport": int(r.integers(0, 30)),
        "dport": int(r.integers(0, 30)),
        "now": i,
        "allowed": 0,
    },
    "ewma_latency": lambda r, i: {
        "flow": int(r.integers(0, 40)),
        "sample": int(r.integers(0, 1000)),
        "estimate": 0,
    },
    "syn_flood": lambda r, i: {
        "dst_ip": int(r.integers(0, 50)),
        "syn": int(r.integers(0, 2)),
        "fin": int(r.integers(0, 2)),
        "under_attack": 0,
    },
    "sequencer": lambda r, i: {"seq": 0},
    "stateful_firewall": lambda r, i: {
        "src_ip": int(r.integers(0, 50)),
        "dst_ip": int(r.integers(0, 50)),
        "syn": int(r.integers(0, 2)),
        "allowed": 0,
    },
    "stateful_index": lambda r, i: {"v": i},
    "stateful_predicate": lambda r, i: {"key": int(r.integers(0, 80)), "out": 0},
    "stateless_rewrite": lambda r, i: {"ttl": 64, "dscp": 3, "out": 0},
    "wfq": lambda r, i: {
        "sport": int(r.integers(0, 30)),
        "dport": int(r.integers(0, 30)),
        "length": int(r.integers(64, 1500)),
        "start": 0,
        "id": 0,
    },
}


class TestWholeProgramSuite:
    def test_every_bundled_program_has_a_generator(self):
        assert set(HEADER_GENERATORS) == set(program_names())

    @pytest.mark.parametrize("name", sorted(HEADER_GENERATORS))
    def test_full_toolchain_equivalence(self, name):
        """Compile -> simulate on 4-pipeline MP5 -> compare against the
        single-pipeline reference: register state, packet state, C1."""
        program = compile_program(name)
        trace = line_rate_trace(350, 4, HEADER_GENERATORS[name], seed=42)
        report = check_equivalence(program, trace, MP5Config(num_pipelines=4))
        assert report.equivalent, f"{name}:\n{report.summary()}"
        assert report.c1_violating_packets == 0

    @pytest.mark.parametrize("name", ["figure3", "flowlet", "wfq"])
    def test_equivalence_on_flow_structured_traffic(self, name):
        program = compile_program(name)
        extra = {
            "figure3": lambda rng, pkt: {
                "h1": pkt.flow_id % 4,
                "h2": (pkt.flow_id * 3) % 4,
                "h3": (pkt.flow_id * 7) % 4,
                "mux": pkt.flow_id % 2,
                "val": 0,
            },
            "flowlet": lambda rng, pkt: {
                "arrival": int(pkt.arrival),
                "new_hop": 0,
                "next_hop": 0,
                "id": 0,
            },
            "wfq": lambda rng, pkt: {
                "length": pkt.size_bytes,
                "start": 0,
                "id": 0,
            },
        }[name]
        workload = FlowWorkload(num_pipelines=4, seed=13, extra_fields=extra)
        trace = workload.generate(400)
        report = check_equivalence(program, trace, MP5Config(num_pipelines=4))
        assert report.equivalent, name


class TestTargetVariations:
    def test_equivalence_holds_on_shallow_target(self):
        # Compile for an 8-stage machine (fewer stages, same semantics).
        program = compile_program("figure3", target=BanzaiTarget(num_stages=8))
        trace = line_rate_trace(
            200, 2, HEADER_GENERATORS["figure3"], seed=3
        )
        report = check_equivalence(
            program, trace, MP5Config(num_pipelines=2, pipeline_depth=8)
        )
        assert report.equivalent

    def test_pinned_fallback_still_equivalent(self):
        # Force bloom_filter into the co-staged/pinned fallback and check
        # functional equivalence survives the loss of sharding.
        program = compile_program("bloom_filter", target=BanzaiTarget(num_stages=7))
        trace = line_rate_trace(
            250, 4, HEADER_GENERATORS["bloom_filter"], seed=4
        )
        report = check_equivalence(
            program, trace, MP5Config(num_pipelines=4, pipeline_depth=8)
        )
        assert report.equivalent


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        program = compile_program("heavy_hitter")
        trace = line_rate_trace(400, 4, HEADER_GENERATORS["heavy_hitter"], seed=8)
        stats_a, regs_a = run_mp5(
            program, clone_packets(trace), MP5Config(num_pipelines=4)
        )
        stats_b, regs_b = run_mp5(
            program, clone_packets(trace), MP5Config(num_pipelines=4)
        )
        assert regs_a == regs_b
        assert stats_a.egress_ticks == stats_b.egress_ticks
        assert stats_a.remap_moves == stats_b.remap_moves

    def test_reference_deterministic(self):
        program = compile_program("figure3")
        trace = line_rate_trace(150, 2, HEADER_GENERATORS["figure3"], seed=8)
        a = run_reference(program, reference_trace(trace, 2))
        b = run_reference(program, reference_trace(trace, 2))
        assert a.registers.snapshot() == b.registers.snapshot()
