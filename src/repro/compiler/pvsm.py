"""Pipelined Virtual Switch Machine (PVSM) intermediate representation.

The Domino compiler's *Pipelining* phase (§3.3, Figure 5) transforms
three-address code into a PVSM: an idealized switch pipeline with no
computational or resource limits. We model a PVSM as a sequence of
stages, each holding an ordered list of TAC instructions; all state
accesses for a given register array are *clustered* into a single stage
(Banzai's atomic read-modify-write constraint: "all state operations
finish within one pipeline stage", §2.1).

Clustering: for each register array, the cluster contains its
``reg_read``, its ``reg_write``, and every instruction on a data path
from the read to the write (the ALU chain the atom must evaluate inside
the stage). Such a path-closed set is convex, so contracting it into a
supernode keeps the dependence graph acyclic unless two arrays are
mutually dependent — which we reject, as Domino does for code that no
atom template can implement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import CompilerError
from .tac import OpKind, TacInstr, TacProgram, Temp


@dataclass
class PvsmStage:
    """One stage of the virtual pipeline."""

    instrs: List[TacInstr] = field(default_factory=list)
    arrays: List[str] = field(default_factory=list)

    @property
    def is_stateful(self) -> bool:
        return bool(self.arrays)

    def __str__(self) -> str:
        header = f"-- stage (arrays: {', '.join(self.arrays) or 'none'}) --"
        return "\n".join([header] + [f"  {i}" for i in self.instrs])


@dataclass
class Pvsm:
    """A scheduled virtual pipeline."""

    stages: List[PvsmStage]
    tac: TacProgram

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def stateful_stages(self) -> List[int]:
        return [i for i, s in enumerate(self.stages) if s.is_stateful]

    def stage_of_array(self, name: str) -> int:
        for i, stage in enumerate(self.stages):
            if name in stage.arrays:
                return i
        raise KeyError(name)

    def all_instrs(self) -> List[TacInstr]:
        out: List[TacInstr] = []
        for stage in self.stages:
            out.extend(stage.instrs)
        return out

    def __str__(self) -> str:
        return "\n".join(str(s) for s in self.stages)


# ----------------------------------------------------------------------
# Dependence analysis
# ----------------------------------------------------------------------


class DependenceGraph:
    """Def-use dependence graph over a TAC instruction list."""

    def __init__(self, instrs: Sequence[TacInstr]):
        self.instrs = list(instrs)
        self.index: Dict[int, int] = {id(i): n for n, i in enumerate(self.instrs)}
        definer: Dict[Temp, int] = {}
        for n, instr in enumerate(self.instrs):
            dest = instr.defines()
            if dest is not None:
                definer[dest] = n
        self.preds: List[Set[int]] = [set() for _ in self.instrs]
        self.succs: List[Set[int]] = [set() for _ in self.instrs]
        for n, instr in enumerate(self.instrs):
            for used in instr.uses():
                m = definer.get(used)
                if m is not None and m != n:
                    self.preds[n].add(m)
                    self.succs[m].add(n)
        # Intra-array ordering: the write depends on the read even when no
        # data path connects them (e.g. a blind overwrite), so the cluster
        # always holds together.
        read_of: Dict[str, int] = {}
        for n, instr in enumerate(self.instrs):
            if instr.kind is OpKind.REG_READ:
                read_of[instr.reg] = n
        for n, instr in enumerate(self.instrs):
            if instr.kind is OpKind.REG_WRITE and instr.reg in read_of:
                m = read_of[instr.reg]
                if m != n:
                    self.preds[n].add(m)
                    self.succs[m].add(n)

    def reachable_from(self, start: int) -> Set[int]:
        """All instructions transitively using ``start``'s result."""
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for nxt in self.succs[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    def reaching(self, target: int) -> Set[int]:
        """All instructions ``target`` transitively depends on."""
        seen = {target}
        frontier = [target]
        while frontier:
            node = frontier.pop()
            for prev in self.preds[node]:
                if prev not in seen:
                    seen.add(prev)
                    frontier.append(prev)
        return seen


def _build_clusters(
    tac: TacProgram, graph: DependenceGraph
) -> Dict[str, Set[int]]:
    """Map each register array to the set of instruction ids (indexes)
    forming its atom cluster."""
    clusters: Dict[str, Set[int]] = {}
    reads: Dict[str, int] = {}
    writes: Dict[str, int] = {}
    for n, instr in enumerate(graph.instrs):
        if instr.kind is OpKind.REG_READ:
            if instr.reg in reads:
                raise CompilerError(
                    f"register {instr.reg!r}: multiple reads after lowering "
                    f"(internal error)"
                )
            reads[instr.reg] = n
        elif instr.kind is OpKind.REG_WRITE:
            if instr.reg in writes:
                raise CompilerError(
                    f"register {instr.reg!r}: multiple writes after lowering "
                    f"(internal error)"
                )
            writes[instr.reg] = n
    for reg, read_n in reads.items():
        members = {read_n}
        write_n = writes.get(reg)
        if write_n is not None:
            members.add(write_n)
            members |= graph.reachable_from(read_n) & graph.reaching(write_n)
        clusters[reg] = members
    # A write with no read would be a blind store; the lowering always
    # emits a read first, so every written array is already present.
    for reg, write_n in writes.items():
        if reg not in clusters:
            clusters[reg] = {write_n}
    return clusters


class _UnionFind:
    """Tiny union-find over hashable keys."""

    def __init__(self):
        self.parent: Dict[object, object] = {}

    def find(self, x: object) -> object:
        self.parent.setdefault(x, x)
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: object, b: object) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def _tarjan_sccs(nodes: List[object], preds: Dict[object, Set[object]]) -> List[List[object]]:
    """Strongly connected components (iterative Tarjan) of the contracted
    group graph. Edges are pred -> node."""
    succs: Dict[object, List[object]] = {n: [] for n in nodes}
    for n, ps in preds.items():
        for p in ps:
            succs[p].append(n)
    index_counter = [0]
    index: Dict[object, int] = {}
    lowlink: Dict[object, int] = {}
    on_stack: Set[object] = set()
    stack: List[object] = []
    sccs: List[List[object]] = []

    for root in nodes:
        if root in index:
            continue
        work = [(root, iter(succs[root]))]
        index[root] = lowlink[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = lowlink[nxt] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(succs[nxt])))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent_node = work[-1][0]
                lowlink[parent_node] = min(lowlink[parent_node], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs


# ----------------------------------------------------------------------
# Scheduling
# ----------------------------------------------------------------------


def schedule(
    tac: TacProgram,
    pinned_levels: Optional[Dict[int, int]] = None,
    serialize_arrays: bool = False,
    min_cluster_level: int = 0,
) -> Pvsm:
    """Level-schedule TAC into a PVSM.

    ``pinned_levels`` optionally forces specific instructions (by position
    in ``tac.instrs``) to a given stage — the MP5 transformer uses this to
    pin address-resolution instructions to stage 0.

    ``serialize_arrays`` additionally forces every register-array cluster
    into its own stage (at most one array per stage), the constraint MP5
    needs so that a packet is in at most one pipeline per stage (§3.3).

    ``min_cluster_level`` forces every stateful cluster to a stage no
    earlier than the given level; the MP5 transformer passes 1 so that
    the address-resolution stage (level 0) precedes all state.
    """
    graph = DependenceGraph(tac.instrs)
    clusters = _build_clusters(tac, graph)

    # Arrays whose clusters overlap must share one atom: a single
    # instruction on both read-to-write paths means no schedule can
    # separate them. Banzai models this with multi-state atoms (e.g. the
    # "pair" atoms CONGA needs), so we *fuse* the clusters.
    array_uf = _UnionFind()
    owner: Dict[int, str] = {}
    for reg, members in clusters.items():
        array_uf.find(reg)
        for n in members:
            if n in owner:
                array_uf.union(owner[n], reg)
            else:
                owner[n] = reg

    pinned_levels = pinned_levels or {}
    pinned_zero = {n for n, lvl in pinned_levels.items() if lvl == 0}

    def _cluster_key(reg: str) -> str:
        root = array_uf.find(reg)
        fused = sorted(r for r in clusters if array_uf.find(r) == root)
        return "cluster:" + "+".join(fused)

    def _build_groups() -> Tuple[Dict[int, object], Dict[object, List[int]], Dict[object, Set[object]]]:
        group_of: Dict[int, object] = {}
        for n in range(len(graph.instrs)):
            if n in owner:
                group_of[n] = _cluster_key(owner[n])
            elif n in pinned_zero:
                # All stage-0 (address resolution) instructions form one
                # supernode that executes together in the new front stage.
                group_of[n] = "resolution"
            else:
                group_of[n] = n
        members_of: Dict[object, List[int]] = {}
        for n, g in group_of.items():
            members_of.setdefault(g, []).append(n)
        group_preds: Dict[object, Set[object]] = {g: set() for g in members_of}
        for n in range(len(graph.instrs)):
            for m in graph.preds[n]:
                if group_of[m] != group_of[n]:
                    group_preds[group_of[n]].add(group_of[m])
        return group_of, members_of, group_preds

    group_of, members_of, group_preds = _build_groups()

    # Mutual dependence *through* intermediate instructions (array A's
    # write needs B's read and vice versa) shows up as a cycle in the
    # contracted graph. Fuse every non-trivial SCC into one atom.
    sccs = _tarjan_sccs(list(members_of), group_preds)
    fused_any = False
    for component in sccs:
        if len(component) < 2:
            continue
        fused_any = True
        regs_in_scc: List[str] = []
        for g in component:
            if isinstance(g, str) and g.startswith("cluster:"):
                regs_in_scc.extend(g.split(":", 1)[1].split("+"))
        if not regs_in_scc:
            raise CompilerError(
                "dependence cycle among stateless instructions (internal error)"
            )
        anchor = regs_in_scc[0]
        for reg in regs_in_scc[1:]:
            array_uf.union(anchor, reg)
        # Stateless instructions caught in the cycle join the fused atom.
        for g in component:
            if isinstance(g, int):
                owner[g] = anchor
            elif g == "resolution":
                raise CompilerError(
                    "address-resolution instructions participate in a "
                    "stateful dependence cycle (internal error)"
                )
    if fused_any:
        group_of, members_of, group_preds = _build_groups()

    # Longest-path levels via DFS (acyclic after fusing).
    levels: Dict[object, int] = {}
    visiting: Set[object] = set()

    def level_of(g: object) -> int:
        if g in levels:
            return levels[g]
        if g in visiting:
            raise CompilerError(
                "unexpected dependence cycle after atom fusion (internal error)"
            )
        visiting.add(g)
        base = 0
        if isinstance(g, str) and g.startswith("cluster:"):
            base = min_cluster_level
        for p in group_preds[g]:
            base = max(base, level_of(p) + 1)
        if g == "resolution":
            if group_preds[g]:
                raise CompilerError(
                    "address-resolution slice depends on non-resolution "
                    "instructions (internal error: slices must be closed)"
                )
            base = 0
        else:
            for n in members_of[g]:
                lvl = pinned_levels.get(n)
                if lvl is not None:
                    base = max(base, lvl)
        visiting.discard(g)
        levels[g] = base
        return base

    for g in members_of:
        level_of(g)

    # Optionally serialize clusters so no two arrays share a stage. We
    # walk clusters in level order and bump each to the first free stage;
    # bumping a cluster requires bumping everything that depends on it, so
    # we iterate to a fixed point (graphs here are tiny).
    if serialize_arrays:
        _serialize_clusters(members_of, group_preds, levels, pinned_levels)

    num_stages = max(levels.values()) + 1 if levels else 1
    stages = [PvsmStage() for _ in range(num_stages)]
    # Keep original TAC order within a stage so execution is valid.
    order_key = {g: min(members_of[g]) for g in members_of}
    for g in sorted(members_of, key=lambda g: order_key[g]):
        stage = stages[levels[g]]
        for n in sorted(members_of[g]):
            stage.instrs.append(graph.instrs[n])
        if isinstance(g, str) and g.startswith("cluster:"):
            stage.arrays.extend(g.split(":", 1)[1].split("+"))
    for stage in stages:
        stage.instrs.sort(key=lambda i: graph.index[id(i)])
    return Pvsm(stages=stages, tac=tac)


def _serialize_clusters(
    members_of: Dict[object, List[int]],
    group_preds: Dict[object, Set[object]],
    levels: Dict[object, int],
    pinned_levels: Optional[Dict[int, int]],
) -> None:
    cluster_groups = [
        g for g in members_of if isinstance(g, str) and g.startswith("cluster:")
    ]
    # Successor map for relaxation after bumping.
    group_succs: Dict[object, Set[object]] = {g: set() for g in group_preds}
    for g, preds in group_preds.items():
        for p in preds:
            group_succs[p].add(g)

    def push_down(g: object, new_level: int) -> None:
        if levels[g] >= new_level:
            return
        levels[g] = new_level
        for s in group_succs[g]:
            push_down(s, new_level + 1)

    # Place clusters one per stage; any bump can cascade through
    # dependents, so restart placement after each change (graphs are tiny).
    changed = True
    while changed:
        changed = False
        occupied: Dict[int, object] = {}
        for g in sorted(
            cluster_groups, key=lambda g: (levels[g], min(members_of[g]))
        ):
            level = levels[g]
            while level in occupied:
                level += 1
            if level != levels[g]:
                push_down(g, level)
                changed = True
                break
            occupied[level] = g
