"""Failure injection: the limits on functional equivalence (§3.5.1).

The paper is explicit that functional equivalence assumes no packet
loss, and analyzes how a loss violates it: the lost packet misses its
downstream register updates, and subsequent packets see a different
state. These tests inject phantom-channel loss and FIFO overflows and
verify (a) the switch itself stays consistent (no deadlock, conservation
of packets), and (b) the equivalence checker *detects* the divergence
exactly as §3.5.1 predicts.
"""

import pytest

from repro.banzai import run_reference
from repro.compiler import compile_program
from repro.equivalence import check_equivalence
from repro.mp5 import MP5Config, MP5Switch, run_mp5
from repro.workloads import clone_packets, line_rate_trace, reference_trace


class TestPhantomLoss:
    def _run(self, loss, n=400, program_name="sequencer"):
        program = compile_program(program_name)
        trace = line_rate_trace(
            n, 4, lambda r, i: {"seq": 0}, packet_size=256, seed=1
        )
        config = MP5Config(num_pipelines=4, phantom_loss_rate=loss)
        switch = MP5Switch(program, config)
        packets = clone_packets(trace)
        stats = switch.run(packets)
        return program, packets, switch, stats

    def test_conservation_under_loss(self):
        _prog, _pkts, _switch, stats = self._run(loss=0.05)
        assert stats.dropped > 0
        assert stats.egressed + stats.dropped == stats.offered

    def test_no_deadlock_under_heavy_loss(self):
        _prog, _pkts, _switch, stats = self._run(loss=0.5)
        assert stats.ticks < 100000
        assert stats.egressed + stats.dropped == stats.offered

    def test_register_state_diverges_as_paper_predicts(self):
        # §3.5.1: "if a packet is lost in stage i ... it can no longer
        # update any potential register state", so the final counter
        # value falls short of the reference — and the checker sees it.
        program, packets, switch, stats = self._run(loss=0.1)
        assert stats.dropped > 0
        expected_reference_count = stats.offered
        actual = switch.registers["count"][0]
        assert actual == stats.offered - stats.dropped
        assert actual < expected_reference_count

    def test_checker_flags_divergence(self):
        program = compile_program("sequencer")
        trace = line_rate_trace(
            400, 4, lambda r, i: {"seq": 0}, packet_size=256, seed=1
        )
        report = check_equivalence(
            program, trace, MP5Config(num_pipelines=4, phantom_loss_rate=0.1)
        )
        assert not report.register_equal
        assert report.dropped_packets > 0

    def test_zero_loss_rate_is_default_behavior(self):
        _prog, _pkts, _switch, stats = self._run(loss=0.0)
        assert stats.dropped == 0

    def test_survivors_remain_ordered(self):
        # Even under loss, surviving packets access state in arrival
        # order relative to one another (their phantoms queued in order).
        program, packets, _switch, _stats = self._run(loss=0.1)
        delivered = [p for p in packets if p.egress_tick is not None]
        seqs = [
            p.headers["seq"] for p in sorted(delivered, key=lambda p: p.pkt_id)
        ]
        assert seqs == sorted(seqs)

    def test_invalid_loss_rate_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            MP5Config(phantom_loss_rate=1.0)
        with pytest.raises(ConfigError):
            MP5Config(phantom_loss_rate=-0.1)


class TestOverflowLoss:
    def test_tiny_fifo_overflow_diverges_but_is_detected(self):
        program = compile_program("heavy_hitter")
        trace = line_rate_trace(
            600,
            4,
            lambda r, i: {"src_ip": int(r.integers(0, 4)), "hot": 0},
            seed=2,
        )
        # Four sources hammer four counters; 2-entry FIFOs overflow.
        config = MP5Config(num_pipelines=4, fifo_capacity=2)
        reference = run_reference(program, reference_trace(trace, 4))
        packets = clone_packets(trace)
        switch = MP5Switch(program, config)
        stats = switch.run(packets)
        assert stats.dropped > 0
        ref_total = sum(reference.registers.snapshot()["counts"])
        got_total = sum(switch.registers["counts"])
        assert got_total == stats.egressed
        assert got_total < ref_total

    def test_drop_reasons_recorded(self):
        program = compile_program("sequencer")
        trace = line_rate_trace(300, 4, lambda r, i: {"seq": 0}, seed=0)
        packets = clone_packets(trace)
        switch = MP5Switch(program, MP5Config(num_pipelines=4, fifo_capacity=2))
        switch.run(packets)
        reasons = {p.drop_reason for p in packets if p.dropped}
        assert reasons <= {"no_phantom", "phantom_fifo_full", "fifo_full"}
        assert reasons
