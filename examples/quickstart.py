#!/usr/bin/env python3
"""Quickstart: compile a Domino program, run it on MP5, verify equivalence.

This walks the full MP5 pipeline on the paper's running example
(Figure 3): the Domino source is compiled (preprocessing -> PVSM ->
PVSM-to-PVSM transform -> code generation), executed on a 2-pipeline MP5
switch at line rate, and checked for functional equivalence against the
logical single-pipeline Banzai reference.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.compiler import compile_program
from repro.equivalence import check_equivalence
from repro.mp5 import MP5Config
from repro.workloads import line_rate_trace


def main() -> None:
    # 1. Compile the Figure 3 program for a 16-stage MP5 target.
    program = compile_program("figure3")
    print("Compiled layout")
    print("---------------")
    print(program.describe())
    print()

    # 2. Generate a line-rate 64 B trace: each packet carries the header
    #    fields the program matches on.
    def headers(rng: np.random.Generator, i: int) -> dict:
        return {
            "h1": int(rng.integers(0, 4)),
            "h2": int(rng.integers(0, 4)),
            "h3": int(rng.integers(0, 4)),
            "mux": int(rng.integers(0, 2)),
            "val": 0,
        }

    config = MP5Config(num_pipelines=2)
    trace = line_rate_trace(5000, config.num_pipelines, headers, seed=1)

    # 3. Run both switches and compare final register + packet state.
    report = check_equivalence(program, trace, config)
    print("Equivalence check (2-pipeline MP5 vs single Banzai pipeline)")
    print("------------------------------------------------------------")
    print(report.summary())
    print()
    print(f"MP5 normalized throughput: "
          f"{report.mp5_stats.throughput_normalized():.3f}")
    report.raise_if_violated()
    print("\nOK: MP5 is functionally equivalent to the single pipeline.")


if __name__ == "__main__":
    main()
