"""TAC-to-Python compilation for faster simulation.

The interpreter (:class:`~repro.compiler.tac.TacEvaluator`) dispatches on
every instruction; for large simulations the dispatch dominates. This
module compiles an instruction list into one Python function with the
exact same semantics — 32-bit two's-complement arithmetic, C-style
division, guarded state accesses, the access callback — and is verified
against the interpreter by the test suite over every bundled program and
fuzzed programs.

Temps live in the packet's ``env`` dict between stages (the PHV); within
a compiled stage they become Python locals, with a prologue loading the
temps earlier stages defined and an epilogue publishing the stage's own
definitions.

Usage::

    stage_fn = compile_instrs(stage.instrs)
    stage_fn(headers, registers, env, on_access)
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Sequence, Set

from ..domino.builtins import BUILTINS
from ..errors import CompilerError
from .tac import Const, OpKind, TacInstr, Temp, _to_signed32

_counter = itertools.count()

# Operators whose Python semantics already match the evaluator's after a
# single wrap of the result.
_WRAPPED_BINOPS = {"+": "+", "-": "-", "*": "*", "&": "&", "|": "|", "^": "^"}
_COMPARISONS = {"==", "!=", "<", "<=", ">", ">="}

StageFn = Callable[[dict, dict, dict, Optional[Callable]], None]


def _var(temp: Temp, names: Dict[Temp, str]) -> str:
    name = names.get(temp)
    if name is None:
        name = f"v{len(names)}"
        names[temp] = name
    return name


def _operand(op, names: Dict[Temp, str]) -> str:
    if isinstance(op, Const):
        return repr(op.value)
    return _var(op, names)


def _wrapped(expr: str) -> str:
    """Emit ``expr`` wrapped to signed 32 bits, inline.

    ``((v + 2**31) & 0xFFFFFFFF) - 2**31`` is branchless and exactly
    equal to :func:`~repro.compiler.tac._to_signed32` for every int
    (both compute ``((v mod 2**32) + 2**31) mod 2**32 - 2**31``);
    emitting it inline removes one function call per arithmetic
    instruction per packet from the simulation hot path.
    """
    return f"((({expr}) + 2147483648) & 4294967295) - 2147483648"


def compile_instrs(
    instrs: Sequence[TacInstr], name: str = "stage"
) -> Optional[StageFn]:
    """Compile ``instrs`` into a single callable; None for an empty list."""
    if not instrs:
        return None
    names: Dict[Temp, str] = {}
    defined: Set[Temp] = set()
    used_before_def: List[Temp] = []
    for instr in instrs:
        for temp in instr.uses():
            if temp not in defined and temp not in used_before_def:
                used_before_def.append(temp)
        dest = instr.defines()
        if dest is not None:
            defined.add(dest)

    lines: List[str] = [
        f"def _{name}(headers, registers, env, on_access=None):"
    ]
    # Prologue: pull carried temps out of the PHV.
    for temp in used_before_def:
        lines.append(f"    {_var(temp, names)} = env[{temp.name!r}]")

    for instr in instrs:
        lines.extend(_emit(instr, names))

    # Epilogue: publish this stage's definitions for later stages.
    for temp in sorted(defined, key=lambda t: t.name):
        lines.append(f"    env[{temp.name!r}] = {_var(temp, names)}")

    source = "\n".join(lines)
    scope = {
        "_wrap": _to_signed32,
        "_builtins": BUILTINS,
    }
    exec(compile(source, f"<jit:{name}:{next(_counter)}>", "exec"), scope)
    fn = scope[f"_{name}"]
    fn.__doc__ = source  # keep the generated code inspectable
    return fn


def _emit(instr: TacInstr, names: Dict[Temp, str]) -> List[str]:
    kind = instr.kind
    pad = "    "
    if kind is OpKind.READ_FIELD:
        return [
            f"{pad}{_var(instr.dest, names)} = "
            f"{_wrapped(f'headers.get({instr.field_name!r}, 0)')}"
        ]
    if kind is OpKind.WRITE_FIELD:
        value = _operand(instr.args[0], names)
        line = f"headers[{instr.field_name!r}] = {value}"
        return _guarded(instr, line, names)
    if kind is OpKind.CONST:
        return [
            f"{pad}{_var(instr.dest, names)} = "
            f"{_wrapped(_operand(instr.args[0], names))}"
        ]
    if kind is OpKind.UNARY:
        a = _operand(instr.args[0], names)
        dest = _var(instr.dest, names)
        if instr.op == "-":
            return [f"{pad}{dest} = {_wrapped(f'-({a})')}"]
        if instr.op == "!":
            return [f"{pad}{dest} = 0 if {a} else 1"]
        raise CompilerError(f"jit: unknown unary op {instr.op!r}")
    if kind is OpKind.BINARY:
        return [_emit_binary(instr, names)]
    if kind is OpKind.CALL:
        args = ", ".join(_operand(a, names) for a in instr.args)
        return [
            f"{pad}{_var(instr.dest, names)} = "
            f"{_wrapped(f'_builtins[{instr.op!r}]({args})')}"
        ]
    if kind is OpKind.SELECT:
        g = _operand(instr.args[0], names)
        a = _operand(instr.args[1], names)
        b = _operand(instr.args[2], names)
        return [f"{pad}{_var(instr.dest, names)} = {a} if {g} else {b}"]
    if kind is OpKind.REG_READ:
        dest = _var(instr.dest, names)
        idx = _operand(instr.args[0], names)
        body = [
            f"_arr = registers[{instr.reg!r}]",
            f"_i = ({idx}) % len(_arr)",
            f"{dest} = _arr[_i]",
            f"on_access({instr.reg!r}, _i, 'read') if on_access else None",
        ]
        out = _guarded(instr, body, names)
        if instr.guard is not None:
            out.append(f"{pad}else:")
            out.append(f"{pad}    {dest} = 0")
        return out
    if kind is OpKind.REG_WRITE:
        idx = _operand(instr.args[0], names)
        value = _operand(instr.args[1], names)
        body = [
            f"_arr = registers[{instr.reg!r}]",
            f"_i = ({idx}) % len(_arr)",
            f"_arr[_i] = {value}",
            f"on_access({instr.reg!r}, _i, 'write') if on_access else None",
        ]
        return _guarded(instr, body, names)
    raise CompilerError(f"jit: unknown instruction kind {kind}")


def _emit_binary(instr: TacInstr, names: Dict[Temp, str]) -> str:
    a = _operand(instr.args[0], names)
    b = _operand(instr.args[1], names)
    dest = _var(instr.dest, names)
    op = instr.op
    pad = "    "
    if op in _WRAPPED_BINOPS:
        return f"{pad}{dest} = {_wrapped(f'({a}) {_WRAPPED_BINOPS[op]} ({b})')}"
    if op in _COMPARISONS:
        return f"{pad}{dest} = 1 if ({a}) {op} ({b}) else 0"
    if op == "/":
        return (
            f"{pad}{dest} = {_wrapped(f'int(({a}) / ({b}))')} "
            f"if ({b}) != 0 else 0"
        )
    if op == "%":
        return (
            f"{pad}{dest} = "
            f"{_wrapped(f'int(({a}) - ({b}) * int(({a}) / ({b})))')} "
            f"if ({b}) != 0 else 0"
        )
    if op == "&&":
        return f"{pad}{dest} = 1 if (({a}) and ({b})) else 0"
    if op == "||":
        return f"{pad}{dest} = 1 if (({a}) or ({b})) else 0"
    if op == "<<":
        return f"{pad}{dest} = {_wrapped(f'({a}) << (({b}) & 31)')}"
    if op == ">>":
        return f"{pad}{dest} = {_wrapped(f'(({a}) & 0xFFFFFFFF) >> (({b}) & 31)')}"
    raise CompilerError(f"jit: unknown binary op {op!r}")


def _guarded(instr: TacInstr, body, names: Dict[Temp, str]) -> List[str]:
    """Wrap one or more statements in the instruction's guard."""
    pad = "    "
    if isinstance(body, str):
        body = [body]
    if instr.guard is None:
        return [f"{pad}{line}" for line in body]
    guard = _var(instr.guard, names)
    out = [f"{pad}if {guard}:"]
    out.extend(f"{pad}    {line}" for line in body)
    return out


def compile_operand_reader(
    operand, env_keyed_by_name: bool = True
) -> Callable[[Dict], int]:
    """Compile one TAC operand into a reusable ``env -> value`` reader.

    The simulator's address-resolution stage evaluates the same guard and
    index operands for every packet; building the reader once at switch
    construction (instead of closing over each packet's ``env``) keeps
    the per-packet fast path allocation-free. ``env_keyed_by_name``
    selects the JIT environment convention (temps keyed by name) versus
    the interpreter's (temps keyed by :class:`Temp`).
    """
    if isinstance(operand, Const):
        value = operand.value

        def read_const(_env, _value=value):
            return _value

        return read_const
    key = operand.name if env_keyed_by_name else operand

    def read_temp(env, _key=key):
        return env[_key]

    return read_temp


def compile_program_stages(program) -> List[Optional[StageFn]]:
    """Compile every stage of a :class:`CompiledProgram`; index-aligned
    with ``program.stages``."""
    return [
        compile_instrs(stage.instrs, name=f"s{stage.index}")
        for stage in program.stages
    ]
