"""Online invariant monitors, anomaly detection, and health/alerts.

Four contract layers:

* **determinism layer** — under every shipped fault schedule the fast
  and dense engines produce *identical* alert streams, and a fault-free
  (or empty-schedule) run produces zero alerts with byte-identical
  results versus a monitor-less run;
* **detection layer** — crossbar and phantom-loss schedules must raise
  alerts that name the active fault window;
* **schema layer** — every event type either engine can emit is in
  ``EVENT_TYPES`` (derived from the emit sites, not hand-copied) and
  survives a lossless Chrome trace_event round-trip;
* **unit layer** — alert log persistence, health verdicts, detector
  rules.
"""

import inspect
import json
import re
from pathlib import Path

import pytest

from repro.equivalence import check_degraded
from repro.faults import DegradationPolicy, FaultSchedule
from repro.mp5 import MP5Config, run_mp5, run_mp5_reference
from repro.obs import (
    Alert,
    AlertLog,
    AnomalyDetector,
    DetectorConfig,
    EVENT_TYPES,
    HealthReport,
    InvariantMonitor,
    MetricsRegistry,
    TeeEmitter,
    TraceRecorder,
    events_from_chrome,
    worst_verdict,
    write_chrome,
)
from repro.obs.health import render_health_timeline
from repro.workloads.synthetic import make_sensitivity_program, sensitivity_trace

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples" / "faults").glob(
        "*.json"
    )
)
ALERTING_EXAMPLES = ("crossbar.json", "phantom_loss.json")


def _program():
    return make_sensitivity_program(
        num_stateful=3, register_size=16, num_stages=6
    )


def _config():
    # Unbounded FIFOs: congestion drops are real losses with capacity 8
    # on this skewed trace, and the determinism layer needs a fault-free
    # run that is genuinely loss-free (zero alerts).
    return MP5Config(num_pipelines=4, fifo_capacity=None, remap_period=50)


def _trace(seed=11):
    return sensitivity_trace(300, 4, 3, 16, pattern="skewed", seed=seed)


def _run_monitored(runner, schedule):
    monitor = InvariantMonitor()
    stats, regs = runner(
        _program(),
        _trace(),
        _config(),
        max_ticks=5000,
        faults=schedule,
        monitor=monitor,
    )
    return stats, regs, monitor


def _alert_dicts(monitor):
    return [alert.to_dict() for alert in monitor.alerts]


# ---------------------------------------------------------------------------
# Determinism layer
# ---------------------------------------------------------------------------


class TestMonitorDeterminism:
    @pytest.mark.parametrize(
        "spec", EXAMPLES, ids=[p.stem for p in EXAMPLES]
    )
    def test_alert_streams_engine_identical(self, spec):
        """Both engines raise the same alerts under the same schedule,
        event-for-event — alerts never depend on within-tick order."""
        schedule = FaultSchedule.load(spec)
        _, _, fast = _run_monitored(run_mp5, schedule)
        _, _, dense = _run_monitored(run_mp5_reference, schedule)
        assert _alert_dicts(fast) == _alert_dicts(dense)
        assert fast.health_report().verdict == dense.health_report().verdict

    def test_empty_schedule_zero_alerts_and_identical_results(self):
        """An empty schedule raises no alerts, and the monitored run's
        observable results are byte-identical to a monitor-less run."""
        empty = FaultSchedule(
            faults=[], degradation=DegradationPolicy(), seed=0
        )
        for runner in (run_mp5, run_mp5_reference):
            stats, regs, monitor = _run_monitored(runner, empty)
            assert len(monitor.alerts) == 0
            assert monitor.total_violations() == 0
            assert monitor.health_report().verdict == "ok"
            bare_stats, bare_regs = runner(
                _program(), _trace(), _config(), max_ticks=5000
            )
            monitored = json.dumps(stats.summary(), sort_keys=True)
            detached = json.dumps(bare_stats.summary(), sort_keys=True)
            assert monitored == detached
            assert regs == bare_regs

    def test_fault_free_run_zero_alerts(self):
        stats, _, monitor = _run_monitored(run_mp5, None)
        assert stats.egressed == stats.offered
        assert len(monitor.alerts) == 0
        report = monitor.health_report()
        assert report.verdict == "ok"
        assert report.drained
        assert report.first_critical_tick is None


# ---------------------------------------------------------------------------
# Detection layer
# ---------------------------------------------------------------------------


class TestMonitorDetection:
    @pytest.mark.parametrize("name", ALERTING_EXAMPLES)
    def test_lossy_schedules_raise_alerts(self, name):
        spec = next(p for p in EXAMPLES if p.name == name)
        schedule = FaultSchedule.load(spec)
        _, _, monitor = _run_monitored(run_mp5, schedule)
        criticals = monitor.alerts.by_severity("critical")
        assert len(criticals) >= 1
        report = monitor.health_report()
        assert report.verdict == "violated"
        assert report.first_critical_tick is not None

    def test_crossbar_alert_names_fault_window(self):
        spec = next(p for p in EXAMPLES if p.name == "crossbar.json")
        schedule = FaultSchedule.load(spec)
        _, _, monitor = _run_monitored(run_mp5, schedule)
        first = monitor.health_report().first_critical
        assert first is not None
        windows = first["evidence"]["active_faults"]
        assert any(w["kind"] == "crossbar_fail" for w in windows)
        window = next(w for w in windows if w["kind"] == "crossbar_fail")
        assert window["start"] <= first["tick"] < window["end"]

    def test_checker_reuses_monitor_verdict(self):
        """check_degraded folds the online monitor into its report: the
        degraded contract additionally requires zero invariant
        violations, while packet loss only colors the health verdict."""
        spec = next(p for p in EXAMPLES if p.name == "crossbar.json")
        schedule = FaultSchedule.load(spec)
        report = check_degraded(
            _program(), _trace(), _config(), faults=schedule
        )
        assert report.health == "violated"  # packets were lost
        assert report.monitor_violations == 0  # but no invariant broke
        assert report.contract_holds
        assert "online monitor" in report.summary()
        plain = check_degraded(
            _program(), _trace(), _config(), faults=schedule, monitor=False
        )
        assert plain.health is None
        assert plain.contract_holds


# ---------------------------------------------------------------------------
# Schema layer: emit sites -> EVENT_TYPES -> Chrome round-trip
# ---------------------------------------------------------------------------

# Synthesized argument per emitter parameter name.
_ARG_VALUES = {
    "tick": 1,
    "pkt": 7,
    "pipe": 0,
    "stage": 2,
    "port": 3,
    "flow": 5,
    "array": "reg",
    "index": 4,
    "src": 1,
    "latency": 2.5,
    "moves": 3,
    "reason": "fifo_full",
    "kind": "crossbar_fail",
    "moved": 2,
    "deferred": 1,
    "attempt": 0,
}


def _emitted_method_names():
    """Every ``obs.<method>(...)`` call site in the engines and the
    fault injector — derived from the source, not hand-copied."""
    import repro.faults.injector
    import repro.mp5.reference
    import repro.mp5.switch

    names = set()
    for module in (
        repro.mp5.switch,
        repro.mp5.reference,
        repro.faults.injector,
    ):
        names.update(
            re.findall(r"\bobs\.(\w+)\(", inspect.getsource(module))
        )
    return names


class TestEventSchema:
    def test_every_emit_site_produces_known_event_types(self, tmp_path):
        recorder = TraceRecorder()
        methods = _emitted_method_names()
        assert methods, "no emit sites found — regex out of date?"
        for name in sorted(methods):
            method = getattr(recorder, name)
            params = [
                p
                for p in inspect.signature(method).parameters
                if p != "self"
            ]
            missing = [p for p in params if p not in _ARG_VALUES]
            assert not missing, f"{name}: no synthesized value for {missing}"
            method(**{p: _ARG_VALUES[p] for p in params})
        # fifo_unblock is recorder-internal: emitted when a fifo_pop
        # clears an open fifo_block episode (exercised above).
        produced = {event["type"] for event in recorder.events}
        unknown = produced - set(EVENT_TYPES)
        assert not unknown, f"engines emit types missing from EVENT_TYPES: {unknown}"
        unreachable = set(EVENT_TYPES) - produced
        assert not unreachable, f"EVENT_TYPES no engine emits: {unreachable}"

        # Lossless Chrome trace_event round-trip for one event per type.
        one_per_type = {}
        for event in recorder.events:
            one_per_type.setdefault(event["type"], event)
        events = list(one_per_type.values())
        path = tmp_path / "roundtrip.json"
        write_chrome(events, path)
        assert events_from_chrome(json.loads(path.read_text())) == events


# ---------------------------------------------------------------------------
# Unit layer: alert log, health, detector
# ---------------------------------------------------------------------------


class TestAlertLog:
    def _log(self):
        log = AlertLog()
        log.append(
            Alert(
                severity="critical",
                tick=30,
                subsystem="fifo",
                kind="packet_loss",
                message="1 data packet(s) dropped",
                invariant="lossless_delivery",
                evidence={"reason": "fifo_full", "count": 1},
            )
        )
        log.append(
            Alert(
                severity="info",
                tick=31,
                subsystem="crossbar",
                kind="fault_end",
                message="fault window closed",
            )
        )
        return log

    def test_round_trip(self, tmp_path):
        log = self._log()
        path = tmp_path / "alerts.jsonl"
        log.save(path, meta={"ticks": 40, "verdict": "violated"})
        header, loaded = AlertLog.load(path)
        assert header["format"] == "mp5-alert-log"
        assert header["ticks"] == 40
        assert header["verdict"] == "violated"
        assert loaded.to_dicts() == log.to_dicts()
        # invariant key omitted when None, present otherwise
        assert "invariant" not in loaded.to_dicts()[1]
        assert loaded.to_dicts()[0]["invariant"] == "lossless_delivery"

    def test_load_rejects_empty_and_garbage(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError):
            AlertLog.load(empty)
        garbage = tmp_path / "garbage.jsonl"
        garbage.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError):
            AlertLog.load(garbage)
        truncated = tmp_path / "truncated.jsonl"
        truncated.write_text('{"format": "mp5-alert-log"')
        with pytest.raises(ValueError):
            AlertLog.load(truncated)

    def test_by_severity(self):
        log = self._log()
        assert len(log.by_severity("critical")) == 1
        assert len(log.by_severity("warning")) == 0


class TestHealth:
    def test_worst_verdict(self):
        assert worst_verdict("ok", "ok") == "ok"
        assert worst_verdict("ok", "degraded") == "degraded"
        assert worst_verdict("degraded", "violated", "ok") == "violated"

    def test_verdict_from_alerts(self):
        ok = HealthReport.from_alerts([])
        assert ok.verdict == "ok"
        info = HealthReport.from_alerts(
            [Alert("info", 1, "crossbar", "fault_start", "m")]
        )
        assert info.verdict == "ok"  # lifecycle alerts never degrade
        warn = HealthReport.from_alerts(
            [Alert("warning", 1, "egress", "throughput_collapse", "m")]
        )
        assert warn.verdict == "degraded"
        crit = HealthReport.from_alerts(
            [
                Alert("warning", 1, "egress", "throughput_collapse", "m"),
                Alert("critical", 2, "fifo", "packet_loss", "m"),
            ]
        )
        assert crit.verdict == "violated"
        assert crit.first_critical_tick == 2

    def test_timeline_renders_with_and_without_alerts(self):
        assert "0 alerts" in render_health_timeline([])
        alerts = [
            Alert("critical", 5, "fifo", "packet_loss", "lost one"),
            Alert("info", 9, "crossbar", "fault_end", "closed"),
        ]
        text = render_health_timeline(alerts, ticks=10, width=10)
        assert "critical" in text
        assert "lost one" in text


class TestDetector:
    def _registry_with(self, series):
        registry = MetricsRegistry(window=10)
        registry.series.update(series)
        return registry

    def test_throughput_collapse_fires_after_warmup(self):
        detector = AnomalyDetector(DetectorConfig(window=10))
        # Warm up with steady egress, then collapse to zero.
        for i, value in enumerate((100, 100, 100, 100)):
            registry = self._registry_with(
                {"egressed": [[10 * (i + 1), value]]}
            )
            assert detector.examine(registry, 10 * (i + 1)) == []
        registry = self._registry_with({"egressed": [[50, 0]]})
        alerts = detector.examine(registry, 50)
        assert [a.kind for a in alerts] == ["throughput_collapse"]
        assert alerts[0].severity == "warning"
        assert alerts[0].evidence["z"] <= -4.0

    def test_no_alerts_during_warmup(self):
        detector = AnomalyDetector(DetectorConfig(window=10))
        registry = self._registry_with({"egressed": [[10, 0]]})
        assert detector.examine(registry, 10) == []

    def test_stale_series_point_ignored(self):
        detector = AnomalyDetector(DetectorConfig(window=10))
        registry = self._registry_with({"egressed": [[10, 100]]})
        # Examining a later tick must not reuse the tick-10 point.
        assert detector.examine(registry, 20) == []
        assert detector._tracker("throughput").n == 0


class TestTeeEmitter:
    def test_tee_forwards_to_all_sinks(self):
        a, b = TraceRecorder(), TraceRecorder()
        tee = TeeEmitter(a, b)
        tee.ingress(1, 7, 0, 3, 5)
        tee.drop(2, 7, "fifo_full")
        assert a.events == b.events
        assert len(a.events) == 2

    def test_engine_tees_recorder_and_monitor(self):
        recorder = TraceRecorder()
        monitor = InvariantMonitor()
        stats, _ = run_mp5(
            _program(),
            _trace(),
            _config(),
            max_ticks=5000,
            recorder=recorder,
            monitor=monitor,
        )
        assert len(recorder.events) > 0
        assert monitor.injected == stats.offered
        assert monitor.health_report().verdict == "ok"
