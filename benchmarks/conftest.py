"""Shared configuration for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper and checks
the *shape* criteria from DESIGN.md (who wins, monotone directions,
where crossovers fall) — absolute numbers differ from the authors'
testbed by construction. Rendered tables are printed so ``pytest
benchmarks/ --benchmark-only -s`` shows the reproduced artifacts.

Scale knobs: set MP5_BENCH_SCALE=small for quicker smoke runs.
"""

import os

import pytest

SCALE = os.environ.get("MP5_BENCH_SCALE", "full")


def bench_params():
    if SCALE == "small":
        return dict(num_packets=2000, seeds=(0,))
    return dict(num_packets=5000, seeds=(0, 1))


def micro_params():
    if SCALE == "small":
        return dict(num_packets=2000, seeds=(0, 1))
    return dict(num_packets=5000, seeds=tuple(range(10)))


@pytest.fixture
def show():
    """Print a rendered table under -s and attach nothing otherwise."""

    def _show(text: str) -> None:
        print("\n" + text)

    return _show


def run_once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
