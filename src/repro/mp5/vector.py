"""Structure-of-arrays batch engine: the third MP5 engine.

:mod:`repro.mp5.switch` advances one Python packet at a time;
this engine advances whole *columns*. It exploits three structural
facts of the fault-free MP5 tick the differential suite already proves:

* **D1 homogeneity** — every pipeline runs the identical program, so a
  stage's stateless ALU work is data-parallel across packets and runs
  as one precompiled NumPy kernel (:mod:`repro.compiler.vjit`).
* **C1 / Invariant 1** — with unbounded FIFOs and phantom generation
  order equal to arrival order, each per-(pipeline, stage) FIFO group
  pops its members strictly in packet-id order, one per tick:
  ``pop[j] = max(pop[j-1] + 1, insert[j])`` — a vectorizable running
  maximum. Inter-stage transit times are deterministic (one stage per
  tick), so the whole timeline is computed per *epoch* (the span
  between two remap boundaries) without simulating individual ticks.
* **Packet Transactions' observation** — only the stateful atom
  updates must serialize. They run as a batched inner loop grouped by
  ``(array, index)``: rows touching distinct indices execute together
  in one kernel call (a *wave*); same-index rows execute in successive
  waves in exact arrival order.

The engine drives the *real* :class:`~repro.mp5.sharding.ShardingRuntime`
with batched counter updates, so remap decisions (heuristic and
optimal) are bit-identical to the scalar engines. Idle stretches never
cost anything — the epoch representation is inherently tick-compressed,
but remap boundaries inside idle stretches still execute (stale access
counters can still move indices), exactly like the idle-tick
compression of the scalar engines.

Observability (recorder, metrics registry, profiler, monitor) rides the
batch path: attached sinks are fed *after* Phase B by the epoch-trace
reconstruction (:mod:`repro.obs.reconstruct`), which synthesizes the
scalar engines' event stream from the schedule and replays it through
the real sink emitters — same ``canonical_form``, same alert stream,
same metrics series, and ``results.json`` stays byte-identical with
sinks on or off. With no sink attached the engine skips it all, so the
closed-form speed is untouched.

Exactness over generality: configurations the batch reduction cannot
represent (bounded FIFOs, phantom loss, ECN, starvation preemption,
ideal queues, affinity spray, resolvable access guards, write-only
register arrays, attached faults) make :func:`run_mp5_vector` fall back
to the fast engine — with a one-line deduplicated warning for faults
and unsupported program shapes (including the reason), silently for
config shapes — so ``--engine vector`` is always safe. Supported runs
produce :class:`~repro.mp5.stats.SwitchStats` and final registers equal
to both scalar engines, byte-for-byte once serialized.
"""

from __future__ import annotations

import operator
import sys
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..compiler.jit import compile_instrs
from ..compiler.tac import Temp
from ..compiler.vjit import compile_vector_stage
from ..errors import ConfigError, ReproError
from .config import MP5Config
from .epochs import (
    _FAR,
    EpochStreamer,
    _grown,
    execute_epoch_service,
    execute_service,
)
from .packet import DataPacket
from .stats import SwitchStats
from .switch import FLOW_ORDER_ARRAY, MP5Switch, run_mp5


class VectorUnsupported(ReproError):
    """The program or configuration needs the scalar engines."""


class _LitePacket:
    """The arrival-time facts of a buffered packet — everything the
    epoch sweep, statistics reconstruction, and trace replay read
    (``arrival``, ``port``, ``flow_id``). The streaming path swaps the
    full :class:`DataPacket` for this once the header columns are
    gathered, so a served segment buffers O(SoA columns) per packet,
    not O(header dicts)."""

    __slots__ = ("arrival", "port", "flow_id")

    def __init__(self, arrival, port, flow_id):
        self.arrival = arrival
        self.port = port
        self.flow_id = flow_id


# Fallback warnings already emitted, for deduplication: a sweep that
# falls back does so identically in every cell, so the notice prints
# once per run (the CLI resets this at entry), not once per cell.
_warned_fallbacks: set = set()


def reset_fallback_warnings() -> None:
    """Start a fresh warning scope (CLI entry, new reproduction run)."""
    _warned_fallbacks.clear()


def _warn_fallback(message: str) -> None:
    if message not in _warned_fallbacks:
        _warned_fallbacks.add(message)
        print(message, file=sys.stderr)


def config_fallback_reason(cfg: MP5Config) -> Optional[str]:
    """Why a config needs the fast engine; None when vector-capable."""
    if cfg.ideal_queues:
        return "ideal_queues"
    if not cfg.enable_phantoms:
        return "enable_phantoms=False"
    if cfg.fifo_capacity is not None:
        return "bounded fifo_capacity"
    if cfg.ecn_threshold is not None:
        return "ecn_threshold"
    if cfg.starvation_threshold is not None:
        return "starvation_threshold"
    if cfg.phantom_loss_rate > 0:
        return "phantom_loss_rate > 0"
    if cfg.record_crossbar:
        return "record_crossbar"
    if cfg.spray_policy != "roundrobin":
        return f"spray_policy={cfg.spray_policy!r}"
    return None


class _VPlan:
    """One per-packet state access, in stage order."""

    __slots__ = (
        "stage",
        "base",
        "label",
        "size",
        "conservative",
        "multi",
        "has_index",
        "index_operand",
        "category",  # 'wave' | 'serial' | 'none'
        "is_flow",
    )

    def __init__(self, **kw):
        for key, value in kw.items():
            setattr(self, key, value)


class VectorSwitch(MP5Switch):
    """Batch engine. Construction raises :class:`VectorUnsupported` for
    program shapes the epoch reduction cannot represent; the config
    gates of :func:`config_fallback_reason` are checked here too so
    direct users get the same contract as the CLI."""

    def __init__(
        self,
        program,
        config: Optional[MP5Config] = None,
        native: Optional[bool] = None,
        epoch_jobs: Optional[int] = None,
    ):
        super().__init__(program, config)
        reason = config_fallback_reason(self.config)
        if reason is not None:
            raise VectorUnsupported(reason)
        # Performance knobs only — every combination produces identical
        # (byte-identical once serialized) results; see repro.mp5.epochs.
        self._native = native
        self._epoch_jobs = epoch_jobs
        self._streamer: Optional[EpochStreamer] = None
        self._build_vector_plan()

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def _build_vector_plan(self) -> None:
        depth = self.depth
        # Kernel compilation is deterministic in the program, so cache
        # it on the program object: sweeps construct a fresh switch per
        # run but reuse one compiled program across thousands of runs.
        cache = getattr(self.program, "_vector_kernel_cache", None)
        if cache is not None and len(cache[0]) == depth:
            self._vkernels, self._vserial_fns = cache
        else:
            self._vkernels = [
                compile_vector_stage(instrs, f"s{i}")
                for i, instrs in enumerate(self._stage_instrs)
            ]
            # Scalar fallbacks for serialized stages, independent of
            # cfg.jit (the vector engine always uses its own compilations).
            self._vserial_fns = [
                compile_instrs(instrs, f"vs{i}") if instrs else None
                for i, instrs in enumerate(self._stage_instrs)
            ]
            try:
                self.program._vector_kernel_cache = (
                    self._vkernels,
                    self._vserial_fns,
                )
            except AttributeError:
                pass
        kern0 = self._vkernels[0]
        if kern0 is not None and kern0.stateful:
            raise VectorUnsupported("stateful resolution stage")

        by_stage = dict(self._plans_by_stage)
        vplans: List[_VPlan] = []
        for (
            stage,
            base,
            guard_read,
            index_read,
            size,
            conservative,
            label,
            multi,
        ) in self._resolution_plans:
            if guard_read is not None:
                # A resolvable guard lets packets skip the stateful
                # stage entirely (through-transit + Invariant-2 slot
                # blocking) — the scalar engines model that; we don't.
                raise VectorUnsupported("resolvable access guard")
            group = by_stage[stage]
            kern = self._vkernels[stage]
            names_at = {p.name for p in group}
            for instr in kern.stateful if kern else ():
                if instr.reg not in names_at:
                    raise VectorUnsupported(
                        f"register {instr.reg!r} accessed outside its plan stage"
                    )
            has_index = index_read is not None
            plan0 = group[0]
            category = "none"
            if kern is not None:
                category = "serial"
                if has_index and not multi:
                    in_stage_defs = {
                        i.dest
                        for i in self._stage_instrs[stage]
                        if i.dest is not None
                    }
                    op = plan0.index_operand
                    uniform = isinstance(op, Temp) and op not in in_stage_defs
                    if uniform and all(
                        instr.reg == base and instr.args[0] == op
                        for instr in kern.stateful
                    ):
                        category = "wave"
            vplans.append(
                _VPlan(
                    stage=stage,
                    base=base,
                    label=label,
                    size=size,
                    conservative=conservative,
                    multi=multi,
                    has_index=has_index,
                    index_operand=plan0.index_operand if has_index else None,
                    category=category,
                    is_flow=False,
                )
            )
        # Stateful instructions at a stage with no plan: a write-only
        # array — it has no phantom/FIFO plan, so its service timing has
        # no batched representation.
        plan_stages = {p.stage for p in vplans}
        for stage in range(depth):
            kern = self._vkernels[stage]
            if kern is not None and kern.stateful and stage not in plan_stages:
                raise VectorUnsupported("write-only register array")
        if self._flow_order_stage is not None:
            vplans.append(
                _VPlan(
                    stage=self._flow_order_stage,
                    base=FLOW_ORDER_ARRAY,
                    label=FLOW_ORDER_ARRAY,
                    size=self.config.flow_order_size,
                    conservative=False,
                    multi=False,
                    has_index=True,
                    index_operand=None,
                    category="none",
                    is_flow=True,
                )
            )
            plan_stages.add(self._flow_order_stage)
        self._vplans = vplans

        # Live stateless stages a packet transits between accesses; the
        # fast engine services through packets there, so we must too.
        live = [
            u
            for u in range(1, depth)
            if self._vkernels[u] is not None and u not in plan_stages
        ]
        stages = [p.stage for p in vplans]
        if vplans:
            self._transit_after_inject = [u for u in live if u < stages[0]]
            self._transit_after = [
                [
                    u
                    for u in live
                    if stages[pi] < u
                    and (pi + 1 >= len(stages) or u < stages[pi + 1])
                ]
                for pi in range(len(stages))
            ]
        else:
            self._transit_after_inject = live
            self._transit_after = []

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def attach_observability(
        self, recorder=None, metrics=None, profiler=None, monitor=None
    ) -> None:
        """Attach observability sinks — deferred, not hooked.

        The batch engine has no per-tick hot path to instrument, so the
        sinks are only *stored* here; after Phase B completes, the
        epoch-trace reconstruction (:mod:`repro.obs.reconstruct`) feeds
        them the synthesized event stream, registers the metrics
        samplers, and runs the monitor's per-tick checks. Binding is
        deferred with everything else, which keeps a later
        :class:`VectorUnsupported` fallback clean: the same sinks
        re-attach to the fast engine untouched.
        """
        if self._ran:
            raise ConfigError(
                "attach_observability must be called before run(): the "
                "instrumentation hooks are bound at tick time"
            )
        if recorder is not None:
            self._recorder = recorder
        if profiler is not None:
            self._profiler = profiler
        if metrics is not None:
            self._metrics = metrics
        if monitor is not None:
            self._monitor = monitor

    def _replay_sinks(self, packets, schedule, wasted_masks, drained) -> None:
        from ..obs.reconstruct import replay_observability

        replay_observability(
            self,
            packets,
            schedule,
            wasted_masks,
            drained,
            recorder=self._recorder,
            metrics=self._metrics,
            monitor=self._monitor,
        )

    @property
    def _sinks_attached(self) -> bool:
        return (
            self._recorder is not None
            or self._metrics is not None
            or self._monitor is not None
        )

    # ------------------------------------------------------------------
    # Streaming run loop: start / feed / pump / finish
    # ------------------------------------------------------------------

    def start(
        self,
        max_ticks: Optional[int] = None,
        record_access_order: bool = False,
    ) -> None:
        """Begin a streaming run (the scalar engines' contract).

        After ``start()`` the switch accepts arrival batches through
        :meth:`feed`; :meth:`pump` services every epoch the ingest
        watermark has closed, and :meth:`finish` drains the rest and
        returns the stats. The served results are byte-identical to
        :meth:`run` on the concatenated trace at any feed chunking,
        with buffered service work bounded by the largest epoch — but
        only when remapping is on: with ``remap_algorithm='none'``
        there are no epoch boundaries, so everything defers to
        :meth:`finish` (exactly the batch run).
        """
        if self._ran:
            raise ConfigError(
                "MP5Switch.run was called twice on one instance; tick, "
                "statistics and FIFO state are not reusable — construct a "
                "fresh switch per run"
            )
        self._ran = True
        if record_access_order:
            raise VectorUnsupported("record_access_order")
        if self._faults is not None:
            raise VectorUnsupported("faults attached")
        cfg = self.config
        fields = set()
        temps = set()
        for kern in self._vkernels:
            if kern is not None:
                fields |= kern.fields_read | kern.fields_written
                temps.update(kern.temps_in)
                temps.update(kern.temps_out)
        if self._flow_order_stage is not None:
            fields.add(cfg.flow_order_field)
        self._field_list = sorted(fields)
        self._temp_list = sorted(temps)
        # Structure-of-arrays packet state. The dict objects are shared
        # with the streamer for the whole run; feed() swaps grown
        # columns into them in place.
        self._H: Dict[str, np.ndarray] = {}
        self._E: Dict[str, np.ndarray] = {}
        self._R = {
            name: np.asarray(values, dtype=np.int64)
            for name, values in self.registers.items()
        }
        self._spackets: List[_LitePacket] = []
        self._max_ticks = max_ticks
        self._feed_seq = 0
        self._last_feed_key = None
        self._streamer = EpochStreamer(
            self, self._spackets, self._H, self._E, self._R, max_ticks
        )
        # Per-row wasted-slot attribution, only when a sink will replay
        # the stream: plans whose conservative access can waste a slot
        # get a row mask and Phase B runs their mask-capable paths
        # (identical results by the exactness contract).
        self._wmasks = None
        if self._sinks_attached:
            self._wmasks = [
                np.zeros(0, dtype=bool)
                if plan.conservative
                and not plan.multi
                and plan.category in ("wave", "serial")
                else None
                for plan in self._vplans
            ]
        self._swasted = 0
        self._epochs_serviced = 0
        self._peak_buffered = 0
        self._drain_pumped = False
        self._pa_time = 0.0
        self._pb_time = 0.0

    def feed(self, entries: Iterable) -> int:
        """Append a batch of arrivals (the scalar engines' contract:
        per-batch sort, monotone across batches, arrival-ordered packet
        ids). The header columns are gathered into the SoA arrays here
        — one vectorized pass per batch — and the heavyweight packet
        dicts are dropped immediately; Phase A's injection recurrence
        extends incrementally."""
        if self._streamer is None or self._finished:
            raise ConfigError("feed() requires start() and precedes finish()")
        if self._drain_pumped:
            raise ConfigError(
                "feed() after a draining pump(): the vector engine "
                "commits remap decisions at drain — pump with "
                "until_tick=ingest_watermark while feeding"
            )
        packets = [self._coerce(i, entry) for i, entry in enumerate(entries)]
        if not packets:
            return 0
        for p in packets:
            if p.env:
                raise VectorUnsupported("pre-seeded packet env")
        # Stable (arrival, port, pkt_id) sort, same order as the scalar
        # engines' list.sort but via one lexsort instead of N tuple-key
        # calls. float64 keys: arrivals may carry sub-tick fractions,
        # and float64 is exact for every tick/port/id magnitude here, so
        # the lexsort ranks exactly like the Python tuple compare.
        n = len(packets)
        arr = np.fromiter(
            (p.arrival for p in packets), dtype=np.float64, count=n
        )
        prt = np.fromiter(
            (p.port for p in packets), dtype=np.float64, count=n
        )
        pid = np.fromiter(
            (p.pkt_id for p in packets), dtype=np.float64, count=n
        )
        order = np.lexsort((pid, prt, arr))
        packets = [packets[i] for i in order.tolist()]
        arr = arr[order]
        head = (packets[0].arrival, packets[0].port)
        if self._last_feed_key is not None and head < self._last_feed_key:
            raise ConfigError(
                "feed() batches must be monotone in (arrival, port): batch "
                f"starts at {head} but {self._last_feed_key} was already fed"
            )
        base = self._feed_seq
        for seq, pkt in enumerate(packets):
            pkt.pkt_id = base + seq  # arrival-ordered ids (C1 order)
        self._feed_seq = base + n
        self._last_feed_key = (packets[-1].arrival, packets[-1].port)
        stats = self.stats
        stats.offered += n
        stats.arrival_ticks.extend(p.arrival for p in packets)

        sr = self._streamer
        lo = sr.n_fed
        hi = lo + n
        field_list = self._field_list
        if field_list:
            # One pass over the packet dicts: row-major gather, then one
            # transpose — far cheaper than per-field generator scans.
            # itemgetter first (every real workload populates every
            # field); fall back to .get only when a header is sparse.
            try:
                if len(field_list) == 1:
                    getter = operator.itemgetter(field_list[0])
                    raw = np.array(
                        [[getter(p.headers)] for p in packets],
                        dtype=np.int64,
                    )
                else:
                    getter = operator.itemgetter(*field_list)
                    raw = np.array(
                        [getter(p.headers) for p in packets],
                        dtype=np.int64,
                    )
            except KeyError:
                raw = np.array(
                    [
                        [p.headers.get(f, 0) for f in field_list]
                        for p in packets
                    ],
                    dtype=np.int64,
                )
            if lo == 0:
                for pos, f in enumerate(field_list):
                    self._H[f] = np.ascontiguousarray(raw[:, pos])
            else:
                for pos, f in enumerate(field_list):
                    col = _grown(self._H[f], hi)
                    col[lo:hi] = raw[:, pos]
                    self._H[f] = col
        for t in self._temp_list:
            if lo == 0:
                self._E[t] = np.zeros(n, dtype=np.int64)
            else:
                self._E[t] = _grown(self._E[t], hi, fill=0)
        if self._wmasks is not None:
            for pi, m in enumerate(self._wmasks):
                if m is None:
                    continue
                if lo == 0:
                    self._wmasks[pi] = np.zeros(n, dtype=bool)
                else:
                    self._wmasks[pi] = _grown(m, hi, fill=False)
        # Keep only the arrival-time facts; the header dicts are now in
        # the columns and the DataPacket objects can be collected.
        spackets = self._spackets
        for p in packets:
            spackets.append(_LitePacket(p.arrival, p.port, p.flow_id))
        t0 = perf_counter()
        sr.ingest(arr)
        self._pa_time += perf_counter() - t0
        buffered = sr.buffered
        if buffered > self._peak_buffered:
            self._peak_buffered = buffered
        return n

    def pump(
        self,
        max_steps: Optional[int] = None,
        until_tick: Optional[int] = None,
    ) -> int:
        """Service every epoch whose content is complete; returns the
        number of epochs serviced (the streaming unit of progress —
        the scalar engines count ticks here).

        ``until_tick`` is the caller's ingest watermark: an epoch cut
        executes only once ``cut < until_tick`` proves no future feed
        can deliver an arrival for it. ``until_tick=None`` is the
        draining pump — it asserts no further :meth:`feed` calls and
        runs the sweep to completion (mirroring the scalar engines,
        where an unbounded pump drains all pending work)."""
        if self._streamer is None:
            raise ConfigError("pump() requires start()")
        final = until_tick is None
        if final:
            self._drain_pumped = True
        sr = self._streamer
        steps = 0
        t0 = perf_counter()
        while (max_steps is None or steps < max_steps) and not sr.done:
            step = sr.advance_epoch(until_tick, final)
            if step is None:
                break
            self._pa_time += perf_counter() - t0
            self._service_step(step)
            t0 = perf_counter()
            steps += 1
        self._pa_time += perf_counter() - t0
        return steps

    def _service_step(self, step) -> None:
        """Phase B for one epoch, as soon as Phase A closes it."""
        sr = self._streamer
        t0 = perf_counter()
        self._swasted += execute_epoch_service(
            self,
            sr,
            step,
            self._H,
            self._E,
            self._R,
            native=self._native,
            epoch_jobs=self._epoch_jobs,
            profiler=self._profiler,
            wasted_out=self._wmasks,
        )
        self._pb_time += perf_counter() - t0
        self._epochs_serviced += 1
        # Live progress for dashboards; finish() recomputes both
        # exactly (these match the scalar engines' live counters).
        self.stats.egressed = int(sr.egr_assigned)
        through = sr.executed_through
        if through >= _FAR:
            through = sr.last_egress
        if through >= 0:
            self.tick = int(through) + 1

    def finish(self) -> SwitchStats:
        """Drain the sweep, run any deferred service, and reconstruct
        the statistics. A run that never pumped mid-stream (notably
        :meth:`run`) executes Phase B whole-run — plan-major, with the
        pool amortized across the full stream — which is also the only
        path when remapping is off."""
        if self._streamer is None:
            raise ConfigError("finish() requires start()")
        if self._finished:
            raise ConfigError("finish() was already called on this switch")
        self._finished = True
        sr = self._streamer
        packets = self._spackets
        stats = self.stats
        max_ticks = self._max_ticks
        if not packets or (max_ticks is not None and max_ticks <= 0):
            stats.ticks = 0
            if self._sinks_attached:
                # The scalar loop never steps here either, but its sinks
                # still see registration, the final window roll, and
                # end_run (drained unless packets were cut by max_ticks).
                self._replay_sinks(packets, None, None, drained=not packets)
            return stats
        prof = self._profiler
        streamed = self._epochs_serviced > 0
        t0 = perf_counter()
        while not sr.done:
            step = sr.advance_epoch(final=True)
            if step is not None and streamed:
                self._pa_time += perf_counter() - t0
                self._service_step(step)
                t0 = perf_counter()
        self._pa_time += perf_counter() - t0
        schedule = sr.finalize()
        self._last_schedule = schedule  # test/debug hook: the run's DAG
        if prof is not None:
            prof.record_span("phase_a", self._pa_time)
        if not streamed:
            # Phase B, whole-run: replay the schedule against register
            # state, on the native tier and worker pool when asked. The
            # split is exact because access indices resolve at the
            # stateless resolution stage.
            t0 = perf_counter()
            self._swasted = execute_service(
                self,
                schedule,
                self._H,
                self._E,
                self._R,
                native=self._native,
                epoch_jobs=self._epoch_jobs,
                profiler=prof,
                wasted_out=self._wmasks,
            )
            self._pb_time = perf_counter() - t0
        if prof is not None:
            prof.record_span("phase_b", self._pb_time)
        self._finalize_stats(packets, schedule)
        return stats

    @property
    def has_work(self) -> bool:
        """True while fed packets are awaiting service (the scalar
        engines' pending-or-in-flight test)."""
        sr = self._streamer
        if sr is None or self._finished:
            return False
        return sr.buffered > 0 and not sr.done

    def work_available(self, drain: bool) -> bool:
        """True iff :meth:`pump` would make progress — epoch-granular,
        so a pump is only worth calling once the watermark closes a
        cut (or at drain, when the rest of the sweep runs). Matches the
        scalar probe: no fed-but-unserviced packets, no work."""
        if not self.has_work:
            return False
        sr = self._streamer
        if drain:
            return True
        return sr.can_advance(self.ingest_watermark)

    def stream_stats(self) -> Dict[str, int]:
        """Streaming gauges: current and peak buffered-packet counts
        (fed but no egress assigned — the memory-bound contract's
        observable) and epochs serviced incrementally."""
        sr = self._streamer
        return {
            "buffered": int(sr.buffered) if sr is not None else 0,
            "peak_buffered": int(self._peak_buffered),
            "epochs_serviced": int(self._epochs_serviced),
        }

    # ------------------------------------------------------------------
    # Run (batch: one feed, one drain)
    # ------------------------------------------------------------------

    def run(
        self,
        trace: Iterable,
        max_ticks: Optional[int] = None,
        record_access_order: bool = False,
    ) -> SwitchStats:
        self.start(max_ticks=max_ticks, record_access_order=record_access_order)
        entries = trace if isinstance(trace, list) else list(trace)
        self.feed(entries)
        return self.finish()

    def _finalize_stats(self, packets, schedule) -> None:
        cfg = self.config
        stats = self.stats
        k = cfg.num_pipelines
        N = len(packets)
        vplans = self._vplans
        nplans = len(vplans)
        max_ticks = self._max_ticks
        wasted = self._swasted
        R = self._R
        prof = self._profiler
        wasted_masks = self._wmasks
        ins_tick = schedule.ins_tick
        pop_tick = schedule.pop_tick
        dest = schedule.dest
        egr_tick = schedule.egr_tick
        egr_pipe = schedule.egr_pipe

        # ------------------------------------------------------------------
        # Statistics reconstruction (Python-native values, so serialized
        # output is byte-identical with the scalar engines).
        # ------------------------------------------------------------------
        if schedule.egr_assigned == N:
            stats.ticks = int(schedule.last_egress) + 1
        else:
            stats.ticks = int(max_ticks)
        last_exec = stats.ticks - 1

        stats.phantoms_generated = schedule.injected * nplans
        stats.wasted_slots = wasted

        done = np.nonzero(egr_tick >= 0)[0]
        stats.egressed = int(done.size)
        if done.size:
            order = np.lexsort((egr_pipe[done], egr_tick[done]))
            ordered = done[order]
            ticks_sorted = egr_tick[ordered]
            stats.egress_ticks = ticks_sorted.tolist()
            # Latency keeps the arrival's Python type (int arrivals give
            # int latencies, fractional ones floats) exactly like the
            # scalar engines' per-packet subtraction.
            arrivals = [p.arrival for p in packets]
            stats.latencies = [
                t - arrivals[row]
                for t, row in zip(
                    ticks_sorted.tolist(), ordered.tolist()
                )
            ]
            flow_ids = [p.flow_id for p in packets]
            if any(f is not None for f in flow_ids):
                flow_egress = stats.flow_egress
                for row in ordered.tolist():
                    fid = flow_ids[row]
                    if fid is not None:
                        flow_egress.setdefault(fid, []).append(row)

        steering = 0
        for pi, plan in enumerate(vplans):
            executed = (ins_tick[pi] >= 0) & (ins_tick[pi] <= last_exec)
            prev = schedule.entry_pipe if pi == 0 else dest[pi - 1]
            steering += int(np.count_nonzero(executed & (dest[pi] != prev)))
        stats.steering_moves = steering

        max_depth = 0
        peaks = stats.per_stage_peak_queue
        for pi, plan in enumerate(vplans):
            for pipe in range(k):
                g = schedule.groups[pi][pipe]
                if g.count == 0:
                    continue
                members = g.members[: g.count]
                ins = ins_tick[pi][members]
                ins = ins[(ins >= 0) & (ins <= last_exec)]
                if ins.size == 0:
                    continue
                pops = pop_tick[pi][members]
                pops = pops[pops >= 0]
                ins_sorted = np.sort(ins)
                pop_sorted = np.sort(pops)
                # End-of-tick data occupancy changes only at event
                # ticks; its peak lands on an insert tick.
                occ = np.searchsorted(
                    pop_sorted, ins_sorted, side="right"
                )
                occ = np.arange(1, ins_sorted.shape[0] + 1) - occ
                peak = int(occ.max())
                if peak > 0:
                    peaks[(pipe, plan.stage)] = peak
                    if peak > max_depth:
                        max_depth = peak
        stats.max_queue_depth = max_depth
        self.tick = stats.ticks  # display parity with the scalar loop

        for name, arr in R.items():
            self.registers[name] = arr.tolist()

        if prof is not None:
            # Epoch boundaries Phase A resolved, plus the final span.
            start = 0
            records = schedule.remap_records
            for i, (boundary, moved) in enumerate(records):
                prof.record_epoch(
                    i, start, int(boundary), remap_moves=int(moved)
                )
                start = int(boundary)
            prof.record_epoch(len(records), start, stats.ticks)
        if self._sinks_attached:
            if prof is not None:
                t0 = perf_counter()
            self._replay_sinks(
                packets,
                schedule,
                wasted_masks,
                drained=(schedule.egr_assigned == N),
            )
            if prof is not None:
                prof.record_span("trace_reconstruct", perf_counter() - t0)


def run_mp5_vector(
    program,
    trace: Iterable,
    config: Optional[MP5Config] = None,
    max_ticks: Optional[int] = None,
    record_access_order: bool = False,
    recorder=None,
    metrics=None,
    profiler=None,
    faults=None,
    monitor=None,
    native: Optional[bool] = None,
    epoch_jobs: Optional[int] = None,
) -> Tuple[SwitchStats, Dict[str, List[int]]]:
    """Run a trace through the batch engine, falling back to the fast
    engine whenever the vector reduction does not apply.

    Observability sinks (``recorder``/``metrics``/``profiler``/
    ``monitor``) ride the batch path — the post-run epoch-trace
    reconstruction feeds them streams identical to the scalar engines'
    (:mod:`repro.obs.reconstruct`). Attached ``faults`` trigger the
    fallback with a one-line stderr warning (so ``--engine vector`` is
    always safe in scripts); unsupported configurations fall back
    silently and unsupported program shapes warn once with the
    :class:`VectorUnsupported` reason — sinks follow the run to the
    fast engine in every fallback. Warnings are deduplicated per run —
    a 1000-cell sweep that falls back prints one line, not 1000 (see
    :func:`reset_fallback_warnings`). ``native`` and ``epoch_jobs``
    select the fused-kernel tier and the in-run worker count
    (:mod:`repro.mp5.epochs`); both are pure performance knobs. Either
    way the returned statistics and registers are identical to
    :func:`~repro.mp5.switch.run_mp5`.
    """
    entries = trace if isinstance(trace, list) else list(trace)
    cfg = config or MP5Config()
    if faults is not None:
        _warn_fallback(
            "vector engine: faults attached; falling back to the "
            "fast engine"
        )
        return run_mp5(
            program,
            entries,
            config,
            max_ticks=max_ticks,
            record_access_order=record_access_order,
            recorder=recorder,
            metrics=metrics,
            profiler=profiler,
            faults=faults,
            monitor=monitor,
        )
    stats = None
    if (
        not record_access_order
        and config_fallback_reason(cfg) is None
    ):
        try:
            # VectorSwitch.run raises VectorUnsupported only in its
            # preamble, before any packet is mutated — and sink binding
            # is deferred until after Phase B — so the same entries
            # list and the same untouched sinks can be replayed
            # through the fast engine.
            switch = VectorSwitch(
                program, config, native=native, epoch_jobs=epoch_jobs
            )
            switch.attach_observability(
                recorder=recorder,
                metrics=metrics,
                profiler=profiler,
                monitor=monitor,
            )
            stats = switch.run(
                entries,
                max_ticks=max_ticks,
                record_access_order=record_access_order,
            )
        except VectorUnsupported as exc:
            _warn_fallback(
                f"vector engine: unsupported program shape ({exc}); "
                "falling back to the fast engine"
            )
            stats = None
    if stats is None:
        return run_mp5(
            program,
            entries,
            config,
            max_ticks=max_ticks,
            record_access_order=record_access_order,
            recorder=recorder,
            metrics=metrics,
            profiler=profiler,
            monitor=monitor,
        )
    registers = {
        name: values
        for name, values in switch.registers.items()
        if name != FLOW_ORDER_ARRAY
    }
    return stats, registers
