"""Analytic chip-area model for MP5's added hardware (Table 1, §4.2).

The paper synthesizes the MP5-specific components — inter-stage
crossbars, per-stage FIFOs, packet steering and dynamic sharding logic —
with Synopsys DC on the 15 nm NanGate library and reports:

* area grows **linearly with the number of stages** (one crossbar + FIFO
  group per stage boundary) and **quadratically with the number of
  pipelines** (a k x k crossbar has k^2 crosspoints);
* the area is **dominated by the crossbars** (consistent with dRMT [12]).

We model per-stage area as ``a * k^2 + b * k`` where the k^2 term is the
two crossbars (512-bit data channel + 48-bit phantom channel) and the
linear term is the k FIFOs plus steering/sharding logic, then calibrate
(a, b) against the paper's table:

    a = 0.0125  mm^2 per crosspoint-group (k^2 term)
    b = 0.00125 mm^2 per pipeline (FIFO + logic term)

which reproduces every Table 1 entry within ~4% (the published table is
itself only piecewise-consistent at that level: e.g. the k=2 column
scales 3.86-4x between k=2 and k=4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import ConfigError

# Channel widths (§4.2): data packet header 512 bits, phantom packet 48.
DATA_CHANNEL_BITS = 512
PHANTOM_CHANNEL_BITS = 48
FIFO_ENTRIES = 8  # per ring buffer, "sufficient to avoid tail drops"

# Calibrated 15 nm coefficients (mm^2).
CROSSPOINT_COEFF = 0.0125  # k^2 term: data + phantom crossbars
PER_PIPELINE_COEFF = 0.00125  # k term: FIFOs + steering + sharding logic

# Published Table 1, used by tests and the table generator for reference.
PAPER_TABLE1: Dict[Tuple[int, int], float] = {
    (2, 4): 0.21, (2, 8): 0.42, (2, 12): 0.63, (2, 16): 0.81,
    (4, 4): 0.84, (4, 8): 1.68, (4, 12): 2.52, (4, 16): 3.36,
    (8, 4): 3.2, (8, 8): 6.4, (8, 12): 9.6, (8, 16): 12.8,
}

COMMERCIAL_ASIC_AREA_MM2 = (300.0, 700.0)  # §4.2 reference range


@dataclass(frozen=True)
class AreaBreakdown:
    """Per-component area (mm^2) for one (k, s) configuration."""

    pipelines: int
    stages: int
    crossbar_mm2: float
    fifo_mm2: float
    logic_mm2: float

    @property
    def total_mm2(self) -> float:
        return self.crossbar_mm2 + self.fifo_mm2 + self.logic_mm2

    def overhead_fraction(self, asic_mm2: float = 500.0) -> float:
        """MP5's share of a commercial switch ASIC of ``asic_mm2``."""
        return self.total_mm2 / asic_mm2


def _validate(pipelines: int, stages: int) -> None:
    if pipelines < 1:
        raise ConfigError("pipelines must be >= 1")
    if stages < 1:
        raise ConfigError("stages must be >= 1")


def chip_area(pipelines: int, stages: int) -> AreaBreakdown:
    """Area of MP5-specific hardware for ``pipelines`` x ``stages``."""
    _validate(pipelines, stages)
    k, s = pipelines, stages
    crosspoint_total = CROSSPOINT_COEFF * k * k * s
    # Split the k^2 term between the two crossbars by channel width.
    data_share = DATA_CHANNEL_BITS / (DATA_CHANNEL_BITS + PHANTOM_CHANNEL_BITS)
    linear_total = PER_PIPELINE_COEFF * k * s
    # FIFO storage dominates the linear term; give steering/sharding
    # logic a fixed 20% share of it.
    return AreaBreakdown(
        pipelines=k,
        stages=s,
        crossbar_mm2=crosspoint_total,
        fifo_mm2=linear_total * 0.8,
        logic_mm2=linear_total * 0.2 + crosspoint_total * (1 - data_share) * 0.0,
    )


def chip_area_mm2(pipelines: int, stages: int) -> float:
    return chip_area(pipelines, stages).total_mm2


def area_table(
    pipeline_counts: List[int] = (2, 4, 8),
    stage_counts: List[int] = (4, 8, 12, 16),
) -> Dict[Tuple[int, int], float]:
    """Regenerate Table 1's area rows from the model."""
    return {
        (k, s): round(chip_area_mm2(k, s), 3)
        for k in pipeline_counts
        for s in stage_counts
    }


def model_error_vs_paper() -> Dict[Tuple[int, int], float]:
    """Relative error of the model against every published Table 1 cell."""
    return {
        key: abs(chip_area_mm2(*key) - value) / value
        for key, value in PAPER_TABLE1.items()
    }
