"""Standalone performance harness: measure the simulator and the sweep
runner, write the numbers to ``benchmarks/BENCH_mp5.json``.

Two measurements:

* **engine** — the 2000-packet sensitivity workload of
  ``test_mp5_simulation_throughput`` (4 pipelines, 4 stateful stages,
  512-entry registers), best-of-N wall clock and the derived ticks/sec;
* **sweep** — ``run_all(scale="tiny")`` end to end, serial and with
  ``--jobs`` workers, after checking the two produce a byte-identical
  ``results.json``.

The ``seed_baseline`` block records the same engine workload measured
on the pre-fast-path engine (commit ``275ecc4``) **on this reference
host**; re-measure it locally (``git worktree add /tmp/seed 275ecc4``
and run this script there) before trusting the speedup on different
hardware.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [--rounds 15] [--jobs 4]
"""

from __future__ import annotations

import argparse
import json
import statistics
import tempfile
import time
from pathlib import Path

from repro.harness.runall import run_all
from repro.mp5 import MP5Config, run_mp5
from repro.workloads import (
    clone_packets,
    make_sensitivity_program,
    sensitivity_trace,
)

# The engine workload of benchmarks/test_simulator_performance.py,
# timed on the seed engine (commit 275ecc4) on the reference host:
# best-of-15 0.1272 s, median 0.1459 s for the 2000-packet run.
SEED_BASELINE = {
    "commit": "275ecc4",
    "engine_seconds_min": 0.1272,
    "engine_seconds_median": 0.1459,
}


def bench_engine(rounds: int) -> dict:
    program = make_sensitivity_program(4, 512)
    trace = sensitivity_trace(2000, 4, 4, 512, seed=0)
    times = []
    ticks = None
    for _ in range(rounds):
        batch = clone_packets(trace)
        start = time.perf_counter()
        stats, _ = run_mp5(program, batch, MP5Config(num_pipelines=4))
        times.append(time.perf_counter() - start)
        ticks = stats.ticks
        assert stats.egressed == 2000
    best = min(times)
    median = statistics.median(times)
    return {
        "workload": "sensitivity 2000 pkts, k=4, m=4, r=512",
        "rounds": rounds,
        "ticks": ticks,
        "seconds_min": round(best, 4),
        "seconds_median": round(median, 4),
        "ticks_per_sec": round(ticks / best),
        "speedup_vs_seed_min": round(
            SEED_BASELINE["engine_seconds_min"] / best, 2
        ),
        "speedup_vs_seed_median": round(
            SEED_BASELINE["engine_seconds_median"] / median, 2
        ),
    }


def bench_sweep(jobs: int) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        serial_dir = Path(tmp) / "serial"
        par_dir = Path(tmp) / "parallel"
        start = time.perf_counter()
        run_all(out_dir=str(serial_dir), scale="tiny", jobs=1)
        serial_s = time.perf_counter() - start
        start = time.perf_counter()
        run_all(out_dir=str(par_dir), scale="tiny", jobs=jobs)
        parallel_s = time.perf_counter() - start
        identical = (serial_dir / "results.json").read_bytes() == (
            par_dir / "results.json"
        ).read_bytes()
    return {
        "workload": 'run_all(scale="tiny")',
        "jobs": jobs,
        "serial_seconds": round(serial_s, 2),
        "parallel_seconds": round(parallel_s, 2),
        "speedup": round(serial_s / parallel_s, 2),
        "results_json_identical": identical,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=15)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent / "BENCH_mp5.json"),
    )
    args = parser.parse_args()

    report = {
        "engine": bench_engine(args.rounds),
        "sweep": bench_sweep(args.jobs),
        "seed_baseline": SEED_BASELINE,
    }
    if not report["sweep"]["results_json_identical"]:
        raise SystemExit("serial and parallel results.json diverged")
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
