"""Configuration for the MP5 switch simulator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigError


@dataclass
class MP5Config:
    """Parameters of a simulated MP5 switch.

    Time model: one tick is one pipeline clock at the *per-pipeline*
    packet rate — each of the ``num_pipelines`` pipelines starts at most
    one packet per tick, so the aggregate capacity is ``num_pipelines``
    packets/tick, equal to the line rate for minimum-size packets.

    Defaults mirror §4.3.1: a 64-port switch, 16 pipeline stages, four
    pipelines, remap every 100 clock cycles.
    """

    num_pipelines: int = 4
    num_ports: int = 64
    pipeline_depth: int = 16  # physical stages, >= program stage count
    fifo_capacity: Optional[int] = None  # per ring buffer; None = adaptive/unbounded
    remap_period: int = 100
    remap_algorithm: str = "heuristic"  # heuristic | optimal | none
    initial_shard: str = "roundrobin"  # roundrobin | random
    # Packet spray across pipeline fronts: "roundrobin" is the paper's
    # uniform spray (D1); "affinity" is an extension that enters each
    # packet at the pipeline of its *first* planned state access,
    # trimming crossbar traffic (the ingress already computes the
    # resolution logic, so the information is available pre-demux).
    spray_policy: str = "roundrobin"
    enable_phantoms: bool = True  # D4 on/off (off = ablation)
    ideal_queues: bool = False  # per-index queues (ideal baseline)
    phantom_latency: int = 0  # ticks from generation to FIFO delivery
    starvation_threshold: Optional[int] = None  # drop stateless after this wait
    ecn_threshold: Optional[int] = None  # mark packets once a queue hits this
    phantom_loss_rate: float = 0.0  # fault injection: P(phantom lost in flight)
    record_crossbar: bool = False  # collect crossbar telemetry (slower)
    # Execute stage programs through the TAC-to-Python compiler (~5x
    # faster than the instruction interpreter; semantics verified against
    # it by the test suite). The single-pipeline reference always uses
    # the interpreter, so equivalence checks cross-validate the JIT.
    jit: bool = True
    flow_order_field: Optional[str] = None  # header used for the dummy
    flow_order_size: int = 1024  # ...final-stage ordering state (§3.4)
    # Teleport the tick counter across stretches where no stage holds
    # live work and the next arrival is known (generalizes the fast
    # path's tail teleport to the whole switch). Semantically invisible:
    # results are identical on or off; like tail teleport it disengages
    # automatically when faults or any observability sink is attached,
    # and at remap boundaries (stale access counters can still move
    # indices on an otherwise idle tick).
    idle_compression: bool = True
    seed: int = 0

    def __post_init__(self):
        if self.num_pipelines < 1:
            raise ConfigError("num_pipelines must be >= 1")
        if self.num_ports < 1:
            raise ConfigError("num_ports must be >= 1")
        if self.pipeline_depth < 2:
            raise ConfigError("pipeline_depth must be >= 2")
        if self.remap_period < 1:
            raise ConfigError("remap_period must be >= 1")
        if self.remap_algorithm not in ("heuristic", "optimal", "none"):
            raise ConfigError(f"unknown remap_algorithm {self.remap_algorithm!r}")
        if self.initial_shard not in ("roundrobin", "random"):
            raise ConfigError(f"unknown initial_shard {self.initial_shard!r}")
        if self.spray_policy not in ("roundrobin", "affinity"):
            raise ConfigError(f"unknown spray_policy {self.spray_policy!r}")
        if self.phantom_latency < 0:
            raise ConfigError("phantom_latency must be >= 0")
        if self.fifo_capacity is not None and self.fifo_capacity < 1:
            raise ConfigError("fifo_capacity must be positive or None")
        if self.flow_order_size < 1:
            raise ConfigError("flow_order_size must be >= 1")
        if self.ecn_threshold is not None and self.ecn_threshold < 1:
            raise ConfigError("ecn_threshold must be positive or None")
        if not 0.0 <= self.phantom_loss_rate < 1.0:
            raise ConfigError("phantom_loss_rate must be in [0, 1)")

    @classmethod
    def ideal(cls, **kwargs) -> "MP5Config":
        """The ideal-MP5 baseline of §4.3.3: no head-of-line blocking and
        optimal (LPT) repacking."""
        kwargs.setdefault("ideal_queues", True)
        kwargs.setdefault("remap_algorithm", "optimal")
        return cls(**kwargs)
