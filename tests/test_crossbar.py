"""Tests for the explicit crossbar model (D3)."""

import pytest

from repro.compiler import compile_program
from repro.errors import SimulationError
from repro.mp5 import MP5Config, MP5Switch
from repro.mp5.crossbar import CrossbarTelemetry
from repro.workloads import line_rate_trace

from .conftest import heavy_hitter_headers


class TestTelemetryUnit:
    def test_straight_vs_crossing(self):
        telemetry = CrossbarTelemetry(num_pipelines=4)
        telemetry.begin_tick()
        telemetry.record(0, 0, boundary=1)
        telemetry.record(1, 2, boundary=1)
        telemetry.end_tick()
        assert telemetry.total_straight == 1
        assert telemetry.total_crossings == 1
        assert telemetry.crossing_fraction() == 0.5

    def test_input_port_double_use_rejected(self):
        telemetry = CrossbarTelemetry(num_pipelines=2)
        telemetry.begin_tick()
        telemetry.record(0, 0, boundary=1)
        with pytest.raises(SimulationError, match="two"):
            telemetry.record(0, 1, boundary=1)

    def test_same_source_different_boundary_fine(self):
        telemetry = CrossbarTelemetry(num_pipelines=2)
        telemetry.begin_tick()
        telemetry.record(0, 0, boundary=1)
        telemetry.record(0, 1, boundary=2)

    def test_fan_in_histogram(self):
        telemetry = CrossbarTelemetry(num_pipelines=4)
        telemetry.begin_tick()
        for src in range(4):
            telemetry.record(src, 0, boundary=3)
        telemetry.end_tick()
        assert telemetry.max_fan_in() == 4
        assert telemetry.fan_in_histogram[4] == 1

    def test_bad_port_rejected(self):
        telemetry = CrossbarTelemetry(num_pipelines=2)
        telemetry.begin_tick()
        with pytest.raises(SimulationError):
            telemetry.record(5, 0, boundary=1)
        with pytest.raises(SimulationError):
            telemetry.record(0, 5, boundary=1)

    def test_empty_summary(self):
        telemetry = CrossbarTelemetry(num_pipelines=2)
        assert telemetry.crossing_fraction() == 0.0
        assert telemetry.busiest_boundary() == (0, 0)


class TestTelemetryInEngine:
    def test_disabled_by_default(self, heavy_hitter_program):
        switch = MP5Switch(heavy_hitter_program, MP5Config(num_pipelines=2))
        assert switch.crossbar is None

    def test_constraints_hold_during_real_run(self, heavy_hitter_program):
        # The engine must never violate the hardware constraints the
        # telemetry asserts (one packet per input port per tick, fan-in
        # bounded by k).
        trace = line_rate_trace(600, 4, heavy_hitter_headers, seed=1)
        switch = MP5Switch(
            heavy_hitter_program, MP5Config(num_pipelines=4, record_crossbar=True)
        )
        switch.run(trace)  # SimulationError would fail the test
        assert switch.crossbar.max_fan_in() <= 4

    def test_crossings_match_steering_moves(self, heavy_hitter_program):
        trace = line_rate_trace(500, 4, heavy_hitter_headers, seed=2)
        switch = MP5Switch(
            heavy_hitter_program, MP5Config(num_pipelines=4, record_crossbar=True)
        )
        stats = switch.run(trace)
        assert switch.crossbar.total_crossings == stats.steering_moves

    def test_single_pipeline_never_crosses(self, heavy_hitter_program):
        trace = line_rate_trace(200, 1, heavy_hitter_headers, seed=0)
        switch = MP5Switch(
            heavy_hitter_program, MP5Config(num_pipelines=1, record_crossbar=True)
        )
        switch.run(trace)
        assert switch.crossbar.total_crossings == 0

    def test_busiest_boundary_is_before_stateful_stage(self):
        program = compile_program("heavy_hitter")
        trace = line_rate_trace(500, 4, heavy_hitter_headers, seed=3)
        switch = MP5Switch(
            program, MP5Config(num_pipelines=4, record_crossbar=True)
        )
        switch.run(trace)
        boundary, _count = switch.crossbar.busiest_boundary()
        assert boundary == program.arrays["counts"].stage
