"""Tests for Domino semantic analysis."""

import pytest

from repro.domino import (
    IntLiteral,
    RegisterRef,
    analyze,
    expr_reads_register,
    parse,
)
from repro.errors import DominoSemanticError


def check(body: str, regs: str = "", fields: str = "int a; int b;"):
    program = parse(
        f"struct Packet {{ {fields} }};\n{regs}\n"
        f"void func(struct Packet p) {{ {body} }}"
    )
    info = analyze(program)
    return program, info


class TestNameResolution:
    def test_scalar_register_read_normalized(self):
        program, _info = check("p.a = count;", regs="int count;")
        expr = program.body[0].value
        assert isinstance(expr, RegisterRef)
        assert expr.register == "count"
        assert isinstance(expr.index, IntLiteral)

    def test_scalar_register_write_normalized(self):
        program, _info = check("count = count + 1;", regs="int count;")
        target = program.body[0].target
        assert isinstance(target, RegisterRef)

    def test_local_variable_resolution(self):
        _program, info = check("int tmp = p.a; p.b = tmp;")
        assert "tmp" in info.local_names

    def test_undeclared_name_rejected(self):
        with pytest.raises(DominoSemanticError, match="undeclared"):
            check("p.a = ghost;")

    def test_unknown_packet_field_rejected(self):
        with pytest.raises(DominoSemanticError, match="unknown packet field"):
            check("p.nope = 1;")

    def test_unknown_register_rejected(self):
        with pytest.raises(DominoSemanticError, match="unknown register"):
            check("ghost[0] = 1;")

    def test_local_shadowing_register_rejected(self):
        with pytest.raises(DominoSemanticError, match="shadows"):
            check("int count = 1; p.a = count;", regs="int count;")

    def test_local_redeclaration_rejected(self):
        with pytest.raises(DominoSemanticError, match="redeclared"):
            check("int t = 1; int t = 2;")

    def test_array_read_without_index_rejected(self):
        with pytest.raises(DominoSemanticError, match="without index"):
            check("p.a = r;", regs="int r[4];")

    def test_array_write_without_index_rejected(self):
        with pytest.raises(DominoSemanticError, match="without index"):
            check("r = 1;", regs="int r[4];")

    def test_assignment_to_undeclared_rejected(self):
        with pytest.raises(DominoSemanticError, match="undeclared"):
            check("tmp = 1;")


class TestBranchRules:
    def test_local_decl_in_branch_rejected(self):
        with pytest.raises(DominoSemanticError, match="not allowed inside"):
            check("if (p.a) { int t = 1; }")

    def test_local_decl_in_else_rejected(self):
        with pytest.raises(DominoSemanticError, match="not allowed inside"):
            check("if (p.a) { p.b = 1; } else { int t = 1; }")

    def test_assignment_in_branch_allowed(self):
        check("int t = 0; if (p.a) { t = 1; } p.b = t;")


class TestFactGathering:
    def test_registers_used_collected(self):
        _program, info = check(
            "p.a = r1[0] + 1; r2[1] = 2;", regs="int r1[2]; int r2[2];"
        )
        assert info.registers_used == {"r1", "r2"}

    def test_fields_written_collected(self):
        _program, info = check("p.a = 1; p.b = 2;")
        assert info.fields_written == {"a", "b"}

    def test_stateful_index_detected(self):
        _program, info = check(
            "r1[r2[0] % 4] = 1;", regs="int r1[4]; int r2[1];"
        )
        assert "r1" in info.stateful_index_registers
        assert "r2" not in info.stateful_index_registers

    def test_stateless_index_not_flagged(self):
        _program, info = check("r[p.a % 4] = 1;", regs="int r[4];")
        assert info.stateful_index_registers == set()

    def test_builtin_arity_checked(self):
        with pytest.raises(DominoSemanticError, match="takes 2 arguments"):
            check("p.a = hash2(p.a);")

    def test_division_by_constant_zero_rejected(self):
        with pytest.raises(DominoSemanticError, match="zero"):
            check("p.a = p.b / 0;")

    def test_duplicate_register_rejected(self):
        with pytest.raises(DominoSemanticError, match="duplicate register"):
            check("p.a = 1;", regs="int r; int r;")


class TestExprReadsRegister:
    def test_plain_field_does_not_read(self):
        program, _ = check("p.a = p.b;")
        assert not expr_reads_register(program.body[0].value)

    def test_register_ref_reads(self):
        program, _ = check("p.a = r[0];", regs="int r[2];")
        assert expr_reads_register(program.body[0].value)

    def test_nested_read_detected(self):
        program, _ = check("p.a = (p.b + r[0]) * 2;", regs="int r[2];")
        assert expr_reads_register(program.body[0].value)

    def test_call_argument_read_detected(self):
        program, _ = check("p.a = hash2(r[0], 1);", regs="int r[2];")
        assert expr_reads_register(program.body[0].value)
