#!/usr/bin/env python3
"""Network sequencer (NOPaxos-style) — why ordering needs phantom packets.

Example 2 of the paper (§2.3.1): a switch stamps every packet with a
strictly increasing sequence number. On a multi-pipelined switch this is
the hardest case for correctness — every packet touches the same
register, and any deviation from arrival-order access produces duplicate
or permuted sequence numbers, which breaks the consensus protocols that
rely on the sequencer.

The script runs the sequencer on MP5 with and without D4 (phantom
packets) and on the re-circulating baseline, and verifies that only MP5
stamps packets 1..N in arrival order. It uses realistic bimodal packet
sizes, which is what lets a single-register program still hit line rate
(§4.4).

Run:  python examples/network_sequencer.py
"""

from repro.apps import SEQUENCER
from repro.baselines import RecircConfig, no_phantom_config, run_recirculation
from repro.mp5 import MP5Config, MP5Switch
from repro.workloads import clone_packets


def sequence_errors(packets) -> int:
    """Packets whose stamped seq differs from their arrival rank."""
    delivered = [p for p in packets if not p.dropped and p.egress_tick is not None]
    return sum(1 for p in delivered if p.headers.get("seq") != p.pkt_id + 1)


def main() -> None:
    num_pipelines = 4
    program = SEQUENCER.compile()
    trace = SEQUENCER.workload(8000, num_pipelines, seed=3)

    print("Design                 throughput  out-of-order stamps")
    print("---------------------  ----------  -------------------")

    for name, config in [
        ("MP5 (with D4)", MP5Config(num_pipelines=num_pipelines)),
        ("MP5 without D4", no_phantom_config(num_pipelines=num_pipelines)),
    ]:
        packets = clone_packets(trace)
        switch = MP5Switch(program, config)
        stats = switch.run(packets)
        print(
            f"{name:21s}  {stats.throughput_normalized():10.3f}  "
            f"{sequence_errors(packets):19d}"
        )

    packets = clone_packets(trace)
    stats, _switch = run_recirculation(
        program, packets, RecircConfig(num_pipelines=num_pipelines)
    )
    print(
        f"{'recirculation':21s}  {stats.throughput_normalized():10.3f}  "
        f"{sequence_errors(packets):19d}"
    )

    print(
        "\nOnly MP5 with preemptive order enforcement stamps every packet"
        "\nwith its arrival rank — the property a network sequencer exists"
        "\nto provide."
    )


if __name__ == "__main__":
    main()
