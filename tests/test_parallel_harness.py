"""The parallel sweep harness must be invisible in the results: any job
count produces exactly the serial output, in the same order."""

import pytest

from repro.harness.parallel import (
    default_jobs,
    parallel_map,
    resolve_jobs,
    shutdown_pool,
)
from repro.harness.realapps import RealAppSettings, run_figure8
from repro.harness.sensitivity import SweepSettings, sweep_pipelines


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(x)


@pytest.fixture(autouse=True)
def _teardown_pool():
    yield
    shutdown_pool()


def test_parallel_map_preserves_task_order():
    tasks = list(range(23))
    assert parallel_map(_square, tasks, jobs=3) == [x * x for x in tasks]


def test_parallel_map_serial_modes():
    assert parallel_map(_square, [1, 2, 3], jobs=None) == [1, 4, 9]
    assert parallel_map(_square, [1, 2, 3], jobs=1) == [1, 4, 9]
    assert parallel_map(_square, [7], jobs=8) == [49]  # single task: serial
    assert parallel_map(_square, [], jobs=8) == []


def test_resolve_jobs():
    assert resolve_jobs(None) == 1
    assert resolve_jobs(1) == 1
    assert resolve_jobs(5) == 5
    assert resolve_jobs(0) == default_jobs() >= 1
    with pytest.raises(ValueError):
        resolve_jobs(-2)


def test_worker_exception_propagates():
    with pytest.raises(ValueError):
        parallel_map(_boom, [1, 2, 3, 4], jobs=2)


def test_sweep_results_independent_of_jobs():
    settings = SweepSettings(num_packets=200, seeds=(0, 1))
    serial = sweep_pipelines(settings, values=(1, 2), jobs=1)
    parallel = sweep_pipelines(settings, values=(1, 2), jobs=2)
    assert serial == parallel


def test_figure8_results_independent_of_jobs():
    settings = RealAppSettings(num_packets=150, seeds=(0,))
    serial = run_figure8(pipeline_counts=(1, 2), settings=settings, jobs=1)
    parallel = run_figure8(pipeline_counts=(1, 2), settings=settings, jobs=2)
    assert serial == parallel
