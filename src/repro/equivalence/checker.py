"""Functional-equivalence checker (§2.2.1).

A multi-pipelined switch is functionally equivalent to the logical single
pipelined switch when, starting from the same initial processing state
and the same input packet stream:

* **register state** — every register array holds identical final values;
* **packet state** — every packet leaves with identical header contents.

The checker runs the same trace through the single-Banzai reference and
an MP5 configuration, compares both state components, and additionally
reports C1 (state-access-order) violations, which are the *mechanism*
behind any state divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..banzai.pipeline import BanzaiPipeline, RunResult
from ..compiler.codegen import CompiledProgram
from ..errors import EquivalenceError
from ..mp5.config import MP5Config
from ..mp5.packet import DataPacket
from ..mp5.stats import SwitchStats, c1_violations
from ..mp5.switch import MP5Switch
from ..workloads.traffic import clone_packets, reference_trace


@dataclass
class EquivalenceReport:
    """Structured outcome of one equivalence check."""

    register_equal: bool
    packet_equal: bool
    c1_violating_packets: int
    c1_fraction: float
    register_mismatches: Dict[str, List[Tuple[int, int, int]]] = field(
        default_factory=dict
    )
    packet_mismatches: List[Tuple[int, str, int, int]] = field(default_factory=list)
    dropped_packets: int = 0
    mp5_stats: Optional[SwitchStats] = None

    @property
    def equivalent(self) -> bool:
        return self.register_equal and self.packet_equal

    def raise_if_violated(self) -> None:
        if not self.equivalent:
            raise EquivalenceError(
                f"functional equivalence violated: "
                f"{len(self.register_mismatches)} register arrays and "
                f"{len(self.packet_mismatches)} packet fields differ",
                report=self,
            )

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"register state : {'EQUAL' if self.register_equal else 'DIFFERS'}",
            f"packet state   : {'EQUAL' if self.packet_equal else 'DIFFERS'}",
            f"C1 violations  : {self.c1_violating_packets} packets "
            f"({self.c1_fraction:.1%})",
            f"drops          : {self.dropped_packets}",
        ]
        for name, bad in self.register_mismatches.items():
            lines.append(f"  {name}: {len(bad)} slots differ, e.g. {bad[:3]}")
        for pkt_id, fld, want, got in self.packet_mismatches[:5]:
            lines.append(f"  pkt {pkt_id}.{fld}: reference={want} mp5={got}")
        return "\n".join(lines)


def compare_runs(
    program: CompiledProgram,
    reference: RunResult,
    mp5_switch: MP5Switch,
    mp5_packets: List[DataPacket],
) -> EquivalenceReport:
    """Compare an already-executed reference run and MP5 run."""
    ref_regs = reference.registers.snapshot()
    reg_mismatches: Dict[str, List[Tuple[int, int, int]]] = {}
    for name, want in ref_regs.items():
        got = mp5_switch.registers.get(name)
        if got is None:
            continue
        bad = [(i, a, b) for i, (a, b) in enumerate(zip(want, got)) if a != b]
        if bad:
            reg_mismatches[name] = bad

    ref_headers = reference.headers_by_id()
    pkt_mismatches: List[Tuple[int, str, int, int]] = []
    dropped = 0
    for pkt in mp5_packets:
        if pkt.dropped:
            dropped += 1
            continue
        want = ref_headers.get(pkt.pkt_id)
        if want is None:
            continue
        for fld in program.packet_fields:
            a = want.get(fld, 0)
            b = pkt.headers.get(fld, 0)
            if a != b:
                pkt_mismatches.append((pkt.pkt_id, fld, a, b))

    violations, fraction = c1_violations(
        reference.access_order,
        mp5_switch.stats.access_order,
        mp5_switch.stats.offered,
    )
    return EquivalenceReport(
        register_equal=not reg_mismatches,
        packet_equal=not pkt_mismatches,
        c1_violating_packets=violations,
        c1_fraction=fraction,
        register_mismatches=reg_mismatches,
        packet_mismatches=pkt_mismatches,
        dropped_packets=dropped,
        mp5_stats=mp5_switch.stats,
    )


@dataclass
class DegradedReport:
    """Outcome of a degraded-contract check (:mod:`repro.faults`).

    Under fault injection the full functional-equivalence contract is
    unattainable — dropped packets never produce output. The degraded
    contract instead asserts:

    * **survivor order (C1)** — for every state, the *surviving* (non-
      dropped) packets accessed it in arrival order. Packet ids are
      assigned in arrival order, so each per-state access sequence,
      filtered to survivors, must be ascending.
    * **drop accounting** — every dropped packet carries a reason, and
      the per-reason buckets sum to the drop total (no silent losses).
    * **conservation** — offered = egressed + dropped + in flight at the
      horizon (``unaccounted``; nonzero only when ``max_ticks`` cut the
      run short, e.g. under a never-ending stall).
    * **online invariants** — the streaming :class:`~repro.obs.monitor.
      InvariantMonitor` rode along and reported no structural invariant
      violations (``monitor_violations``; packet loss is excluded — drops
      under faults are expected and audited by the buckets above).
    """

    offered: int
    egressed: int
    dropped: int
    unaccounted: int
    drops_by_reason: Dict[str, int]
    order_violations: int
    violating_states: List[Tuple[str, Optional[int]]] = field(
        default_factory=list
    )
    stats: Optional[SwitchStats] = None
    health: Optional[str] = None
    monitor_violations: int = 0
    monitor_breakdown: Dict[str, int] = field(default_factory=dict)

    @property
    def accounting_ok(self) -> bool:
        return (
            sum(self.drops_by_reason.values()) == self.dropped
            and self.unaccounted >= 0
        )

    @property
    def contract_holds(self) -> bool:
        return (
            self.order_violations == 0
            and self.accounting_ok
            and self.monitor_violations == 0
        )

    def summary(self) -> str:
        lines = [
            f"degraded contract : {'HOLDS' if self.contract_holds else 'VIOLATED'}",
            f"offered           : {self.offered}",
            f"egressed          : {self.egressed}",
            f"dropped           : {self.dropped} {self.drops_by_reason}",
            f"in flight at end  : {self.unaccounted}",
            f"survivor C1       : {self.order_violations} out-of-order "
            f"accesses across {len(self.violating_states)} states",
        ]
        if self.health is not None:
            lines.append(
                f"online monitor    : {self.health} "
                f"({self.monitor_violations} invariant violations"
                + (
                    f" {self.monitor_breakdown}"
                    if self.monitor_breakdown
                    else ""
                )
                + ")"
            )
        for key in self.violating_states[:5]:
            lines.append(f"  out of order: {key}")
        return "\n".join(lines)

    def raise_if_violated(self) -> None:
        if not self.contract_holds:
            raise EquivalenceError(
                "degraded contract violated:\n" + self.summary(), report=self
            )


def check_degraded(
    program: CompiledProgram,
    trace: List[DataPacket],
    config: Optional[MP5Config] = None,
    faults=None,
    max_ticks: Optional[int] = None,
    engine: str = "fast",
    monitor: bool = True,
) -> DegradedReport:
    """Run ``trace`` under a fault schedule and audit the degraded
    contract (survivor C1 + drop accounting; see :class:`DegradedReport`).

    ``engine`` selects ``"fast"`` (:class:`~repro.mp5.switch.MP5Switch`)
    or ``"reference"`` (the dense engine) — the differential fault tests
    run both and additionally require identical stats/registers/events.
    With ``monitor`` (default) an :class:`~repro.obs.monitor.
    InvariantMonitor` streams alongside the run and its verdict feeds
    ``contract_holds`` — the post-hoc audit and the online checks must
    agree.
    """
    from ..mp5.reference import ReferenceSwitch  # cycle-free late import
    from ..obs.monitor import InvariantMonitor

    config = config or MP5Config()
    packets = clone_packets(trace)
    switch_cls = {"fast": MP5Switch, "reference": ReferenceSwitch}.get(engine)
    if switch_cls is None:
        raise EquivalenceError(f"unknown engine {engine!r}")
    switch = switch_cls(program, config)
    if faults is not None:
        switch.attach_faults(faults)
    live_monitor = InvariantMonitor() if monitor else None
    if live_monitor is not None:
        switch.attach_observability(monitor=live_monitor)
    stats = switch.run(packets, max_ticks=max_ticks, record_access_order=True)

    dropped_ids = {pkt.pkt_id for pkt in packets if pkt.dropped}
    violations = 0
    violating: List[Tuple[str, Optional[int]]] = []
    for key, order in stats.access_order.items():
        high = -1
        bad = 0
        for pkt_id in order:
            if pkt_id in dropped_ids:
                continue
            if pkt_id < high:
                bad += 1
            else:
                high = pkt_id
        if bad:
            violations += bad
            violating.append(key)
    health = None
    monitor_violations = 0
    monitor_breakdown: Dict[str, int] = {}
    if live_monitor is not None:
        health = live_monitor.health_report().verdict
        monitor_violations = live_monitor.invariant_violations()
        monitor_breakdown = {
            name: count
            for name, count in sorted(live_monitor.violations.items())
            if name != "lossless_delivery"
        }
    return DegradedReport(
        offered=stats.offered,
        egressed=stats.egressed,
        dropped=stats.dropped,
        unaccounted=stats.offered - stats.egressed - stats.dropped,
        drops_by_reason=dict(stats.drops_by_reason),
        order_violations=violations,
        violating_states=sorted(violating),
        stats=stats,
        health=health,
        monitor_violations=monitor_violations,
        monitor_breakdown=monitor_breakdown,
    )


def check_equivalence(
    program: CompiledProgram,
    trace: List[DataPacket],
    config: Optional[MP5Config] = None,
    max_ticks: Optional[int] = None,
) -> EquivalenceReport:
    """Run ``trace`` through both switches and compare final state.

    The reference single pipeline runs at k times the per-pipeline clock
    (§2.2), so MP5 arrival ticks are scaled accordingly for it.
    """
    config = config or MP5Config()
    reference = BanzaiPipeline(program).run(
        reference_trace(trace, config.num_pipelines), record_access_order=True
    )
    packets = clone_packets(trace)
    switch = MP5Switch(program, config)
    switch.run(packets, max_ticks=max_ticks, record_access_order=True)
    return compare_runs(program, reference, switch, packets)
