"""Traffic generation: line-rate packet traces for the simulators.

Time base: one tick is one MP5 pipeline clock, and a k-pipeline switch
serves at most k packets per tick. Minimum-size (64 B) packets arriving
at line rate therefore arrive k per tick; a packet of ``size`` bytes
contributes an inter-arrival gap of ``size / (64 * k)`` ticks. The paper
"ensures input packets always arrive at line rate" for the sensitivity
study and uses realistic size/flow distributions for the application
study — both are generators here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..errors import ConfigError
from ..mp5.packet import DataPacket
from .distributions import BimodalPacketSizes, EmpiricalCDF, web_search_flow_sizes

HeaderGen = Callable[[np.random.Generator, int], Dict[str, int]]

MIN_PACKET_BYTES = 64


def line_rate_trace(
    num_packets: int,
    num_pipelines: int,
    header_gen: HeaderGen,
    packet_size: int = MIN_PACKET_BYTES,
    num_ports: int = 64,
    seed: int = 0,
    utilization: float = 1.0,
) -> List[DataPacket]:
    """Fixed-size packets arriving at ``utilization`` of line rate.

    At 64 B and utilization 1.0 the aggregate arrival rate equals the
    switch's peak service rate (``num_pipelines`` packets/tick) — the
    worst case §4.3.1 stresses.
    """
    if num_packets < 1:
        raise ConfigError("num_packets must be >= 1")
    if packet_size < MIN_PACKET_BYTES:
        raise ConfigError(f"packet_size must be >= {MIN_PACKET_BYTES}")
    if not 0.0 < utilization <= 1.0:
        raise ConfigError("utilization must be in (0, 1]")
    rng = np.random.default_rng(seed)
    gap = packet_size / (MIN_PACKET_BYTES * num_pipelines * utilization)
    packets = []
    now = 0.0
    for i in range(num_packets):
        packets.append(
            DataPacket(
                pkt_id=i,
                arrival=now,
                port=i % num_ports,
                headers=header_gen(rng, i),
                size_bytes=packet_size,
            )
        )
        now += gap
    return packets


def variable_size_trace(
    num_packets: int,
    num_pipelines: int,
    header_gen: HeaderGen,
    sizes: Optional[BimodalPacketSizes] = None,
    num_ports: int = 64,
    seed: int = 0,
    utilization: float = 1.0,
) -> List[DataPacket]:
    """Line-rate trace with per-packet sizes from a bimodal distribution."""
    rng = np.random.default_rng(seed)
    sizes = sizes or BimodalPacketSizes()
    packets = []
    now = 0.0
    for i in range(num_packets):
        size = sizes.sample(rng)
        packets.append(
            DataPacket(
                pkt_id=i,
                arrival=now,
                port=i % num_ports,
                headers=header_gen(rng, i),
                size_bytes=size,
            )
        )
        now += size / (MIN_PACKET_BYTES * num_pipelines * utilization)
    return packets


# ----------------------------------------------------------------------
# Flow-structured traffic (web-search workload, §4.4)
# ----------------------------------------------------------------------


@dataclass
class Flow:
    """A five-tuple flow with a byte budget drawn from the flow-size CDF."""

    flow_id: int
    sport: int
    dport: int
    remaining_bytes: int
    sent_packets: int = 0


@dataclass
class FlowWorkload:
    """Interleaves packets of concurrently active heavy-tailed flows.

    Models the §4.4 setup: flow sizes from the web-search CDF, packet
    sizes bimodal, a bounded number of concurrently active flows (one
    per port by default). Every generated packet carries ``sport`` /
    ``dport`` fields; callers layer application-specific fields on top
    via ``extra_fields``.
    """

    num_pipelines: int
    num_ports: int = 64
    active_flows: int = 64
    sizes: BimodalPacketSizes = field(default_factory=BimodalPacketSizes)
    flow_cdf: EmpiricalCDF = field(default_factory=web_search_flow_sizes)
    seed: int = 0
    utilization: float = 1.0
    extra_fields: Optional[Callable[[np.random.Generator, DataPacket], Dict[str, int]]] = None

    def generate(self, num_packets: int) -> List[DataPacket]:
        """Produce ``num_packets`` flow-structured packets."""
        rng = np.random.default_rng(self.seed)
        flows: List[Flow] = []
        next_flow_id = 0

        def new_flow() -> Flow:
            nonlocal next_flow_id
            flow = Flow(
                flow_id=next_flow_id,
                sport=int(rng.integers(1024, 65536)),
                dport=int(rng.integers(1, 1024)),
                remaining_bytes=max(
                    MIN_PACKET_BYTES, int(self.flow_cdf.sample(rng))
                ),
            )
            next_flow_id += 1
            return flow

        while len(flows) < self.active_flows:
            flows.append(new_flow())

        packets: List[DataPacket] = []
        now = 0.0
        for i in range(num_packets):
            slot = int(rng.integers(0, len(flows)))
            flow = flows[slot]
            size = min(self.sizes.sample(rng), max(flow.remaining_bytes, MIN_PACKET_BYTES))
            size = max(size, MIN_PACKET_BYTES)
            headers = {
                "sport": flow.sport,
                "dport": flow.dport,
            }
            pkt = DataPacket(
                pkt_id=i,
                arrival=now,
                port=flow.flow_id % self.num_ports,
                headers=headers,
                size_bytes=size,
                flow_id=flow.flow_id,
            )
            if self.extra_fields is not None:
                pkt.headers.update(self.extra_fields(rng, pkt))
            packets.append(pkt)
            now += size / (MIN_PACKET_BYTES * self.num_pipelines * self.utilization)
            flow.remaining_bytes -= size
            flow.sent_packets += 1
            if flow.remaining_bytes <= 0:
                flows[slot] = new_flow()
        return packets


def reference_trace(packets: List[DataPacket], num_pipelines: int):
    """Convert an MP5 trace to the single-pipeline reference time base.

    The logical single pipeline runs at k times the per-pipeline clock,
    so its cycle count for the same wall-clock interval is k times the
    MP5 tick count.
    """
    return [
        (pkt.arrival * num_pipelines, pkt.port, dict(pkt.headers))
        for pkt in packets
    ]


def clone_packets(packets: List[DataPacket]) -> List[DataPacket]:
    """Deep-enough copy for feeding the same trace to a second simulator."""
    return [
        DataPacket(
            pkt_id=p.pkt_id,
            arrival=p.arrival,
            port=p.port,
            headers=dict(p.headers),
            size_bytes=p.size_bytes,
            flow_id=p.flow_id,
        )
        for p in packets
    ]
