"""Baseline switch designs compared against MP5 in §4.3.

* :func:`make_single_pipeline_state_switch` — the naive D1-only design:
  every register array (and hence every stateful packet) mapped to one
  pipeline (§3.1, Challenge #1).
* :func:`static_shard_config` — MP5 with compile-time random sharding and
  no runtime remapping (the D2 ablation).
* :func:`no_phantom_config` — MP5 without preemptive order enforcement
  (the D4 ablation; counts C1 violations).
* :class:`RecirculationSwitch` — a current-generation multi-pipelined
  switch (§2.3): static port-to-pipeline mapping, static sharding, and
  packet re-circulation to reach state in other pipelines.
* ``MP5Config.ideal()`` (in :mod:`repro.mp5`) — the ideal-MP5 baseline
  with per-index queues and LPT repacking.
"""

from .recirculation import RecircConfig, RecirculationSwitch, run_recirculation
from .variants import (
    make_single_pipeline_state_switch,
    no_phantom_config,
    run_single_pipeline_state,
    static_shard_config,
)

__all__ = [
    "RecircConfig",
    "RecirculationSwitch",
    "make_single_pipeline_state_switch",
    "no_phantom_config",
    "run_recirculation",
    "run_single_pipeline_state",
    "static_shard_config",
]
