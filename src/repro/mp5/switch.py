"""The MP5 multi-pipeline switch simulator (§3.2–§3.4).

Architecture per Figure 4: *k* identical feed-forward pipelines, a
crossbar between consecutive stages (D3), a physically separate phantom
channel (D4), and per-stage groups of k FIFOs. Every pipeline runs the
same compiled program (D1); register indexes are dynamically sharded
across pipelines (D2) under the Figure 6 heuristic.

Time model: one tick = one pipeline clock. Each pipeline starts at most
one packet per tick, so aggregate capacity is k packets/tick — the line
rate for minimum-size packets. Within a tick the engine:

1. delivers phantom packets scheduled for this tick;
2. injects arrivals (uniform spray across pipelines), executing the
   address-resolution stage: indexes/guards are evaluated preemptively,
   accesses planned, destination pipelines looked up in the
   index-to-pipeline map, phantoms emitted (in arrival order, preserving
   runtime Invariant 1);
3. moves every in-flight packet one hop: egress from the last stage,
   *insert* into the destination FIFO when the next stage holds one of
   the packet's planned accesses (steering across the crossbar), or a
   linear through-move otherwise — through (stateless-at-that-stage)
   packets take priority over queued stateful packets, which preserves
   runtime Invariant 2;
4. pops from each stateful stage whose service slot is free — a phantom
   at the logical FIFO head blocks the pop (order enforcement);
5. services every newly occupied slot (executes the stage's atom);
6. every ``remap_period`` ticks, runs the dynamic sharding remap and
   resets the access counters.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from ..compiler.codegen import CompiledProgram
from ..compiler.tac import Const, TacEvaluator
from ..domino.builtins import hash2
from ..errors import ConfigError
from .config import MP5Config
from .crossbar import CrossbarTelemetry
from .fifo import IdealOrderBuffer, StageFifoGroup
from .packet import DataPacket, PhantomPacket, StateAccess
from .sharding import ShardingRuntime
from .stats import SwitchStats

FLOW_ORDER_ARRAY = "__flow_order__"

TraceEntry = Union[DataPacket, Tuple[float, int, Dict[str, int]]]


class MP5Switch:
    """Simulates one MP5 switch running one compiled program."""

    def __init__(self, program: CompiledProgram, config: Optional[MP5Config] = None):
        self.program = program
        self.config = config or MP5Config()
        cfg = self.config

        self.depth = max(cfg.pipeline_depth, program.stage_count)
        self.registers: Dict[str, List[int]] = program.make_register_store()

        plans = program.arrays_in_stage_order()
        shard_specs = [(p.name, p.size, p.shardable, p.pin_key) for p in plans]
        self._flow_order_stage: Optional[int] = None
        if cfg.flow_order_field is not None:
            if program.stage_count >= self.depth:
                raise ConfigError(
                    "flow ordering needs a free final stage; increase "
                    "pipeline_depth beyond the program's stage count"
                )
            self._flow_order_stage = self.depth - 1
            shard_specs.append(
                (FLOW_ORDER_ARRAY, cfg.flow_order_size, True, FLOW_ORDER_ARRAY)
            )
            self.registers[FLOW_ORDER_ARRAY] = [0] * cfg.flow_order_size

        self.sharder = ShardingRuntime(
            shard_specs,
            cfg.num_pipelines,
            initial=cfg.initial_shard,
            rng=np.random.default_rng(cfg.seed),
        )

        if cfg.phantom_latency and plans:
            max_latency = min(p.stage for p in plans) - 1
            if cfg.phantom_latency > max_latency:
                raise ConfigError(
                    f"phantom_latency {cfg.phantom_latency} exceeds the slack "
                    f"before the first stateful stage ({max_latency}); phantoms "
                    f"would lose the race against their data packets"
                )

        # Stateful stage locations: per (pipeline, stage) a FIFO group.
        stateful_stages = {p.stage for p in plans}
        if self._flow_order_stage is not None:
            stateful_stages.add(self._flow_order_stage)
        buffer_cls = IdealOrderBuffer if cfg.ideal_queues else StageFifoGroup
        self.fifos: Dict[Tuple[int, int], object] = {
            (pipe, stage): buffer_cls(cfg.num_pipelines, cfg.fifo_capacity)
            for pipe in range(cfg.num_pipelines)
            for stage in stateful_stages
        }
        self.stateful_stages = stateful_stages

        # Per-pipeline service slots (None or the packet serviced this tick).
        self.occ: List[List[Optional[DataPacket]]] = [
            [None] * self.depth for _ in range(cfg.num_pipelines)
        ]
        self._phantom_mail: Dict[int, List[Tuple[PhantomPacket, int]]] = {}
        self._fault_rng = (
            np.random.default_rng(cfg.seed + 0x5EED)
            if cfg.phantom_loss_rate > 0
            else None
        )
        self._spray_next = 0
        self.crossbar = (
            CrossbarTelemetry(cfg.num_pipelines) if cfg.record_crossbar else None
        )
        self.stats = SwitchStats()
        self.tick = 0
        self._live = 0  # packets injected and not yet egressed/dropped
        self._record_access_order = False

        # Plans grouped by stage for resolution-time access planning.
        self._plans_by_stage: List[Tuple[int, List]] = []
        by_stage: Dict[int, List] = {}
        for plan in plans:
            by_stage.setdefault(plan.stage, []).append(plan)
        self._plans_by_stage = sorted(by_stage.items())

        self._stage_instrs = [
            stage.instrs if idx < program.stage_count else []
            for idx, stage in enumerate(program.stages)
        ] + [[] for _ in range(self.depth - program.stage_count)]
        if cfg.jit:
            compiled = program.jit_stage_functions()
            self._stage_fns = list(compiled) + [None] * (
                self.depth - len(compiled)
            )
        else:
            self._stage_fns = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(
        self,
        trace: Iterable[TraceEntry],
        max_ticks: Optional[int] = None,
        record_access_order: bool = False,
    ) -> SwitchStats:
        """Drive a packet trace to completion and return run statistics.

        ``trace`` entries are :class:`DataPacket` objects or
        ``(arrival_tick, port, headers)`` tuples. Arrival ticks are in
        MP5 pipeline clocks; at minimum packet size the line rate is
        ``num_pipelines`` packets per tick.
        """
        self._record_access_order = record_access_order
        packets = [self._coerce(i, entry) for i, entry in enumerate(trace)]
        packets.sort(key=lambda p: (p.arrival, p.port, p.pkt_id))
        for seq, pkt in enumerate(packets):
            pkt.pkt_id = seq  # arrival-ordered ids, the C1 reference order
        self.stats.offered = len(packets)
        self.stats.arrival_ticks = [p.arrival for p in packets]

        pending = deque(packets)
        while pending or self._live > 0:
            if max_ticks is not None and self.tick >= max_ticks:
                break
            self._step(pending)
        self.stats.ticks = self.tick
        return self.stats

    # ------------------------------------------------------------------
    # One tick
    # ------------------------------------------------------------------

    def _step(self, pending: Deque[DataPacket]) -> None:
        cfg = self.config
        tick = self.tick

        # (1) Phantom deliveries scheduled for this tick.
        for phantom, fifo_id in self._phantom_mail.pop(tick, ()):  # noqa: B020
            self._deliver_phantom(phantom, fifo_id)

        # (2) Injections: spray arrivals across pipelines. Packets enter
        # strictly in arrival order (ties broken by port id, §2.2.1) so
        # that phantom generation order equals arrival order — the
        # property Invariant 1 turns into per-state FIFO order.
        injected = 0
        while (
            pending
            and pending[0].arrival <= tick
            and injected < cfg.num_pipelines
        ):
            pipe = self._choose_entry_pipe(pending[0])
            # All stage-0 slots vacate every tick, but guard anyway.
            probed = 0
            while self.occ[pipe][0] is not None and probed < cfg.num_pipelines:
                pipe = (pipe + 1) % cfg.num_pipelines
                probed += 1
            if self.occ[pipe][0] is not None:
                break
            self._inject(pending.popleft(), pipe)
            self._spray_next = (pipe + 1) % cfg.num_pipelines
            injected += 1

        # (3) Movement using the current occupancy snapshot.
        new_occ: List[List[Optional[DataPacket]]] = [
            [None] * self.depth for _ in range(cfg.num_pipelines)
        ]
        last = self.depth - 1
        if self.crossbar is not None:
            self.crossbar.begin_tick()
        for pipe in range(cfg.num_pipelines):
            row = self.occ[pipe]
            for stage in range(self.depth):
                pkt = row[stage]
                if pkt is None:
                    continue
                if stage == last:
                    self._egress(pkt)
                    continue
                access = pkt.access_at_stage(stage + 1)
                if access is None:
                    if self.crossbar is not None:
                        self.crossbar.record(pipe, pipe, stage + 1)
                    new_occ[pipe][stage + 1] = pkt
                    continue
                dest = access.pipeline
                if self.crossbar is not None:
                    self.crossbar.record(pipe, dest, stage + 1)
                if dest != pipe:
                    self.stats.steering_moves += 1
                if cfg.enable_phantoms:
                    fifo = self.fifos[(dest, stage + 1)]
                    if (
                        cfg.ecn_threshold is not None
                        and not pkt.ecn_marked
                        and fifo.data_occupancy() >= cfg.ecn_threshold
                    ):
                        # §3.4: mark packets once the queue crosses the
                        # threshold, giving senders early backpressure.
                        pkt.ecn_marked = True
                        self.stats.ecn_marked += 1
                    ok = fifo.insert(pkt, tick)
                    if not ok:
                        self._drop(pkt, "no_phantom")
                else:
                    ok = self.fifos[(dest, stage + 1)].push(pkt, pipe, tick)
                    if not ok:
                        self._drop(pkt, "fifo_full")

        if self.crossbar is not None:
            self.crossbar.end_tick()

        # (4) Pops: fill free slots of stateful stages; through packets
        # keep priority unless a queued packet is starving.
        for (pipe, stage), fifo in self.fifos.items():
            slot = new_occ[pipe][stage]
            if slot is not None:
                if cfg.starvation_threshold is not None:
                    age = fifo.head_data_age(tick)
                    if age is not None and age > cfg.starvation_threshold:
                        # Drop the stateless through packet in favor of the
                        # starving stateful one (§3.4) — stateless packets
                        # are dropped, never queued, so Invariant 2 holds.
                        self._drop(slot, "starvation_preemption")
                        self.stats.drops_starvation += 1
                        new_occ[pipe][stage] = None
                    else:
                        continue
                else:
                    continue
            popped = fifo.pop()
            if popped is not None:
                new_occ[pipe][stage] = popped

        # (5) Service every newly occupied slot (stage 0 was serviced at
        # injection time — it runs the resolution logic).
        for pipe in range(cfg.num_pipelines):
            row = new_occ[pipe]
            for stage in range(1, self.depth):
                pkt = row[stage]
                if pkt is not None:
                    self._service(pkt, stage)

        self.occ = new_occ

        # (6) Background dynamic sharding.
        if (
            cfg.remap_algorithm != "none"
            and tick
            and tick % cfg.remap_period == 0
        ):
            self.stats.remap_moves += self.sharder.end_epoch(cfg.remap_algorithm)

        # Queue-depth telemetry (data packets only, matching §4.4's
        # "maximum number of packets queued in any pipeline stage").
        for key, fifo in self.fifos.items():
            depth = fifo.data_occupancy()
            if depth > self.stats.max_queue_depth:
                self.stats.max_queue_depth = depth
            prev = self.stats.per_stage_peak_queue.get(key, 0)
            if depth > prev:
                self.stats.per_stage_peak_queue[key] = depth

        self.tick += 1

    # ------------------------------------------------------------------
    # Packet lifecycle
    # ------------------------------------------------------------------

    def _coerce(self, i: int, entry: TraceEntry) -> DataPacket:
        if isinstance(entry, DataPacket):
            return entry
        arrival, port, headers = entry
        return DataPacket(pkt_id=i, arrival=arrival, port=port, headers=dict(headers))

    def _run_resolution(self, headers, registers, env):
        """Execute the stage-0 (address resolution) program against the
        given state and return an operand-value reader."""
        if self._stage_fns is not None:
            fn = self._stage_fns[0]
            if fn is not None:
                fn(headers, registers, env, None)

            def value(operand):
                if isinstance(operand, Const):
                    return operand.value
                return env[operand.name]

            return value
        evaluator = TacEvaluator(headers, registers, env)
        evaluator.run(self._stage_instrs[0])
        return evaluator.value

    def _choose_entry_pipe(self, pkt: DataPacket) -> int:
        """Entry pipeline per the spray policy (§3.1 D1 or the affinity
        extension). Affinity peeks at the resolution result: the ingress
        can evaluate the same stateless logic before the demux."""
        if self.config.spray_policy != "affinity":
            return self._spray_next
        value = self._run_resolution(
            dict(pkt.headers), self.registers, dict(pkt.env)
        )
        for _stage, plans in self._plans_by_stage:
            plan = plans[0]
            if len(plans) == 1:
                if plan.guard_operand is not None and plan.guard_resolvable:
                    if not value(plan.guard_operand):
                        continue
                if plan.index_operand is not None and plan.shardable:
                    index = value(plan.index_operand) % plan.size
                else:
                    index = None
            else:
                index = None
            return self.sharder.lookup(plan.name, index)
        return self._spray_next

    def _inject(self, pkt: DataPacket, pipe: int) -> None:
        """Address-resolution stage: plan accesses, emit phantoms."""
        cfg = self.config
        pkt.entry_pipeline = pipe
        pkt.entry_tick = self.tick
        self.occ[pipe][0] = pkt
        self._live += 1

        value = self._run_resolution(pkt.headers, self.registers, pkt.env)

        accesses: List[StateAccess] = []
        for stage, plans in self._plans_by_stage:
            if len(plans) == 1:
                plan = plans[0]
                if plan.guard_operand is not None and plan.guard_resolvable:
                    if not value(plan.guard_operand):
                        continue  # resolved: this packet never touches it
                if plan.index_operand is not None and plan.shardable:
                    index = value(plan.index_operand) % plan.size
                else:
                    index = None
                dest = self.sharder.note_resolved(plan.name, index)
                accesses.append(
                    StateAccess(
                        array=plan.name,
                        stage=stage,
                        pipeline=dest,
                        index=index,
                        conservative=plan.conservative_phantom,
                    )
                )
            else:
                # Co-staged (fused or budget-pinned) arrays share one
                # pipeline; one stage-level access/phantom covers them.
                dest = self.sharder.note_resolved(plans[0].name, None)
                accesses.append(
                    StateAccess(
                        array="+".join(p.name for p in plans),
                        stage=stage,
                        pipeline=dest,
                        index=None,
                        conservative=any(p.conservative_phantom for p in plans),
                    )
                )
        if self._flow_order_stage is not None:
            flow_key = pkt.headers.get(cfg.flow_order_field, 0)
            if pkt.flow_id is None:
                pkt.flow_id = flow_key
            index = hash2(flow_key, 0x5F0E) % cfg.flow_order_size
            dest = self.sharder.note_resolved(FLOW_ORDER_ARRAY, index)
            accesses.append(
                StateAccess(
                    array=FLOW_ORDER_ARRAY,
                    stage=self._flow_order_stage,
                    pipeline=dest,
                    index=index,
                )
            )
        pkt.accesses = accesses

        if cfg.enable_phantoms:
            for access in accesses:
                phantom = PhantomPacket(
                    pkt_id=pkt.pkt_id,
                    array=access.array,
                    index=access.index,
                    pipeline=access.pipeline,
                    stage=access.stage,
                    created_tick=self.tick,
                )
                self.stats.phantoms_generated += 1
                if cfg.phantom_latency == 0:
                    if not self._deliver_phantom(phantom, pipe):
                        self._drop(pkt, "phantom_fifo_full")
                        self.occ[pipe][0] = None
                        return
                else:
                    self._phantom_mail.setdefault(
                        self.tick + cfg.phantom_latency, []
                    ).append((phantom, pipe))

    def _deliver_phantom(self, phantom: PhantomPacket, fifo_id: int) -> bool:
        if (
            self._fault_rng is not None
            and self._fault_rng.random() < self.config.phantom_loss_rate
        ):
            # Fault injection (§3.5.1): the phantom never arrives, so the
            # data packet will find no placeholder and be dropped — the
            # exact packet-loss mode whose equivalence consequences the
            # paper analyzes.
            self.stats.drops_fifo_full += 1
            return True  # generation succeeded; the channel lost it
        fifo = self.fifos[(phantom.pipeline, phantom.stage)]
        ok = fifo.push(phantom, fifo_id, self.tick)
        if not ok:
            self.stats.drops_fifo_full += 1
        return ok

    def _service(self, pkt: DataPacket, stage: int) -> None:
        """Execute stage ``stage`` for ``pkt`` (it occupies the slot now)."""
        instrs = self._stage_instrs[stage]
        accessed_arrays: List[str] = []
        if self._record_access_order:
            pkt_id = pkt.pkt_id

            def logger(reg, idx, kind, _pid=pkt_id):
                accessed_arrays.append(reg)
                order = self.stats.access_order.setdefault((reg, idx), [])
                if not order or order[-1] != _pid:
                    order.append(_pid)

        else:

            def logger(reg, idx, kind):
                accessed_arrays.append(reg)

        if instrs:
            if self._stage_fns is not None:
                fn = self._stage_fns[stage]
                if fn is not None:
                    fn(pkt.headers, self.registers, pkt.env, logger)
            else:
                evaluator = TacEvaluator(
                    pkt.headers, self.registers, pkt.env, on_access=logger
                )
                evaluator.run(instrs)

        access = pkt.access_at_stage(stage)
        if access is not None:
            access.completed = True
            if access.array != FLOW_ORDER_ARRAY and "+" not in access.array:
                self.sharder.note_completed(access.array, access.index)
                if access.conservative and access.array not in accessed_arrays:
                    # The preemptively generated phantom was for a branch
                    # not taken: one wasted slot (§3.3).
                    self.stats.wasted_slots += 1

    def _egress(self, pkt: DataPacket) -> None:
        pkt.egress_tick = self.tick
        self._live -= 1
        self.stats.egressed += 1
        self.stats.egress_ticks.append(self.tick)
        self.stats.latencies.append(self.tick - pkt.arrival)
        if pkt.flow_id is not None:
            self.stats.flow_egress.setdefault(pkt.flow_id, []).append(pkt.pkt_id)

    def _drop(self, pkt: DataPacket, reason: str) -> None:
        pkt.dropped = True
        pkt.drop_reason = reason
        self._live -= 1
        self.stats.dropped += 1
        if reason == "no_phantom":
            self.stats.drops_no_phantom += 1
        # Retire this packet's outstanding phantoms so they stop blocking
        # their FIFOs, and release the in-flight counters.
        for access in pkt.accesses:
            if access.completed:
                continue
            access.completed = True
            fifo = self.fifos.get((access.pipeline, access.stage))
            if fifo is not None:
                fifo.expire_phantom(pkt.pkt_id)
            if access.array != FLOW_ORDER_ARRAY and "+" not in access.array:
                self.sharder.note_completed(access.array, access.index)


def run_mp5(
    program: CompiledProgram,
    trace: Iterable[TraceEntry],
    config: Optional[MP5Config] = None,
    max_ticks: Optional[int] = None,
    record_access_order: bool = False,
) -> Tuple[SwitchStats, Dict[str, List[int]]]:
    """Convenience: run a trace through a fresh switch; returns the run
    statistics and the final register state."""
    switch = MP5Switch(program, config)
    stats = switch.run(
        trace, max_ticks=max_ticks, record_access_order=record_access_order
    )
    registers = {
        name: values
        for name, values in switch.registers.items()
        if name != FLOW_ORDER_ARRAY
    }
    return stats, registers
