#!/usr/bin/env python3
"""Flowlet switching under realistic datacenter traffic (Figure 8a).

Flowlet load balancing [30] re-picks a flow's next hop whenever the
inter-packet gap exceeds the flowlet timeout, keeping packets within a
burst on one path. The per-flow state (last arrival time, saved hop) is
a hashed register table — exactly the shardable shape MP5's compiler
resolves preemptively.

This script compiles the flowlet program, shows the compiled stage
layout, runs it over web-search traffic with bimodal packet sizes across
1/2/4/8 pipelines, and checks two properties:

* line-rate throughput at every pipeline count (Figure 8a), and
* path-stability: consecutive packets of a flow inside one flowlet leave
  with the same next hop (functional correctness at the application
  level, not just register equality).

Run:  python examples/flowlet_load_balancing.py
"""

from collections import defaultdict

from repro.apps import FLOWLET
from repro.mp5 import MP5Config, MP5Switch
from repro.workloads import clone_packets


def flowlet_breaks(packets, timeout: int = 5) -> int:
    """Count packets that changed next hop *within* a flowlet window —
    these would indicate corrupted per-flow state."""
    by_flow = defaultdict(list)
    for pkt in packets:
        if pkt.dropped or pkt.egress_tick is None:
            continue
        by_flow[pkt.flow_id].append(pkt)
    violations = 0
    for flow_packets in by_flow.values():
        flow_packets.sort(key=lambda p: p.pkt_id)
        for prev, cur in zip(flow_packets, flow_packets[1:]):
            gap = cur.headers["arrival"] - prev.headers["arrival"]
            if gap <= timeout and cur.headers["next_hop"] != prev.headers["next_hop"]:
                violations += 1
    return violations


def main() -> None:
    program = FLOWLET.compile()
    print(program.describe())
    print()
    print("pipelines  throughput  max queue  in-flowlet hop changes")
    print("---------  ----------  ---------  ----------------------")
    for k in (1, 2, 4, 8):
        trace = FLOWLET.workload(8000, k, seed=11)
        packets = clone_packets(trace)
        switch = MP5Switch(program, MP5Config(num_pipelines=k))
        stats = switch.run(packets)
        print(
            f"{k:9d}  {stats.throughput_normalized():10.3f}  "
            f"{stats.max_queue_depth:9d}  {flowlet_breaks(packets):22d}"
        )
    print("\nLine rate at every pipeline count with zero in-flowlet hop")
    print("changes — the Figure 8a result.")


if __name__ == "__main__":
    main()
