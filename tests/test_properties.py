"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compiler import compile_program
from repro.domino.builtins import MASK32, hash_tuple
from repro.equivalence import check_equivalence
from repro.mp5 import (
    DataPacket,
    MP5Config,
    PhantomPacket,
    ShardingRuntime,
    StageFifoGroup,
)
from repro.workloads import EmpiricalCDF, SkewedAccess, line_rate_trace

slow = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# ----------------------------------------------------------------------
# FIFO invariants
# ----------------------------------------------------------------------


@st.composite
def fifo_script(draw):
    """A random interleaving: phantoms pushed in id order, data packets
    inserted in a random order."""
    count = draw(st.integers(min_value=1, max_value=12))
    order = draw(st.permutations(list(range(count))))
    buffers = draw(st.integers(min_value=1, max_value=4))
    return count, list(order), buffers


@given(fifo_script())
@slow
def test_fifo_pops_follow_phantom_order(script):
    """Whatever order data packets arrive in, pops follow the phantom
    (arrival) order — the heart of D4."""
    count, insert_order, buffers = script
    fifo = StageFifoGroup(num_pipelines=buffers)
    for i in range(count):
        fifo.push(
            PhantomPacket(
                pkt_id=i, array="r", index=0, pipeline=0, stage=1, created_tick=i
            ),
            fifo_id=i % buffers,
            tick=i,
        )
    popped = []
    inserted = 0
    while len(popped) < count:
        progressed = False
        if inserted < count:
            pkt_id = insert_order[inserted]
            assert fifo.insert(
                DataPacket(pkt_id=pkt_id, arrival=0.0, port=0, headers={}),
                tick=100 + inserted,
            )
            inserted += 1
            progressed = True
        while True:
            out = fifo.pop()
            if out is None:
                break
            popped.append(out.pkt_id)
            progressed = True
        assert progressed, "FIFO deadlocked"
    assert popped == list(range(count))


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.booleans()), min_size=1, max_size=30
    )
)
@slow
def test_fifo_occupancy_never_negative_and_bounded(ops):
    """Random push/pop sequences keep occupancy consistent."""
    fifo = StageFifoGroup(num_pipelines=4, capacity=4)
    pushed = 0
    next_id = 0
    for fifo_id, do_pop in ops:
        if do_pop:
            out = fifo.pop()
            if out is not None:
                pushed -= 1
        else:
            ok = fifo.push(
                DataPacket(pkt_id=next_id, arrival=0.0, port=0, headers={}),
                fifo_id,
                tick=next_id,
            )
            next_id += 1
            if ok:
                pushed += 1
    assert fifo.occupancy() == pushed
    assert 0 <= pushed <= 16


# ----------------------------------------------------------------------
# Sharding invariants
# ----------------------------------------------------------------------


@given(
    size=st.integers(min_value=1, max_value=64),
    k=st.integers(min_value=1, max_value=8),
    counts=st.lists(st.integers(0, 1000), min_size=1, max_size=64),
)
@slow
def test_remap_never_worsens_balance(size, k, counts):
    rt = ShardingRuntime([("r", size, True, "r")], k, rng=np.random.default_rng(0))
    state = rt.arrays["r"]
    for i, c in enumerate(counts[:size]):
        state.access_counts[i % size] += c

    def imbalance():
        loads = np.zeros(k, dtype=np.int64)
        np.add.at(loads, state.index_to_pipeline, state.access_counts)
        return int(loads.max() - loads.min())

    before = imbalance()
    rt.remap_heuristic("r")
    assert imbalance() <= before


@given(
    size=st.integers(min_value=1, max_value=64),
    k=st.integers(min_value=1, max_value=8),
)
@slow
def test_every_index_always_mapped_to_valid_pipeline(size, k):
    rt = ShardingRuntime(
        [("r", size, True, "r")], k, initial="random", rng=np.random.default_rng(1)
    )
    state = rt.arrays["r"]
    state.access_counts[:] = np.arange(size)
    rt.end_epoch("optimal")
    assert ((state.index_to_pipeline >= 0) & (state.index_to_pipeline < k)).all()


# ----------------------------------------------------------------------
# Distributions
# ----------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(st.integers(1, 10**6), st.integers(0, 1000)),
        min_size=2,
        max_size=10,
    ).map(
        lambda pts: sorted(
            {(v, p) for v, p in pts}, key=lambda x: (x[1], x[0])
        )
    )
)
@slow
def test_cdf_samples_stay_in_support(points):
    values = sorted(v for v, _p in points)
    probs = sorted(p for _v, p in points)
    if probs[0] == probs[-1]:
        return  # degenerate, cannot normalize
    norm = [
        (v, (p - probs[0]) / (probs[-1] - probs[0]))
        for v, p in zip(values, probs)
    ]
    cdf = EmpiricalCDF(norm)
    rng = np.random.default_rng(0)
    for _ in range(20):
        sample = cdf.sample(rng)
        assert values[0] <= sample <= values[-1]


@given(
    size=st.integers(min_value=1, max_value=200),
    seed=st.integers(min_value=0, max_value=1000),
)
@slow
def test_skewed_access_in_range(size, seed):
    sampler = SkewedAccess(size=size)
    rng = np.random.default_rng(seed)
    for _ in range(50):
        assert 0 <= sampler.sample(rng) < size


@given(st.lists(st.integers(-(2**31), 2**31 - 1), min_size=1, max_size=6))
def test_hash_tuple_range_and_determinism(values):
    h = hash_tuple(values)
    assert 0 <= h < 2**31
    assert h == hash_tuple(values)
    assert h == (h & MASK32)


# ----------------------------------------------------------------------
# End-to-end: equivalence over random traffic
# ----------------------------------------------------------------------


@given(
    seed=st.integers(min_value=0, max_value=10**6),
    k=st.sampled_from([2, 4]),
    spread=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=10, deadline=None)
def test_mp5_always_equivalent_on_heavy_hitter(seed, k, spread):
    """MP5 is functionally equivalent to the single pipeline for *any*
    traffic — randomized source populations and pipeline widths."""
    program = compile_program("heavy_hitter")
    trace = line_rate_trace(
        250,
        k,
        lambda rng, i: {"src_ip": int(rng.integers(0, spread)), "hot": 0},
        seed=seed,
    )
    report = check_equivalence(program, trace, MP5Config(num_pipelines=k))
    assert report.equivalent
    assert report.c1_violating_packets == 0


@given(
    seed=st.integers(min_value=0, max_value=10**6),
    mux_bias=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=10, deadline=None)
def test_mp5_always_equivalent_on_figure3(seed, mux_bias):
    program = compile_program("figure3")
    trace = line_rate_trace(
        200,
        2,
        lambda rng, i: {
            "h1": int(rng.integers(0, 4)),
            "h2": int(rng.integers(0, 4)),
            "h3": int(rng.integers(0, 4)),
            "mux": int(rng.random() < mux_bias),
            "val": 0,
        },
        seed=seed,
    )
    report = check_equivalence(program, trace, MP5Config(num_pipelines=2))
    assert report.equivalent


# ----------------------------------------------------------------------
# Interpreter vs JIT on raw operations
# ----------------------------------------------------------------------


@given(
    a=st.integers(-(2**31), 2**31 - 1),
    b=st.integers(-(2**31), 2**31 - 1),
    op=st.sampled_from(
        ["+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=",
         "&&", "||", "&", "|", "^", "<<", ">>"]
    ),
)
@settings(max_examples=200, deadline=None)
def test_jit_matches_interpreter_per_operator(a, b, op):
    """For every binary operator and random 32-bit operands, the compiled
    code computes exactly what the interpreter computes."""
    from repro.compiler.jit import compile_instrs
    from repro.compiler.tac import Const, OpKind, TacEvaluator, TacInstr, Temp

    instr = TacInstr(
        OpKind.BINARY, dest=Temp("r"), op=op, args=[Const(a), Const(b)]
    )
    interp = TacEvaluator({}, {})
    interp.run([instr])
    env = {}
    compile_instrs([instr], name="op")({}, {}, env, None)
    assert env["r"] == interp.env[Temp("r")], (op, a, b)
