"""Tests for the analytic ASIC cost models (Table 1, §4.2)."""

import pytest

from repro.asic import (
    BITS_PER_INDEX,
    PAPER_TABLE1,
    TARGET_FREQUENCY_GHZ,
    achievable_frequency_ghz,
    area_table,
    chip_area,
    chip_area_mm2,
    max_pipelines_at_1ghz,
    model_error_vs_paper,
    sram_overhead,
    sram_overhead_paper_example,
    timing_report,
)
from repro.errors import ConfigError


class TestAreaModel:
    def test_matches_paper_within_five_percent(self):
        errors = model_error_vs_paper()
        assert max(errors.values()) < 0.05

    def test_linear_in_stages(self):
        a4 = chip_area_mm2(4, 4)
        a8 = chip_area_mm2(4, 8)
        a16 = chip_area_mm2(4, 16)
        assert a8 == pytest.approx(2 * a4)
        assert a16 == pytest.approx(4 * a4)

    def test_superlinear_in_pipelines(self):
        # Doubling pipelines should roughly quadruple area (crossbar
        # dominated), definitely more than double it.
        a2 = chip_area_mm2(2, 8)
        a4 = chip_area_mm2(4, 8)
        a8 = chip_area_mm2(8, 8)
        assert a4 / a2 > 3.0
        assert a8 / a4 > 3.0

    def test_crossbar_dominates(self):
        breakdown = chip_area(8, 16)
        assert breakdown.crossbar_mm2 > breakdown.fifo_mm2 + breakdown.logic_mm2

    def test_overhead_small_vs_commercial_asic(self):
        # §4.2: 4 pipelines x 16 stages is 0.5-1% of a 300-700 mm^2 ASIC.
        breakdown = chip_area(4, 16)
        assert breakdown.overhead_fraction(300) < 0.012
        assert breakdown.overhead_fraction(700) > 0.004

    def test_area_table_covers_all_cells(self):
        table = area_table()
        assert set(table) == set(PAPER_TABLE1)

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigError):
            chip_area_mm2(0, 4)
        with pytest.raises(ConfigError):
            chip_area_mm2(4, 0)


class TestTimingModel:
    def test_all_table1_configs_meet_1ghz(self):
        for (k, s) in PAPER_TABLE1:
            assert timing_report(k, s).meets_1ghz, (k, s)

    def test_frequency_decreases_with_pipelines(self):
        freqs = [achievable_frequency_ghz(k, 16) for k in (2, 4, 8, 16, 32)]
        assert freqs == sorted(freqs, reverse=True)

    def test_scalability_limit_exists(self):
        # §3.5.3: crossbars eventually limit scaling.
        limit = max_pipelines_at_1ghz(stages=16)
        assert 8 <= limit < 1024

    def test_target_constant(self):
        assert TARGET_FREQUENCY_GHZ == 1.0

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigError):
            achievable_frequency_ghz(0, 4)


class TestSramModel:
    def test_bits_per_index(self):
        assert BITS_PER_INDEX == 30  # 6 map + 16 counter + 8 in-flight

    def test_paper_example_about_35kb(self):
        report = sram_overhead_paper_example()
        assert 33 <= report.kilobytes <= 38

    def test_overhead_nominal_vs_switch_sram(self):
        report = sram_overhead_paper_example()
        assert report.fraction_of_switch_sram() < 0.001

    def test_custom_register_sizes(self):
        report = sram_overhead([512, 512])
        assert report.total_indexes == 1024
        assert report.bits == 1024 * 30

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigError):
            sram_overhead([0])
