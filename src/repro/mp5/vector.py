"""Structure-of-arrays batch engine: the third MP5 engine.

:mod:`repro.mp5.switch` advances one Python packet at a time;
this engine advances whole *columns*. It exploits three structural
facts of the fault-free MP5 tick the differential suite already proves:

* **D1 homogeneity** — every pipeline runs the identical program, so a
  stage's stateless ALU work is data-parallel across packets and runs
  as one precompiled NumPy kernel (:mod:`repro.compiler.vjit`).
* **C1 / Invariant 1** — with unbounded FIFOs and phantom generation
  order equal to arrival order, each per-(pipeline, stage) FIFO group
  pops its members strictly in packet-id order, one per tick:
  ``pop[j] = max(pop[j-1] + 1, insert[j])`` — a vectorizable running
  maximum. Inter-stage transit times are deterministic (one stage per
  tick), so the whole timeline is computed per *epoch* (the span
  between two remap boundaries) without simulating individual ticks.
* **Packet Transactions' observation** — only the stateful atom
  updates must serialize. They run as a batched inner loop grouped by
  ``(array, index)``: rows touching distinct indices execute together
  in one kernel call (a *wave*); same-index rows execute in successive
  waves in exact arrival order.

The engine drives the *real* :class:`~repro.mp5.sharding.ShardingRuntime`
with batched counter updates, so remap decisions (heuristic and
optimal) are bit-identical to the scalar engines. Idle stretches never
cost anything — the epoch representation is inherently tick-compressed,
but remap boundaries inside idle stretches still execute (stale access
counters can still move indices), exactly like the idle-tick
compression of the scalar engines.

Exactness over generality: configurations the batch reduction cannot
represent (bounded FIFOs, phantom loss, ECN, starvation preemption,
ideal queues, affinity spray, resolvable access guards, write-only
register arrays, attached faults or observability sinks) make
:func:`run_mp5_vector` fall back to the fast engine — with a one-line
warning for faults/observability, silently for config shapes — so
``--engine vector`` is always safe. Supported runs produce
:class:`~repro.mp5.stats.SwitchStats` and final registers equal to both
scalar engines, byte-for-byte once serialized.
"""

from __future__ import annotations

import sys
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..compiler.jit import compile_instrs
from ..compiler.tac import Const, Temp
from ..compiler.vjit import compile_vector_stage
from ..domino.builtins import hash2
from ..errors import ConfigError
from .config import MP5Config
from .packet import DataPacket
from .stats import SwitchStats
from .switch import FLOW_ORDER_ARRAY, MP5Switch, run_mp5

_FAR = 1 << 62  # sentinel horizon: beyond any reachable tick


class VectorUnsupported(Exception):
    """The program or configuration needs the scalar engines."""


def config_fallback_reason(cfg: MP5Config) -> Optional[str]:
    """Why a config needs the fast engine; None when vector-capable."""
    if cfg.ideal_queues:
        return "ideal_queues"
    if not cfg.enable_phantoms:
        return "enable_phantoms=False"
    if cfg.fifo_capacity is not None:
        return "bounded fifo_capacity"
    if cfg.ecn_threshold is not None:
        return "ecn_threshold"
    if cfg.starvation_threshold is not None:
        return "starvation_threshold"
    if cfg.phantom_loss_rate > 0:
        return "phantom_loss_rate > 0"
    if cfg.record_crossbar:
        return "record_crossbar"
    if cfg.spray_policy != "roundrobin":
        return f"spray_policy={cfg.spray_policy!r}"
    return None


class _Group:
    """One (plan, pipeline) FIFO group: members in packet-id order."""

    __slots__ = ("members", "count", "ptr", "last_pop")

    def __init__(self, capacity: int):
        self.members = np.empty(capacity, dtype=np.int64)
        self.count = 0  # filled members (membership fixed at inject)
        self.ptr = 0  # members already popped
        self.last_pop = -1


class _VPlan:
    """One per-packet state access, in stage order."""

    __slots__ = (
        "stage",
        "base",
        "label",
        "size",
        "conservative",
        "multi",
        "has_index",
        "index_operand",
        "category",  # 'wave' | 'serial' | 'none'
        "is_flow",
    )

    def __init__(self, **kw):
        for key, value in kw.items():
            setattr(self, key, value)


class _RegView:
    """Scalar-JIT-compatible view of an int64 register column: reads
    come back as Python ints so builtin calls never overflow int64."""

    __slots__ = ("arr",)

    def __init__(self, arr: np.ndarray):
        self.arr = arr

    def __len__(self) -> int:
        return self.arr.shape[0]

    def __getitem__(self, i):
        return int(self.arr[i])

    def __setitem__(self, i, value) -> None:
        self.arr[i] = value


class VectorSwitch(MP5Switch):
    """Batch engine. Construction raises :class:`VectorUnsupported` for
    program shapes the epoch reduction cannot represent; the config
    gates of :func:`config_fallback_reason` are checked here too so
    direct users get the same contract as the CLI."""

    def __init__(self, program, config: Optional[MP5Config] = None):
        super().__init__(program, config)
        reason = config_fallback_reason(self.config)
        if reason is not None:
            raise VectorUnsupported(reason)
        self._build_vector_plan()

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def _build_vector_plan(self) -> None:
        depth = self.depth
        # Kernel compilation is deterministic in the program, so cache
        # it on the program object: sweeps construct a fresh switch per
        # run but reuse one compiled program across thousands of runs.
        cache = getattr(self.program, "_vector_kernel_cache", None)
        if cache is not None and len(cache[0]) == depth:
            self._vkernels, self._vserial_fns = cache
        else:
            self._vkernels = [
                compile_vector_stage(instrs, f"s{i}")
                for i, instrs in enumerate(self._stage_instrs)
            ]
            # Scalar fallbacks for serialized stages, independent of
            # cfg.jit (the vector engine always uses its own compilations).
            self._vserial_fns = [
                compile_instrs(instrs, f"vs{i}") if instrs else None
                for i, instrs in enumerate(self._stage_instrs)
            ]
            try:
                self.program._vector_kernel_cache = (
                    self._vkernels,
                    self._vserial_fns,
                )
            except AttributeError:
                pass
        kern0 = self._vkernels[0]
        if kern0 is not None and kern0.stateful:
            raise VectorUnsupported("stateful resolution stage")

        by_stage = dict(self._plans_by_stage)
        vplans: List[_VPlan] = []
        for (
            stage,
            base,
            guard_read,
            index_read,
            size,
            conservative,
            label,
            multi,
        ) in self._resolution_plans:
            if guard_read is not None:
                # A resolvable guard lets packets skip the stateful
                # stage entirely (through-transit + Invariant-2 slot
                # blocking) — the scalar engines model that; we don't.
                raise VectorUnsupported("resolvable access guard")
            group = by_stage[stage]
            kern = self._vkernels[stage]
            names_at = {p.name for p in group}
            for instr in kern.stateful if kern else ():
                if instr.reg not in names_at:
                    raise VectorUnsupported(
                        f"register {instr.reg!r} accessed outside its plan stage"
                    )
            has_index = index_read is not None
            plan0 = group[0]
            category = "none"
            if kern is not None:
                category = "serial"
                if has_index and not multi:
                    in_stage_defs = {
                        i.dest
                        for i in self._stage_instrs[stage]
                        if i.dest is not None
                    }
                    op = plan0.index_operand
                    uniform = isinstance(op, Temp) and op not in in_stage_defs
                    if uniform and all(
                        instr.reg == base and instr.args[0] == op
                        for instr in kern.stateful
                    ):
                        category = "wave"
            vplans.append(
                _VPlan(
                    stage=stage,
                    base=base,
                    label=label,
                    size=size,
                    conservative=conservative,
                    multi=multi,
                    has_index=has_index,
                    index_operand=plan0.index_operand if has_index else None,
                    category=category,
                    is_flow=False,
                )
            )
        # Stateful instructions at a stage with no plan: a write-only
        # array — it has no phantom/FIFO plan, so its service timing has
        # no batched representation.
        plan_stages = {p.stage for p in vplans}
        for stage in range(depth):
            kern = self._vkernels[stage]
            if kern is not None and kern.stateful and stage not in plan_stages:
                raise VectorUnsupported("write-only register array")
        if self._flow_order_stage is not None:
            vplans.append(
                _VPlan(
                    stage=self._flow_order_stage,
                    base=FLOW_ORDER_ARRAY,
                    label=FLOW_ORDER_ARRAY,
                    size=self.config.flow_order_size,
                    conservative=False,
                    multi=False,
                    has_index=True,
                    index_operand=None,
                    category="none",
                    is_flow=True,
                )
            )
            plan_stages.add(self._flow_order_stage)
        self._vplans = vplans

        # Live stateless stages a packet transits between accesses; the
        # fast engine services through packets there, so we must too.
        live = [
            u
            for u in range(1, depth)
            if self._vkernels[u] is not None and u not in plan_stages
        ]
        stages = [p.stage for p in vplans]
        if vplans:
            self._transit_after_inject = [u for u in live if u < stages[0]]
            self._transit_after = [
                [
                    u
                    for u in live
                    if stages[pi] < u
                    and (pi + 1 >= len(stages) or u < stages[pi + 1])
                ]
                for pi in range(len(stages))
            ]
        else:
            self._transit_after_inject = live
            self._transit_after = []

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------

    def run(
        self,
        trace: Iterable,
        max_ticks: Optional[int] = None,
        record_access_order: bool = False,
    ) -> SwitchStats:
        if self._ran:
            raise ConfigError(
                "MP5Switch.run was called twice on one instance; tick, "
                "statistics and FIFO state are not reusable — construct a "
                "fresh switch per run"
            )
        self._ran = True
        if record_access_order:
            raise VectorUnsupported("record_access_order")
        if (
            self.obs is not None
            or self._faults is not None
            or self._metrics is not None
            or self._profiler is not None
        ):
            raise VectorUnsupported("faults/observability attached")
        packets = [self._coerce(i, entry) for i, entry in enumerate(trace)]
        if any(p.env for p in packets):
            raise VectorUnsupported("pre-seeded packet env")
        packets.sort(key=lambda p: (p.arrival, p.port, p.pkt_id))
        for seq, pkt in enumerate(packets):
            pkt.pkt_id = seq  # arrival-ordered ids, the C1 reference order
        stats = self.stats
        stats.offered = len(packets)
        stats.arrival_ticks = [p.arrival for p in packets]
        if not packets or (max_ticks is not None and max_ticks <= 0):
            stats.ticks = 0
            return stats
        self._run_batch(packets, max_ticks)
        return stats

    def _run_batch(
        self, packets: List[DataPacket], max_ticks: Optional[int]
    ) -> None:
        cfg = self.config
        stats = self.stats
        k = cfg.num_pipelines
        depth = self.depth
        N = len(packets)
        vplans = self._vplans
        nplans = len(vplans)
        kernels = self._vkernels
        sharder = self.sharder
        # Last executable tick: the run loop breaks before tick max_ticks.
        cut_limit = (max_ticks - 1) if max_ticks is not None else None

        # Injection schedule. Injection never blocks fault-free (every
        # stage-0 slot vacates within its tick), so with round-robin
        # spray the j-th arrival enters pipeline j % k, and within each
        # residue class ticks follow t_i = max(ceil(arrival_i), t_{i-1}+1)
        # — a running maximum.
        arrival = np.fromiter(
            (float(p.arrival) for p in packets), dtype=np.float64, count=N
        )
        ceil_a = np.ceil(arrival).astype(np.int64)
        inj = np.empty(N, dtype=np.int64)
        for r in range(min(k, N)):
            sel = np.arange(r, N, k)
            i_local = np.arange(sel.shape[0], dtype=np.int64)
            inj[sel] = i_local + np.maximum.accumulate(ceil_a[sel] - i_local)
        entry_pipe = np.arange(N, dtype=np.int64) % k

        # Structure-of-arrays packet state.
        fields = set()
        temps = set()
        for kern in kernels:
            if kern is not None:
                fields |= kern.fields_read | kern.fields_written
                temps.update(kern.temps_in)
                temps.update(kern.temps_out)
        if self._flow_order_stage is not None:
            fields.add(cfg.flow_order_field)
        field_list = sorted(fields)
        if field_list:
            # One pass over the packet dicts: row-major gather, then one
            # transpose — far cheaper than per-field generator scans.
            raw = np.array(
                [[p.headers.get(f, 0) for f in field_list] for p in packets],
                dtype=np.int64,
            )
            H = {
                f: np.ascontiguousarray(raw[:, pos])
                for pos, f in enumerate(field_list)
            }
        else:
            H = {}
        E = {t: np.zeros(N, dtype=np.int64) for t in sorted(temps)}
        R = {
            name: np.asarray(values, dtype=np.int64)
            for name, values in self.registers.items()
        }

        # Per-plan per-packet timeline state.
        acc_idx = [
            np.full(N, -1, dtype=np.int64) if p.has_index else None
            for p in vplans
        ]
        dest = [np.zeros(N, dtype=np.int64) for _ in vplans]
        ins_tick = [np.full(N, -1, dtype=np.int64) for _ in vplans]
        pop_tick = [np.full(N, -1, dtype=np.int64) for _ in vplans]
        groups = [[_Group(N) for _ in range(k)] for _ in vplans]
        egr_tick = np.full(N, -1, dtype=np.int64)
        egr_pipe = np.full(N, -1, dtype=np.int64)
        self._regview = {name: _RegView(arr) for name, arr in R.items()}
        self._wasted = 0

        period = cfg.remap_period
        remap_on = cfg.remap_algorithm != "none"
        inj_ptr = 0
        injected = 0
        egr_assigned = 0
        last_egress = -1
        epoch_start = 0

        def process_inject(rows: np.ndarray) -> None:
            nonlocal egr_assigned, last_egress
            kern0 = kernels[0]
            if kern0 is not None:
                kern0.fn(H, R, E, rows)
            for u in self._transit_after_inject:
                kernels[u].fn(H, R, E, rows)
            t_rows = inj[rows]
            if not vplans:
                et = t_rows + (depth - 1)
                rows_e = rows
                if cut_limit is not None:
                    keep = et <= cut_limit
                    rows_e = rows[keep]
                    et = et[keep]
                if rows_e.size:
                    egr_tick[rows_e] = et
                    egr_pipe[rows_e] = entry_pipe[rows_e]
                    egr_assigned += rows_e.shape[0]
                    last_egress = max(last_egress, int(et[-1]))
                return
            for pi, plan in enumerate(vplans):
                state = sharder.arrays[plan.base]
                if plan.is_flow:
                    size = plan.size
                    fkey = H[cfg.flow_order_field]
                    iv = np.empty(rows.shape[0], dtype=np.int64)
                    for pos, row in enumerate(rows.tolist()):
                        key = int(fkey[row])
                        iv[pos] = hash2(key, 0x5F0E) % size
                        pkt = packets[row]
                        if pkt.flow_id is None:
                            pkt.flow_id = key
                elif plan.has_index:
                    op = plan.index_operand
                    if isinstance(op, Const):
                        iv = np.full(
                            rows.shape[0], op.value % plan.size, dtype=np.int64
                        )
                    else:
                        iv = E[op.name][rows] % plan.size
                else:
                    iv = None
                if iv is not None:
                    counts = np.bincount(iv, minlength=plan.size)
                    state.access_counts += counts
                    state.in_flight += counts.astype(state.in_flight.dtype)
                    dv = state.index_to_pipeline[iv].astype(np.int64)
                    acc_idx[pi][rows] = iv
                else:
                    dv = np.full(
                        rows.shape[0],
                        int(state.index_to_pipeline[0]),
                        dtype=np.int64,
                    )
                dest[pi][rows] = dv
                if k == 1:
                    g = groups[pi][0]
                    n = rows.shape[0]
                    g.members[g.count : g.count + n] = rows
                    g.count += n
                else:
                    for pipe in range(k):
                        sel = rows[dv == pipe]
                        if sel.size:
                            g = groups[pi][pipe]
                            g.members[g.count : g.count + sel.size] = sel
                            g.count += sel.size
            ins_tick[0][rows] = t_rows + (vplans[0].stage - 1)

        while True:
            boundary = (epoch_start + period) if remap_on else None
            cut = _FAR
            if boundary is not None:
                cut = boundary
            if cut_limit is not None and cut_limit < cut:
                cut = cut_limit

            hi = int(np.searchsorted(inj, cut, side="right"))
            if hi > inj_ptr:
                rows = np.arange(inj_ptr, hi, dtype=np.int64)
                inj_ptr = hi
                injected += rows.shape[0]
                process_inject(rows)

            for pi, plan in enumerate(vplans):
                ipt = ins_tick[pi]
                popped = []
                for pipe in range(k):
                    g = groups[pi][pipe]
                    avail = g.count - g.ptr
                    if avail <= 0:
                        continue
                    max_pops = cut - g.last_pop
                    if max_pops <= 0:
                        continue
                    take = min(avail, max_pops)
                    seg_rows = g.members[g.ptr : g.ptr + take]
                    seg_ins = ipt[seg_rows]
                    unknown = np.nonzero(seg_ins < 0)[0]
                    if unknown.size:
                        take = int(unknown[0])
                        if take == 0:
                            continue
                        seg_rows = seg_rows[:take]
                        seg_ins = seg_ins[:take]
                    j = np.arange(seg_rows.shape[0], dtype=np.int64)
                    base = np.maximum(seg_ins, g.last_pop + 1)
                    pops = j + np.maximum.accumulate(base - j)
                    cnt = int(np.searchsorted(pops, cut, side="right"))
                    if cnt == 0:
                        continue
                    rows_p = seg_rows[:cnt]
                    pops = pops[:cnt]
                    g.ptr += cnt
                    g.last_pop = int(pops[-1])
                    pop_tick[pi][rows_p] = pops
                    popped.append((pipe, rows_p, pops))
                if not popped:
                    continue
                # Service every pipeline's pops in one merged batch —
                # shardable indices are pipe-disjoint within the epoch,
                # so waves compose across pipelines; serialized stages
                # re-sort into global (tick, pipe) service order.
                if len(popped) == 1:
                    pipe0, rows_p, pops = popped[0]
                    pipes_p = None
                else:
                    rows_p = np.concatenate([c[1] for c in popped])
                    pops = np.concatenate([c[2] for c in popped])
                    pipes_p = np.concatenate(
                        [np.full(c[1].shape[0], c[0], dtype=np.int64) for c in popped]
                    )
                self._service_batch(plan, pi, rows_p, pops, pipes_p, acc_idx, H, R, E)
                if plan.has_index and not plan.is_flow:
                    state = sharder.arrays[plan.base]
                    state.in_flight -= np.bincount(
                        acc_idx[pi][rows_p], minlength=plan.size
                    ).astype(state.in_flight.dtype)
                if pi + 1 < nplans:
                    delta = vplans[pi + 1].stage - plan.stage
                    ins_tick[pi + 1][rows_p] = pops + delta
                else:
                    # The run loop breaks before tick max_ticks, so an
                    # egress scheduled past the cutoff never executes:
                    # the packet is stuck in the tail.
                    et = pops + (depth - plan.stage)
                    rows_e = rows_p
                    if cut_limit is not None:
                        keep = et <= cut_limit
                        rows_e = rows_p[keep]
                        et = et[keep]
                    if rows_e.size:
                        egr_tick[rows_e] = et
                        egr_pipe[rows_e] = dest[pi][rows_e]
                        egr_assigned += rows_e.shape[0]
                        last_egress = max(last_egress, int(et.max()))
                for u in self._transit_after[pi]:
                    kernels[u].fn(H, R, E, rows_p)

            if not remap_on:
                break
            if cut_limit is not None and boundary > cut_limit:
                break
            # The scalar run loop is alive at the boundary tick iff
            # packets are still pending injection or in flight there —
            # only then does the remap phase of that tick execute.
            alive = (
                inj_ptr < N
                or injected > egr_assigned
                or last_egress >= boundary
            )
            if alive:
                moved = sharder.end_epoch(cfg.remap_algorithm)
                stats.remap_moves += moved
                epoch_start = boundary
            else:
                break

        # ------------------------------------------------------------------
        # Statistics reconstruction (Python-native values, so serialized
        # output is byte-identical with the scalar engines).
        # ------------------------------------------------------------------
        if egr_assigned == N:
            stats.ticks = int(last_egress) + 1
        else:
            stats.ticks = int(max_ticks)
        last_exec = stats.ticks - 1

        stats.phantoms_generated = injected * nplans
        stats.wasted_slots = self._wasted

        done = np.nonzero(egr_tick >= 0)[0]
        stats.egressed = int(done.size)
        if done.size:
            order = np.lexsort((egr_pipe[done], egr_tick[done]))
            ordered = done[order]
            ticks_sorted = egr_tick[ordered]
            stats.egress_ticks = [int(t) for t in ticks_sorted]
            latencies = []
            flow_egress = stats.flow_egress
            for pos, row in enumerate(ordered.tolist()):
                pkt = packets[row]
                latencies.append(int(ticks_sorted[pos]) - pkt.arrival)
                if pkt.flow_id is not None:
                    flow_egress.setdefault(pkt.flow_id, []).append(row)
            stats.latencies = latencies

        steering = 0
        for pi, plan in enumerate(vplans):
            executed = (ins_tick[pi] >= 0) & (ins_tick[pi] <= last_exec)
            prev = entry_pipe if pi == 0 else dest[pi - 1]
            steering += int(np.count_nonzero(executed & (dest[pi] != prev)))
        stats.steering_moves = steering

        max_depth = 0
        peaks = stats.per_stage_peak_queue
        for pi, plan in enumerate(vplans):
            for pipe in range(k):
                g = groups[pi][pipe]
                if g.count == 0:
                    continue
                members = g.members[: g.count]
                ins = ins_tick[pi][members]
                ins = ins[(ins >= 0) & (ins <= last_exec)]
                if ins.size == 0:
                    continue
                pops = pop_tick[pi][members]
                pops = pops[pops >= 0]
                ins_sorted = np.sort(ins)
                pop_sorted = np.sort(pops)
                # End-of-tick data occupancy changes only at event
                # ticks; its peak lands on an insert tick.
                occ = np.searchsorted(
                    pop_sorted, ins_sorted, side="right"
                )
                occ = np.arange(1, ins_sorted.shape[0] + 1) - occ
                peak = int(occ.max())
                if peak > 0:
                    peaks[(pipe, plan.stage)] = peak
                    if peak > max_depth:
                        max_depth = peak
        stats.max_queue_depth = max_depth

        for name, arr in R.items():
            self.registers[name] = arr.tolist()

    # ------------------------------------------------------------------
    # Stateful service
    # ------------------------------------------------------------------

    def _service_batch(
        self, plan, pi, rows_p, pops, pipes_p, acc_idx, H, R, E
    ) -> None:
        stage = plan.stage
        kern = self._vkernels[stage]
        if plan.is_flow or kern is None:
            return
        if plan.category == "wave":
            idxs = acc_idx[pi][rows_p]
            n = rows_p.shape[0]
            # Fast path: no index repeats in the batch -> one wave.
            if n == 1 or int(np.bincount(idxs).max()) <= 1:
                if plan.conservative:
                    lane = np.zeros(n, dtype=bool)
                    kern.fn(H, R, E, rows_p, {plan.base: lane})
                    self._wasted += int(n - np.count_nonzero(lane))
                else:
                    kern.fn(H, R, E, rows_p)
                return
            order = np.argsort(idxs, kind="stable")
            sorted_idx = idxs[order]
            new_group = np.empty(n, dtype=bool)
            new_group[0] = True
            if n > 1:
                new_group[1:] = sorted_idx[1:] != sorted_idx[:-1]
            starts = np.maximum.accumulate(
                np.where(new_group, np.arange(n), 0)
            )
            rank = np.arange(n) - starts
            waves = np.empty(n, dtype=np.int64)
            waves[order] = rank
            n_waves = int(rank.max()) + 1
            if plan.conservative:
                for w in range(n_waves):
                    sel = rows_p[waves == w]
                    lane = np.zeros(sel.shape[0], dtype=bool)
                    kern.fn(H, R, E, sel, {plan.base: lane})
                    self._wasted += int(
                        sel.shape[0] - np.count_nonzero(lane)
                    )
            elif n_waves == 1:
                kern.fn(H, R, E, rows_p)
            else:
                for w in range(n_waves):
                    kern.fn(H, R, E, rows_p[waves == w])
            return
        # Serialized rows: pinned arrays, co-staged (multi) arrays,
        # constant or in-stage index expressions. Exact by construction
        # — scalar execution in global (tick, pipeline) service order.
        if pipes_p is not None:
            rows_p = rows_p[np.lexsort((pipes_p, pops))]
        fn = self._vserial_fns[stage]
        regview = self._regview
        fields = sorted(kern.fields_read | kern.fields_written)
        written = sorted(kern.fields_written)
        temps_in = kern.temps_in
        temps_out = kern.temps_out
        track_wasted = plan.conservative and not plan.multi
        for row in rows_p.tolist():
            headers = {f: int(H[f][row]) for f in fields}
            env = {t: int(E[t][row]) for t in temps_in}
            if track_wasted:
                hit: List[str] = []
                fn(headers, regview, env, lambda reg, i, kind: hit.append(reg))
                if plan.base not in hit:
                    self._wasted += 1
            else:
                fn(headers, regview, env, None)
            for f in written:
                H[f][row] = headers[f]
            for t in temps_out:
                E[t][row] = env[t]


def run_mp5_vector(
    program,
    trace: Iterable,
    config: Optional[MP5Config] = None,
    max_ticks: Optional[int] = None,
    record_access_order: bool = False,
    recorder=None,
    metrics=None,
    profiler=None,
    faults=None,
    monitor=None,
) -> Tuple[SwitchStats, Dict[str, List[int]]]:
    """Run a trace through the batch engine, falling back to the fast
    engine whenever the vector reduction does not apply.

    Faults or observability sinks trigger the fallback with a one-line
    stderr warning (so ``--engine vector`` is always safe in scripts);
    unsupported configurations and program shapes fall back silently.
    Either way the returned statistics and registers are identical to
    :func:`~repro.mp5.switch.run_mp5`.
    """
    entries = trace if isinstance(trace, list) else list(trace)
    cfg = config or MP5Config()
    if (
        faults is not None
        or recorder is not None
        or metrics is not None
        or profiler is not None
        or monitor is not None
    ):
        attached = "faults" if faults is not None else "observability"
        print(
            f"vector engine: {attached} attached; falling back to the "
            "fast engine",
            file=sys.stderr,
        )
        return run_mp5(
            program,
            entries,
            config,
            max_ticks=max_ticks,
            record_access_order=record_access_order,
            recorder=recorder,
            metrics=metrics,
            profiler=profiler,
            faults=faults,
            monitor=monitor,
        )
    stats = None
    if (
        not record_access_order
        and config_fallback_reason(cfg) is None
    ):
        try:
            # VectorSwitch.run raises VectorUnsupported only in its
            # preamble, before any packet is mutated, so the same
            # entries list can be replayed through the fast engine.
            switch = VectorSwitch(program, config)
            stats = switch.run(
                entries,
                max_ticks=max_ticks,
                record_access_order=record_access_order,
            )
        except VectorUnsupported:
            stats = None
    if stats is None:
        return run_mp5(
            program,
            entries,
            config,
            max_ticks=max_ticks,
            record_access_order=record_access_order,
        )
    registers = {
        name: values
        for name, values in switch.registers.items()
        if name != FLOW_ORDER_ARRAY
    }
    return stats, registers
