"""TAC flattening: one stage's instruction list as SSA statements.

The native backend (:mod:`repro.compiler.native`) wants each stage as a
flat list of *statements over named scalar values* — no Temp objects,
no operand dispatch, every constant inlined — so a code generator can
walk the list once and print one line (or a short guarded block) per
statement. This is the Taichi ``lower_ast`` idiom: eliminate the
expression tree, make the body SSA, and leave only
``binary/unary(binary/unary)`` statements behind.

Our TAC (:mod:`repro.compiler.tac`) is already straight-line and
single-assignment, so lowering here is mostly *resolution*: map every
:class:`~repro.compiler.tac.Temp` to a stable local name in first-use
order (the same ``v0, v1, ...`` scheme the scalar and vector JITs use),
classify which temps are stage inputs (defined by an earlier stage,
loaded from the PHV) versus stage outputs (published back to the PHV),
and annotate each statement with everything its emitter needs — the
register array for state accesses, the header field for loads/stores,
the guard variable for predicated execution.

The result is backend-neutral: the same :class:`StageSSA` could drive a
C emitter or a Numba emitter (it drives the latter). Statements carry
no NumPy or Numba specifics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..errors import CompilerError
from .tac import Const, OpKind, TacInstr, Temp, _to_signed32

#: Operand of a lowered statement: a local variable name or an inlined
#: 32-bit-wrapped integer constant.
Value = Union[str, int]


@dataclass(frozen=True)
class SSAStmt:
    """One flattened statement.

    ``kind`` is one of:

    * ``field_load``   — ``dest = wrap(H[field][row])``
    * ``field_store``  — ``H[field][row] = args[0]``            [guard]
    * ``const``        — ``dest = args[0]`` (already wrapped)
    * ``unary``        — ``dest = op args[0]``
    * ``binary``       — ``dest = args[0] op args[1]``
    * ``call``         — ``dest = builtin op(*args)`` (native-inadmissible)
    * ``select``       — ``dest = args[0] ? args[1] : args[2]``
    * ``reg_load``     — ``dest = reg[args[0] mod size]``       [guard]
    * ``reg_store``    — ``reg[args[0] mod size] = args[1]``    [guard]

    A ``guard`` names a 0/1 local; guarded register statements perform
    *no state access at all* when it is 0 (a guarded ``reg_load``
    defines ``dest = 0``), exactly like the TAC evaluator.
    """

    kind: str
    dest: Optional[str] = None
    op: str = ""
    args: Tuple[Value, ...] = ()
    guard: Optional[str] = None
    reg: Optional[str] = None
    field: Optional[str] = None

    def render(self) -> str:
        """Human-readable one-line form (tests and debugging)."""
        g = f" if {self.guard}" if self.guard else ""
        if self.kind == "field_load":
            return f"{self.dest} = load p.{self.field}"
        if self.kind == "field_store":
            return f"p.{self.field} = {self.args[0]}{g}"
        if self.kind == "const":
            return f"{self.dest} = {self.args[0]}"
        if self.kind == "unary":
            return f"{self.dest} = {self.op} {self.args[0]}"
        if self.kind == "binary":
            return f"{self.dest} = {self.args[0]} {self.op} {self.args[1]}"
        if self.kind == "call":
            joined = ", ".join(str(a) for a in self.args)
            return f"{self.dest} = {self.op}({joined})"
        if self.kind == "select":
            a, b, c = self.args
            return f"{self.dest} = {a} ? {b} : {c}"
        if self.kind == "reg_load":
            return f"{self.dest} = {self.reg}[{self.args[0]}]{g}"
        if self.kind == "reg_store":
            return f"{self.reg}[{self.args[0]}] = {self.args[1]}{g}"
        raise AssertionError(self.kind)


@dataclass
class StageSSA:
    """One stage, flattened: the unit the native emitter consumes."""

    name: str
    stmts: List[SSAStmt] = field(default_factory=list)
    #: header fields, sorted — read and written sets drive the kernel's
    #: column signature
    fields_read: Tuple[str, ...] = ()
    fields_written: Tuple[str, ...] = ()
    #: PHV temps loaded before / published after the stage, in the same
    #: order the scalar/vector JITs use
    temps_in: Tuple[str, ...] = ()
    temps_out: Tuple[str, ...] = ()
    #: register arrays touched, sorted
    regs: Tuple[str, ...] = ()
    #: local-variable name of each loaded PHV temp / published temp
    temp_vars: Dict[str, str] = field(default_factory=dict)
    #: True when the stage contains a ``call`` statement (builtins are
    #: arbitrary Python -> outside the native envelope)
    has_call: bool = False

    def render(self) -> str:
        lines = [f"stage {self.name}:"]
        for t in self.temps_in:
            lines.append(f"  {self.temp_vars[t]} = phv.{t}")
        lines.extend(f"  {s.render()}" for s in self.stmts)
        for t in self.temps_out:
            lines.append(f"  phv.{t} = {self.temp_vars[t]}")
        return "\n".join(lines)


def _value(op, names: Dict[Temp, str]) -> Value:
    if isinstance(op, Const):
        return _to_signed32(op.value)
    return names[op]


def lower_stage(
    instrs: Sequence[TacInstr], name: str = "stage"
) -> Optional[StageSSA]:
    """Flatten one stage's TAC into a :class:`StageSSA`; None if empty.

    Deterministic: the same instruction list always lowers to the same
    statement list and the same variable names, so emitted kernels (and
    their compilation caches) are stable across runs.
    """
    if not instrs:
        return None
    names: Dict[Temp, str] = {}
    defined: Set[Temp] = set()
    used_before_def: List[Temp] = []
    fields_read: List[str] = []
    fields_written: List[str] = []
    regs: Set[str] = set()
    has_call = False

    def var(temp: Temp) -> str:
        got = names.get(temp)
        if got is None:
            got = f"v{len(names)}"
            names[temp] = got
        return got

    # Pass 1: discover stage inputs (temps used before any definition)
    # in first-use order, mirroring compile_instrs / compile_vector_stage.
    for instr in instrs:
        for temp in instr.uses():
            if temp not in defined and temp not in used_before_def:
                used_before_def.append(temp)
        dest = instr.defines()
        if dest is not None:
            defined.add(dest)
    for temp in used_before_def:
        var(temp)  # inputs claim the first variable names

    stmts: List[SSAStmt] = []
    for instr in instrs:
        kind = instr.kind
        guard = names[instr.guard] if instr.guard is not None else None
        if kind is OpKind.READ_FIELD:
            if instr.field_name not in fields_read:
                fields_read.append(instr.field_name)
            stmts.append(
                SSAStmt(
                    "field_load", dest=var(instr.dest), field=instr.field_name
                )
            )
        elif kind is OpKind.WRITE_FIELD:
            if instr.field_name not in fields_written:
                fields_written.append(instr.field_name)
            stmts.append(
                SSAStmt(
                    "field_store",
                    field=instr.field_name,
                    args=(_value(instr.args[0], names),),
                    guard=guard,
                )
            )
        elif kind is OpKind.CONST:
            if not isinstance(instr.args[0], Const):
                raise CompilerError("lower: CONST with non-constant operand")
            stmts.append(
                SSAStmt(
                    "const",
                    dest=var(instr.dest),
                    args=(_to_signed32(instr.args[0].value),),
                )
            )
        elif kind is OpKind.UNARY:
            stmts.append(
                SSAStmt(
                    "unary",
                    dest=var(instr.dest),
                    op=instr.op,
                    args=(_value(instr.args[0], names),),
                )
            )
        elif kind is OpKind.BINARY:
            stmts.append(
                SSAStmt(
                    "binary",
                    dest=var(instr.dest),
                    op=instr.op,
                    args=(
                        _value(instr.args[0], names),
                        _value(instr.args[1], names),
                    ),
                )
            )
        elif kind is OpKind.CALL:
            has_call = True
            stmts.append(
                SSAStmt(
                    "call",
                    dest=var(instr.dest),
                    op=instr.op,
                    args=tuple(_value(a, names) for a in instr.args),
                )
            )
        elif kind is OpKind.SELECT:
            stmts.append(
                SSAStmt(
                    "select",
                    dest=var(instr.dest),
                    args=tuple(_value(a, names) for a in instr.args),
                )
            )
        elif kind is OpKind.REG_READ:
            regs.add(instr.reg)
            stmts.append(
                SSAStmt(
                    "reg_load",
                    dest=var(instr.dest),
                    reg=instr.reg,
                    args=(_value(instr.args[0], names),),
                    guard=guard,
                )
            )
        elif kind is OpKind.REG_WRITE:
            regs.add(instr.reg)
            stmts.append(
                SSAStmt(
                    "reg_store",
                    reg=instr.reg,
                    args=(
                        _value(instr.args[0], names),
                        _value(instr.args[1], names),
                    ),
                    guard=guard,
                )
            )
        else:
            raise CompilerError(f"lower: unknown instruction kind {kind}")

    temps_out = sorted(defined, key=lambda t: t.name)
    temp_vars = {t.name: names[t] for t in used_before_def}
    temp_vars.update({t.name: names[t] for t in temps_out})
    return StageSSA(
        name=name,
        stmts=stmts,
        fields_read=tuple(fields_read),
        fields_written=tuple(fields_written),
        temps_in=tuple(t.name for t in used_before_def),
        temps_out=tuple(t.name for t in temps_out),
        regs=tuple(sorted(regs)),
        temp_vars=temp_vars,
        has_call=has_call,
    )
