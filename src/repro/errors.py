"""Exception hierarchy for the MP5 reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries while still being
able to distinguish compiler-side failures (program rejected) from
runtime/simulation failures (bad configuration, impossible schedule).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class DominoError(ReproError):
    """Base class for errors in the Domino language frontend."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"line {line}:{column}: {message}"
        super().__init__(message)


class DominoSyntaxError(DominoError):
    """The program text does not conform to the Domino grammar."""


class DominoSemanticError(DominoError):
    """The program parsed but violates a semantic rule.

    Examples: use of an undeclared register, assignment to an undeclared
    packet field, or a register indexed with a non-integer expression.
    """


class CompilerError(ReproError):
    """Base class for errors in the Domino-to-pipeline compiler."""


class ResourceError(CompilerError):
    """The program does not fit the target machine's resource limits.

    Raised by code generation when the scheduled PVSM needs more pipeline
    stages, atoms per stage, or register arrays per stage than the target
    provides.
    """


class TransformError(CompilerError):
    """The PVSM-to-PVSM transformer could not restructure the program."""


class SimulationError(ReproError):
    """Base class for errors raised by the switch simulators."""


class ConfigError(SimulationError):
    """A simulator or experiment was constructed with invalid parameters."""


class EquivalenceError(ReproError):
    """A functional-equivalence check failed.

    Carries the structured mismatch report so tests can introspect what
    diverged (register state vs. packet state).
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report
