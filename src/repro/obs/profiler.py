"""Lightweight section timer for the fast-path phases of one tick.

The switch calls :meth:`PhaseProfiler.begin` at the top of ``_step`` and
:meth:`PhaseProfiler.lap` at each phase boundary; each lap accumulates
the wall-clock time since the previous one under the phase's name. When
no profiler is attached the engine skips the calls behind a single
attribute check, so profiling costs nothing disabled.

``report()`` renders the breakdown the CLI prints under ``--profile``.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List


class PhaseProfiler:
    """Accumulates per-phase wall-clock time across ticks."""

    __slots__ = ("totals", "ticks", "_t0")

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}
        self.ticks = 0
        self._t0 = 0.0

    def begin(self) -> None:
        self._t0 = perf_counter()

    def lap(self, phase: str) -> None:
        now = perf_counter()
        self.totals[phase] = self.totals.get(phase, 0.0) + (now - self._t0)
        self._t0 = now

    def end_tick(self) -> None:
        self.ticks += 1

    # ------------------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        return sum(self.totals.values())

    def to_dict(self) -> Dict:
        return {
            "ticks": self.ticks,
            "seconds": dict(self.totals),
            "total_seconds": self.total_seconds,
        }

    def report(self) -> str:
        """Phase breakdown table, heaviest phase first."""
        total = self.total_seconds or 1.0
        ticks = self.ticks or 1
        headers = ("phase", "seconds", "share", "us/tick")
        rows = [
            (
                phase,
                f"{seconds:.4f}",
                f"{100 * seconds / total:5.1f}%",
                f"{1e6 * seconds / ticks:8.2f}",
            )
            for phase, seconds in sorted(
                self.totals.items(), key=lambda kv: kv[1], reverse=True
            )
        ]
        rows.append(
            (
                "total",
                f"{self.total_seconds:.4f}",
                "100.0%",
                f"{1e6 * self.total_seconds / ticks:8.2f}",
            )
        )
        widths = [
            max(len(headers[i]), max((len(r[i]) for r in rows), default=0))
            for i in range(len(headers))
        ]

        def line(cells) -> str:
            return "  ".join(c.rjust(widths[i]) for i, c in enumerate(cells))

        out: List[str] = [
            f"Fast-path phase breakdown over {self.ticks} ticks",
            line(headers),
            line(["-" * w for w in widths]),
        ]
        out.extend(line(row) for row in rows)
        return "\n".join(out)
