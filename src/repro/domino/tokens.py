"""Token definitions for the Domino language frontend.

The token set covers the C-like subset of Domino used by the paper's
example programs (Figure 3) and by the public domino-examples repository:
struct declarations, global register arrays, one packet-processing
function, conditionals, ternaries, and integer arithmetic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    # Literals and identifiers.
    INT_LITERAL = "int_literal"
    IDENT = "ident"

    # Keywords.
    KW_STRUCT = "struct"
    KW_INT = "int"
    KW_VOID = "void"
    KW_IF = "if"
    KW_ELSE = "else"

    # Punctuation.
    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    SEMICOLON = ";"
    COMMA = ","
    DOT = "."
    QUESTION = "?"
    COLON = ":"

    # Operators.
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    EQ = "=="
    NEQ = "!="
    LT = "<"
    LEQ = "<="
    GT = ">"
    GEQ = ">="
    AND = "&&"
    OR = "||"
    NOT = "!"
    BIT_AND = "&"
    BIT_OR = "|"
    BIT_XOR = "^"
    SHL = "<<"
    SHR = ">>"

    EOF = "eof"


KEYWORDS = {
    "struct": TokenType.KW_STRUCT,
    "int": TokenType.KW_INT,
    "void": TokenType.KW_VOID,
    "if": TokenType.KW_IF,
    "else": TokenType.KW_ELSE,
}

# Two-character operators must be matched before their one-character
# prefixes, so order matters here.
TWO_CHAR_OPERATORS = {
    "==": TokenType.EQ,
    "!=": TokenType.NEQ,
    "<=": TokenType.LEQ,
    ">=": TokenType.GEQ,
    "&&": TokenType.AND,
    "||": TokenType.OR,
    "<<": TokenType.SHL,
    ">>": TokenType.SHR,
}

ONE_CHAR_OPERATORS = {
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ";": TokenType.SEMICOLON,
    ",": TokenType.COMMA,
    ".": TokenType.DOT,
    "?": TokenType.QUESTION,
    ":": TokenType.COLON,
    "=": TokenType.ASSIGN,
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
    "<": TokenType.LT,
    ">": TokenType.GT,
    "!": TokenType.NOT,
    "&": TokenType.BIT_AND,
    "|": TokenType.BIT_OR,
    "^": TokenType.BIT_XOR,
}


@dataclass(frozen=True)
class Token:
    """A single lexical token with source position for error messages."""

    type: TokenType
    text: str
    line: int
    column: int

    @property
    def value(self) -> int:
        """Integer value of an INT_LITERAL token."""
        if self.type is not TokenType.INT_LITERAL:
            raise ValueError(f"token {self.type} has no integer value")
        return int(self.text, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.text!r}, {self.line}:{self.column})"
