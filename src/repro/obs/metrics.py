"""Metrics registry: counters, gauges, and windowed histograms.

The registry turns the engine's end-of-run scalars into *per-window time
series*: every ``window`` ticks it closes a window and appends one point
per instrument, so a run yields queue-depth, throughput and remap-rate
curves instead of a single number.

Three instrument kinds plus one pull-based source:

* :class:`Counter` — monotonically increasing; the series records the
  per-window **delta** (a rate).
* :class:`Gauge` — a level; the series records the value at the window
  boundary.
* :class:`WindowedHistogram` — observations within the window summarized
  as count/min/max/mean/p50/p99 per window, with a running total.
* **samplers** (:meth:`MetricsRegistry.add_sampler`) — zero-hot-path-cost
  publishing: the registry *polls* a callable at each window boundary.
  This is how the switch, FIFOs, sharder and crossbar publish — their
  existing cumulative counters are read once per window instead of
  being incremented through an extra layer per packet.

**Retention.** A long-lived daemon cannot let the per-window series grow
without bound. ``MetricsRegistry(retention=N)`` caps every series at
``N`` rows: whenever a series exceeds the cap it is thinned by keeping
every 2nd retained row (so after repeated thinning the surviving rows
are every 4th, 8th, ... window — progressively coarser history), and
the **newest row is always kept**. Thinning is a pure function of the
roll-tick sequence, so two identical runs retain identical rows.
Totals are unaffected — they read the live instruments, not the series.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

PathLike = Union[str, Path]

KIND_COUNTER = "counter"
KIND_GAUGE = "gauge"


def _bisect_rows(rows: List, tick: int, key: Callable) -> int:
    """First index whose key is > ``tick`` (rows sorted ascending)."""
    lo, hi = 0, len(rows)
    while lo < hi:
        mid = (lo + hi) // 2
        if key(rows[mid]) <= tick:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _thin(rows: List) -> None:
    """Halve ``rows`` in place, always keeping the newest row.

    The start offset anchors the stride on the last element, so the
    newest window survives every thinning pass and the survivors are a
    deterministic function of the row count alone.
    """
    rows[:] = rows[(len(rows) - 1) % 2 :: 2]


class Counter:
    """Monotonic counter; the registry series records per-window deltas."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A level sampled at window boundaries."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class WindowedHistogram:
    """Collects observations, summarized per window by the registry."""

    __slots__ = ("name", "window_values", "total_count", "total_sum")

    def __init__(self, name: str):
        self.name = name
        self.window_values: List[float] = []
        self.total_count = 0
        self.total_sum = 0.0

    def observe(self, value: float) -> None:
        self.window_values.append(value)
        self.total_count += 1
        self.total_sum += value

    def flush(self) -> Optional[Dict[str, float]]:
        """Summarize and clear the current window; None when empty."""
        values = self.window_values
        if not values:
            return None
        values.sort()
        n = len(values)

        def pct(p: float) -> float:
            return values[min(n - 1, int(round(p / 100 * (n - 1))))]

        summary = {
            "count": n,
            "min": values[0],
            "max": values[-1],
            "mean": sum(values) / n,
            "p50": pct(50),
            "p99": pct(99),
        }
        self.window_values = []
        return summary

    @property
    def mean(self) -> float:
        return self.total_sum / self.total_count if self.total_count else 0.0


class MetricsRegistry:
    """Registry of named instruments with per-window series.

    The simulation engine calls :meth:`maybe_roll` once per tick (one
    attribute check when disabled — the registry is only consulted when
    attached); callers read :attr:`series` / :attr:`histogram_series`
    afterwards or export everything with :meth:`to_dict`.

    ``retention`` (optional) caps the rows kept per series — see the
    module docstring for the deterministic thinning rule.
    """

    def __init__(self, window: int = 100, retention: Optional[int] = None):
        if window < 1:
            raise ValueError("metrics window must be >= 1")
        if retention is not None and retention < 2:
            raise ValueError("metrics retention must be >= 2 rows")
        self.window = window
        self.retention = retention
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, WindowedHistogram] = {}
        # name -> (fn, cumulative, last sample)
        self._samplers: Dict[str, List] = {}
        self.series: Dict[str, List[List[float]]] = {}
        self.histogram_series: Dict[str, List[Dict]] = {}
        self._counter_last: Dict[str, int] = {}
        self._last_roll = -1
        self._next_roll = window

    # ------------------------------------------------------------------
    # Instrument accessors (get-or-create)
    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        inst = self.counters.get(name)
        if inst is None:
            inst = self.counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self.gauges.get(name)
        if inst is None:
            inst = self.gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> WindowedHistogram:
        inst = self.histograms.get(name)
        if inst is None:
            inst = self.histograms[name] = WindowedHistogram(name)
        return inst

    def add_sampler(
        self, name: str, fn: Callable[[], float], cumulative: bool = False
    ) -> None:
        """Register a pull-based source polled at each window boundary.

        ``cumulative`` sources report a monotonically increasing total
        (e.g. ``stats.egressed``); the series then records the
        per-window delta. Non-cumulative sources record the raw sample
        (a gauge read, e.g. current queue depth).
        """
        self._samplers[name] = [fn, cumulative, fn() if cumulative else None]

    def kinds(self) -> Dict[str, str]:
        """Instrument kind per series name (``counter`` sources record
        per-window deltas of a monotonic total, ``gauge`` sources a
        level). Histograms are implied by :attr:`histogram_series`."""
        out: Dict[str, str] = {}
        for name in self.counters:
            out[name] = KIND_COUNTER
        for name in self.gauges:
            out[name] = KIND_GAUGE
        for name, entry in self._samplers.items():
            out[name] = KIND_COUNTER if entry[1] else KIND_GAUGE
        return out

    # ------------------------------------------------------------------
    # Window rolling
    # ------------------------------------------------------------------

    def maybe_roll(self, tick: int) -> None:
        if tick >= self._next_roll:
            self.roll(tick)

    def _append(self, name: str, row: List[float]) -> None:
        rows = self.series.setdefault(name, [])
        rows.append(row)
        if self.retention is not None and len(rows) > self.retention:
            _thin(rows)

    def roll(self, tick: int) -> None:
        """Close the window ending at ``tick`` (idempotent per tick)."""
        if tick <= self._last_roll:
            return
        for name, inst in self.counters.items():
            delta = inst.value - self._counter_last.get(name, 0)
            self._counter_last[name] = inst.value
            self._append(name, [tick, delta])
        for name, inst in self.gauges.items():
            self._append(name, [tick, inst.value])
        for name, entry in self._samplers.items():
            fn, cumulative, last = entry
            sample = fn()
            if cumulative:
                self._append(name, [tick, sample - last])
                entry[2] = sample
            else:
                self._append(name, [tick, sample])
        for name, hist in self.histograms.items():
            summary = hist.flush()
            if summary is not None:
                summary["tick"] = tick
                rows = self.histogram_series.setdefault(name, [])
                rows.append(summary)
                if self.retention is not None and len(rows) > self.retention:
                    _thin(rows)
        self._last_roll = tick
        self._next_roll = (tick // self.window + 1) * self.window

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def totals(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for name, inst in self.counters.items():
            out[name] = inst.value
        for name, inst in self.gauges.items():
            out[name] = inst.value
        for name, entry in self._samplers.items():
            fn, cumulative, _last = entry
            out[name] = fn()
        for name, hist in self.histograms.items():
            out[f"{name}_count"] = hist.total_count
            out[f"{name}_mean"] = hist.mean
        return out

    def to_dict(self) -> Dict:
        return {
            "window": self.window,
            "series": self.series,
            "histograms": self.histogram_series,
            "totals": self.totals(),
            "kinds": self.kinds(),
        }

    def since(self, tick: int = -1) -> Dict:
        """Streaming view: only the window rows rolled after ``tick``.

        The returned ``cursor`` is the last rolled tick; feeding it back
        as ``tick`` on the next call yields exactly the rows that rolled
        in between, so a poller never re-downloads the full series. Used
        by the service's ``/metrics?since=`` endpoint and SSE push.

        Every series is sorted by tick, so the cut point is found by
        binary search — O(log n) per series instead of a full rescan of
        the history on every poll.
        """
        return {
            "window": self.window,
            "cursor": self._last_roll,
            "series": {
                name: rows[_bisect_rows(rows, tick, lambda r: r[0]) :]
                for name, rows in self.series.items()
            },
            "histograms": {
                name: rows[_bisect_rows(rows, tick, lambda r: r["tick"]) :]
                for name, rows in self.histogram_series.items()
            },
            "totals": self.totals(),
        }

    def rows_retained(self) -> int:
        """Total rows currently held across all series (memory gauge)."""
        return sum(len(rows) for rows in self.series.values()) + sum(
            len(rows) for rows in self.histogram_series.values()
        )

    def save(self, path: PathLike) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))
