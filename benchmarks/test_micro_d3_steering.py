"""§4.3.2 microbenchmark — D3: inter-pipeline packet steering.

Re-circulation vs crossbar steering. Paper: re-circulation loses 31-77%
of MP5's throughput, and in the worst case drops below even the naive
single-pipeline-state design — which happens when the average number of
re-circulations per packet exceeds the number of pipelines.
"""

import numpy as np

from repro.harness import MicrobenchSettings, run_d3

from conftest import micro_params, run_once


def test_d3_steering_vs_recirculation(benchmark, show):
    settings = MicrobenchSettings(**micro_params())
    result = run_once(benchmark, lambda: run_d3(settings))

    mp5 = float(np.mean(result.mp5))
    recirc = float(np.mean(result.recirculation))
    naive = float(np.mean(result.single_pipeline_state))
    show(
        "D3: throughput (mean over streams)\n"
        f"  MP5                 : {mp5:.3f}\n"
        f"  recirculation       : {recirc:.3f} "
        f"(avg {float(np.mean(result.avg_recirculations)):.2f} recirc/pkt)\n"
        f"  single-pipe state   : {naive:.3f}\n"
        f"  reduction vs MP5    : {1 - recirc / mp5:.1%}"
    )

    # Re-circulation costs 31-77% of MP5's throughput.
    reduction = 1 - recirc / mp5
    assert 0.31 <= reduction <= 0.85
    # The naive design sits at the 1/k floor.
    assert naive == float(np.trunc(naive * 100) / 100) or 0.2 < naive < 0.3
    # Multiple passes per packet are the cause.
    assert float(np.mean(result.avg_recirculations)) > 1.5


def test_d3_recirculation_below_naive_when_passes_exceed_pipelines(
    benchmark, show
):
    """The paper's worst case: with more stateful accesses spread over
    the pipelines, avg re-circulations/packet exceeds k and throughput
    falls below the naive single-pipeline-state design."""
    params = micro_params()
    settings = MicrobenchSettings(
        num_packets=params["num_packets"],
        seeds=params["seeds"][: max(3, len(params["seeds"]) // 2)],
        num_stateful=8,  # more accesses -> more pipelines visited
        num_pipelines=4,
    )
    result = run_once(benchmark, lambda: run_d3(settings))
    recirc = float(np.mean(result.recirculation))
    naive = float(np.mean(result.single_pipeline_state))
    passes = float(np.mean(result.avg_recirculations))
    show(
        f"D3 worst case: recirc tput {recirc:.3f} vs naive {naive:.3f} "
        f"({passes:.2f} recirc/pkt, k=4)"
    )
    assert passes > 2.5
    assert recirc <= naive + 0.02  # at or below the naive design
