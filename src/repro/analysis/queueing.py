"""Analytical models cross-validating the simulator.

Two families:

* **Fundamental throughput bounds** (§3.5.2): the maximum packet rate a
  program admits regardless of MP5's machinery. A register array served
  by ``m`` pipelines (m = min(size, k) when shardable, 1 when pinned)
  processes at most ``m`` accessing packets per tick; with packets of
  ``mean_bytes`` arriving at utilization ``u`` of line rate, the
  normalized throughput cannot exceed ``m * mean_bytes / (64 k u)``
  (capped at 1). The program bound is the minimum over its arrays —
  e.g. the network sequencer on 16 pipelines with ~740 B packets caps at
  740/1024 ≈ 0.72, exactly what the simulator measures.

* **M/D/1 queueing approximations**: a stateful stage serves one packet
  per tick (deterministic service); when arrivals into one pipeline's
  stage are random with intensity ρ < 1, the Pollaczek-Khinchine formula
  gives the mean number in system. Tests check the simulator's measured
  queues against these within modeling slack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..compiler.codegen import CompiledProgram
from ..errors import ConfigError
from ..workloads.traffic import MIN_PACKET_BYTES


def md1_mean_wait(rho: float) -> float:
    """Mean wait in queue (in service times) of an M/D/1 queue."""
    if not 0.0 <= rho < 1.0:
        raise ConfigError("rho must be in [0, 1) for a stable queue")
    return rho / (2.0 * (1.0 - rho))


def md1_mean_queue(rho: float) -> float:
    """Mean number waiting in queue (not in service) of an M/D/1 queue.

    By Little's law with deterministic unit service: Lq = rho^2 / 2(1-rho).
    """
    if not 0.0 <= rho < 1.0:
        raise ConfigError("rho must be in [0, 1) for a stable queue")
    return rho * rho / (2.0 * (1.0 - rho))


def md1_mean_in_system(rho: float) -> float:
    """Mean number in system (queue + service) of an M/D/1 queue."""
    return md1_mean_queue(rho) + rho


@dataclass(frozen=True)
class ArrayBound:
    """Throughput bound contributed by one register array."""

    array: str
    serving_pipelines: int
    bound: float  # normalized throughput cap in (0, 1]


def array_throughput_bound(
    size: int,
    shardable: bool,
    num_pipelines: int,
    mean_packet_bytes: float = MIN_PACKET_BYTES,
    utilization: float = 1.0,
    access_probability: float = 1.0,
) -> float:
    """Normalized throughput cap imposed by one array (§3.5.2).

    ``access_probability`` scales the array's load when only a fraction
    of packets access it.
    """
    if num_pipelines < 1 or size < 1:
        raise ConfigError("num_pipelines and size must be >= 1")
    if not 0 < utilization <= 1:
        raise ConfigError("utilization must be in (0, 1]")
    if not 0 <= access_probability <= 1:
        raise ConfigError("access_probability must be in [0, 1]")
    serving = min(size, num_pipelines) if shardable else 1
    offered_per_tick = (
        num_pipelines
        * (MIN_PACKET_BYTES / mean_packet_bytes)
        * utilization
        * access_probability
    )
    if offered_per_tick <= 0:
        return 1.0
    return min(1.0, serving / offered_per_tick)


def program_throughput_bound(
    program: CompiledProgram,
    num_pipelines: int,
    mean_packet_bytes: float = MIN_PACKET_BYTES,
    utilization: float = 1.0,
    access_probabilities: Optional[Dict[str, float]] = None,
) -> List[ArrayBound]:
    """Per-array §3.5.2 bounds for a compiled program.

    The program's overall fundamental limit is the minimum bound (1.0
    when the program is stateless).
    """
    access_probabilities = access_probabilities or {}
    bounds = []
    for plan in program.arrays_in_stage_order():
        bound = array_throughput_bound(
            plan.size,
            plan.shardable,
            num_pipelines,
            mean_packet_bytes=mean_packet_bytes,
            utilization=utilization,
            access_probability=access_probabilities.get(plan.name, 1.0),
        )
        serving = min(plan.size, num_pipelines) if plan.shardable else 1
        bounds.append(
            ArrayBound(array=plan.name, serving_pipelines=serving, bound=bound)
        )
    return bounds


def fundamental_limit(
    program: CompiledProgram,
    num_pipelines: int,
    mean_packet_bytes: float = MIN_PACKET_BYTES,
    utilization: float = 1.0,
) -> float:
    """min over arrays of the §3.5.2 bound; 1.0 for stateless programs."""
    bounds = program_throughput_bound(
        program, num_pipelines, mean_packet_bytes, utilization
    )
    if not bounds:
        return 1.0
    return min(b.bound for b in bounds)


def scalar_state_limit(
    num_pipelines: int, mean_packet_bytes: float = MIN_PACKET_BYTES
) -> float:
    """The global-register special case: one pipeline serves everything."""
    return min(1.0, mean_packet_bytes / (MIN_PACKET_BYTES * num_pipelines))
