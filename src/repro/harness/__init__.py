"""Experiment harness: one driver per table/figure of the paper.

* :mod:`repro.harness.table1` — Table 1 (area + clock + SRAM).
* :mod:`repro.harness.sensitivity` — Figure 7a-d sweeps.
* :mod:`repro.harness.microbench` — §4.3.2 D2/D3/D4 microbenchmarks.
* :mod:`repro.harness.realapps` — Figure 8a-d real applications.
* :mod:`repro.harness.chaos` — fault-injection chaos sweep.
* :mod:`repro.harness.parallel` — process-parallel sweep execution.
"""

from .chaos import (
    ChaosPoint,
    ChaosSettings,
    render_chaos,
    run_chaos_sweep,
    schedule_for,
)
from .microbench import (
    D2Result,
    D3Result,
    D4Result,
    MicrobenchSettings,
    render_microbench,
    run_d2,
    run_d3,
    run_d4,
)
from .realapps import (
    RealAppPoint,
    RealAppSettings,
    render_figure8,
    run_application,
    run_figure8,
)
from .parallel import default_jobs, parallel_map, shutdown_pool
from .report import ascii_chart, format_table
from .runall import run_all
from .sensitivity import (
    SensitivityPoint,
    SweepSettings,
    render_sweep,
    sweep_packet_size,
    sweep_pipelines,
    sweep_register_size,
    sweep_stateful_stages,
)
from .table1 import Table1Cell, render_table1, run_table1

__all__ = [
    "ChaosPoint",
    "ChaosSettings",
    "D2Result",
    "D3Result",
    "D4Result",
    "MicrobenchSettings",
    "RealAppPoint",
    "RealAppSettings",
    "SensitivityPoint",
    "SweepSettings",
    "Table1Cell",
    "ascii_chart",
    "default_jobs",
    "format_table",
    "parallel_map",
    "render_chaos",
    "render_figure8",
    "render_microbench",
    "render_sweep",
    "render_table1",
    "run_all",
    "run_application",
    "run_chaos_sweep",
    "schedule_for",
    "run_d2",
    "run_d3",
    "run_d4",
    "run_figure8",
    "run_table1",
    "shutdown_pool",
    "sweep_packet_size",
    "sweep_pipelines",
    "sweep_register_size",
    "sweep_stateful_stages",
]
