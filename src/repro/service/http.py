"""Stdlib-only HTTP/JSON control plane for the switch daemon.

A deliberately small HTTP/1.1 server over ``asyncio`` streams: one
request per connection (``Connection: close``), JSON bodies in and out.
No routing framework, and exactly one piece of content negotiation —
``POST /ingest`` also accepts ``application/x-ndjson``, one packet
record per line, which amortizes framing overhead across a batch (the
fast ingest path :meth:`~repro.service.client.ServiceClient.replay_trace`
uses). The endpoint table in ``docs/service.md`` is the contract, and
:class:`ControlPlane` is a dispatch dict over ``(method, path)`` plus
one pattern route for ``/segments/<i>/results``.

Two response shapes exist:

* **one-shot** — every JSON route and the two raw routes
  (``/segments/<i>/results`` and the OpenMetrics exposition at
  ``/metrics.prom``): read request, write one response, close.
* **streaming** — ``/stream/metrics``, ``/stream/alerts`` and
  ``/stream/health`` hold the connection open and push
  ``text/event-stream`` frames (server-sent events). Each subscriber
  keeps its own cursor into the same segment/window machinery the
  ``?since=`` polling endpoints read, so an SSE stream delivers exactly
  the rows the equivalent poll loop would. Heartbeat comments keep
  idle connections verifiably alive; on daemon shutdown every stream
  flushes pending rows and sends a final ``event: end`` frame.

Errors map onto status codes via :class:`~repro.service.daemon.
ServiceError` (client mistakes: 400/404/409/413/429) and
:class:`~repro.errors.ReproError` (400); anything else is a 500 with
the exception text — the daemon itself never dies on a bad request.
Request and header lines are capped at :data:`MAX_LINE` bytes so a
hostile client cannot buffer unbounded memory through ``readline``.
"""

from __future__ import annotations

import asyncio
import json
import re
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..errors import ReproError
from .daemon import ServiceError, SwitchService

__all__ = ["ControlPlane"]

MAX_BODY = 32 * 1024 * 1024  # JSON ingest batches can be sizeable
MAX_HEADER_LINES = 100
MAX_LINE = 8192  # request line / single header line cap (bytes)

#: Default/floor pacing for SSE subscriber polls, seconds.
STREAM_POLL = 0.05
STREAM_POLL_MIN = 0.005
#: Default idle interval between ``: keepalive`` comments, seconds.
STREAM_HEARTBEAT = 15.0

OPENMETRICS_CTYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"
NDJSON_CTYPE = "application/x-ndjson"

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

_SEGMENT_RESULTS = re.compile(r"/segments/(\d+)/results")


def _qint(query: Dict, key: str, default: int) -> int:
    try:
        return int(query.get(key, [default])[0])
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"query parameter {key!r} must be an integer") from exc


def _qfloat(query: Dict, key: str, default: float) -> float:
    try:
        return float(query.get(key, [default])[0])
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"query parameter {key!r} must be a number") from exc


def _parse_ndjson(body: bytes) -> Dict:
    """NDJSON ingest body → the same payload shape the JSON route
    builds: one packet record per non-blank line, diagnostics carry the
    1-based line number so a client can fix the exact frame."""
    records = []
    for ln, line in enumerate(body.split(b"\n"), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"invalid NDJSON body: line {ln}: {exc}"
            ) from exc
        if not isinstance(record, dict):
            raise ServiceError(
                f"invalid NDJSON body: line {ln}: expected a packet "
                f"object, got {type(record).__name__}"
            )
        records.append(record)
    if not records:
        raise ServiceError("invalid NDJSON body: no packet records")
    return {"packets": records}


def _sse_frame(event: str, payload: Dict) -> bytes:
    data = json.dumps(payload, sort_keys=True)
    return f"event: {event}\ndata: {data}\n\n".encode()


class _MetricsFeed:
    """Per-subscriber cursor over the engine's window series.

    Mirrors a ``/metrics?since=`` poll loop: after each delivered frame
    the cursor advances to the registry's last rolled tick, so the
    concatenation of frames equals the union of the equivalent polls.
    When a segment closes and a new one opens (fresh registry, ticks
    restart) the cursor resets so no early windows are skipped.
    """

    event = "metrics"
    _UNSET = object()

    def __init__(self, svc: SwitchService, since: int):
        self.svc = svc
        self.cursor = since
        self.segment = self._UNSET

    def poll(self) -> Optional[Dict]:
        snap = self.svc.metrics_snapshot(self.cursor)
        segment = snap.get("segment_index")
        if segment != self.segment:
            if self.segment is not self._UNSET and segment is not None:
                self.cursor = -1
                snap = self.svc.metrics_snapshot(self.cursor)
            self.segment = segment
        engine = snap.get("engine")
        if engine is None:
            return None
        if not any(engine["series"].values()) and not any(
            engine["histograms"].values()
        ):
            return None
        self.cursor = engine["cursor"]
        return snap


class _AlertsFeed:
    """Per-subscriber cursor over the merged alert list (same shape as
    ``/alerts?since=``: the cursor is the list index already seen)."""

    event = "alerts"

    def __init__(self, svc: SwitchService, since: int):
        self.svc = svc
        self.cursor = max(0, since)

    def poll(self) -> Optional[Dict]:
        window = self.svc.alerts_window(self.cursor)
        if not window["alerts"]:
            return None
        self.cursor = window["cursor"]
        return window


class _HealthFeed:
    """Emits the ``/health`` document on change (and once on connect)."""

    event = "health"

    def __init__(self, svc: SwitchService, since: int):
        self.svc = svc
        self.last: Optional[str] = None

    def poll(self) -> Optional[Dict]:
        doc = self.svc.health()
        rendered = json.dumps(doc, sort_keys=True)
        if rendered == self.last:
            return None
        self.last = rendered
        return doc


_STREAM_FEEDS = {
    "/stream/metrics": _MetricsFeed,
    "/stream/alerts": _AlertsFeed,
    "/stream/health": _HealthFeed,
}


class ControlPlane:
    """Routes HTTP requests to :class:`SwitchService` operations."""

    def __init__(self, service: SwitchService):
        self.service = service
        self._streams: set = set()  # live SSE handler tasks

    async def drain_streams(self, timeout: float = 5.0):
        """Give open SSE connections a chance to flush and send their
        final ``event: end`` frame (called by the daemon on shutdown,
        after ``_stopping`` is set so every stream loop is exiting)."""
        tasks = [task for task in self._streams if not task.done()]
        if tasks:
            await asyncio.wait(tasks, timeout=timeout)

    async def handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        status, body, raw, ctype = 500, {"error": "internal error"}, None, None
        try:
            method, path, query, payload = await self._read_request(reader)
            if method == "GET" and path in _STREAM_FEEDS:
                # Validate the subscription before any bytes go out so a
                # bad query still gets a proper 400 JSON response.
                feed = _STREAM_FEEDS[path](self.service, _qint(query, "since", -1))
                poll = max(STREAM_POLL_MIN, _qfloat(query, "poll", STREAM_POLL))
                heartbeat = max(poll, _qfloat(query, "heartbeat", STREAM_HEARTBEAT))
                await self._handle_stream(writer, feed, poll, heartbeat)
                return
            status, body, raw, ctype = await self._dispatch(
                method, path, query, payload
            )
        except ServiceError as exc:
            status, body, raw, ctype = exc.status, {"error": str(exc)}, None, None
        except ReproError as exc:
            status, body, raw, ctype = 400, {"error": str(exc)}, None, None
        except (ConnectionError, asyncio.IncompleteReadError):
            writer.close()
            return
        except Exception as exc:  # keep the daemon alive on handler bugs
            status = 500
            body = {"error": f"{type(exc).__name__}: {exc}"}
            raw, ctype = None, None
        data = raw if raw is not None else json.dumps(body, sort_keys=True).encode()
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Status')}\r\n"
            f"Content-Type: {ctype or 'application/json'}\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        try:
            writer.write(head.encode() + data)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def _handle_stream(
        self,
        writer: asyncio.StreamWriter,
        feed,
        poll: float,
        heartbeat: float,
    ):
        """The long-lived branch: headers once, then frames until the
        client disconnects or the daemon stops. All reads happen on the
        event loop via ``feed.poll()`` — no locks, no extra threads."""
        svc = self.service
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n\r\n"
        )
        idle = 0.0
        task = asyncio.current_task()
        if task is not None:
            self._streams.add(task)
        try:
            writer.write(head.encode())
            await writer.drain()
            while not svc._stopping:
                payload = feed.poll()
                if payload is not None:
                    writer.write(_sse_frame(feed.event, payload))
                    await writer.drain()
                    idle = 0.0
                else:
                    idle += poll
                    if idle >= heartbeat:
                        writer.write(b": keepalive\n\n")
                        await writer.drain()
                        idle = 0.0
                if writer.is_closing():
                    return
                await asyncio.sleep(poll)
            # Shutdown: flush whatever rolled since the last frame, then
            # tell the subscriber this was a clean end, not a drop.
            payload = feed.poll()
            if payload is not None:
                writer.write(_sse_frame(feed.event, payload))
            writer.write(b"event: end\ndata: {}\n\n")
            await writer.drain()
        except ConnectionError:
            pass
        except asyncio.CancelledError:
            # Event-loop teardown beat the stream's own shutdown path;
            # exit cleanly rather than surface a cancelled handler task.
            return
        finally:
            if task is not None:
                self._streams.discard(task)
            writer.close()

    async def _read_line(self, reader: asyncio.StreamReader, what: str) -> bytes:
        """One capped ``readline``: oversized lines become a 413 instead
        of buffering whatever a hostile client keeps sending."""
        try:
            line = await reader.readline()
        except ValueError as exc:  # StreamReader limit overrun, no newline
            raise ServiceError(f"{what} line too long", status=413) from exc
        if len(line) > MAX_LINE:
            raise ServiceError(
                f"{what} line exceeds {MAX_LINE} bytes", status=413
            ) from None
        return line

    async def _read_request(self, reader) -> Tuple[str, str, Dict, Optional[Dict]]:
        raw_line = await self._read_line(reader, "request")
        request_line = raw_line.decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            raise ServiceError(f"malformed request line {request_line!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        for _ in range(MAX_HEADER_LINES):
            line = (await self._read_line(reader, "header")).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise ServiceError("too many header lines")
        try:
            length = int(headers.get("content-length", 0) or 0)
        except ValueError as exc:
            raise ServiceError("content-length must be an integer") from exc
        if length > MAX_BODY:
            raise ServiceError("request body too large", status=413)
        split = urlsplit(target)
        query = parse_qs(split.query)
        method = method.upper()
        path = split.path.rstrip("/") or "/"
        payload = None
        if length:
            body = await reader.readexactly(length)
            ctype = headers.get("content-type", "")
            ctype = ctype.partition(";")[0].strip().lower()
            if ctype == NDJSON_CTYPE:
                if (method, path) != ("POST", "/ingest"):
                    raise ServiceError(
                        "NDJSON bodies are only accepted on POST /ingest"
                    )
                payload = _parse_ndjson(body)
            else:
                try:
                    payload = json.loads(body)
                except json.JSONDecodeError as exc:
                    raise ServiceError(f"invalid JSON body: {exc}") from exc
        return method, path, query, payload

    async def _dispatch(
        self, method: str, path: str, query: Dict, payload: Optional[Dict]
    ) -> Tuple[int, Dict, Optional[bytes], Optional[str]]:
        svc = self.service
        match = _SEGMENT_RESULTS.fullmatch(path)
        if match:
            if method != "GET":
                raise ServiceError("method not allowed", status=405)
            return 200, {}, svc.segment_results(int(match.group(1))).encode(), None

        key = (method, path)
        if key == ("GET", "/health"):
            return 200, svc.health(), None, None
        if key == ("GET", "/status"):
            return 200, svc.status(), None, None
        if key == ("GET", "/metrics"):
            return 200, svc.metrics_snapshot(_qint(query, "since", -1)), None, None
        if key == ("GET", "/metrics.prom"):
            return 200, {}, svc.openmetrics().encode(), OPENMETRICS_CTYPE
        if key == ("GET", "/alerts"):
            return 200, svc.alerts_window(_qint(query, "since", 0)), None, None
        if key == ("GET", "/segments"):
            return 200, svc.segments_view(), None, None
        if key == ("POST", "/program"):
            return 200, await svc.load_program(payload or {}), None, None
        if key == ("POST", "/faults"):
            return 200, await svc.attach_faults(payload or {}), None, None
        if key == ("DELETE", "/faults"):
            return 200, await svc.detach_faults(), None, None
        if key == ("POST", "/monitor"):
            enabled = bool((payload or {}).get("enabled", True))
            return 200, await svc.set_monitor(enabled), None, None
        if key == ("POST", "/config"):
            return 200, await svc.configure(payload or {}), None, None
        if key == ("POST", "/ingest"):
            return 200, svc.ingest((payload or {}).get("packets", [])), None, None
        if key == ("POST", "/replay"):
            return 200, await svc.replay(payload or {}), None, None
        if key == ("POST", "/pause"):
            return 200, await svc.pause(), None, None
        if key == ("POST", "/resume"):
            return 200, await svc.resume(), None, None
        if key == ("POST", "/drain"):
            record = await svc.quiesce()
            return 200, {"closed_segment": record}, None, None
        if key == ("POST", "/shutdown"):
            record = await svc.shutdown()
            return 200, {"stopped": True, "closed_segment": record}, None, None
        raise ServiceError(f"no route for {method} {path}", status=404)
