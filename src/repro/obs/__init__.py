"""Observability for the MP5 engine: tracing, metrics, profiling.

Three independent, individually attachable layers::

    from repro.obs import MetricsRegistry, PhaseProfiler, TraceRecorder

    recorder = TraceRecorder()
    metrics = MetricsRegistry(window=100)
    profiler = PhaseProfiler()
    stats, _ = run_mp5(
        program, trace, config,
        recorder=recorder, metrics=metrics, profiler=profiler,
    )
    write_chrome(recorder.events, "run.trace.json")  # open in Perfetto
    metrics.save("metrics.json")
    print(profiler.report())

Everything is gated behind a single attribute check in the engine: with
nothing attached, the fast path executes the same code it does today.
The scalar engines emit events live, tick by tick; the vector engine
reconstructs the identical stream from its epoch schedule after the
closed-form run (:mod:`repro.obs.reconstruct`), so all three engines
honor the same contract. See ``docs/observability.md`` for the event
schema and workflows.
"""

from .alerts import (
    Alert,
    AlertLog,
    AnomalyDetector,
    DetectorConfig,
    SEVERITIES,
)
from .events import EVENT_TYPES, canonical_form, events_by_tick
from .export import (
    load_metrics_document,
    parse_openmetrics,
    render_openmetrics,
    sanitize_metric_name,
)
from .health import (
    HealthReport,
    VERDICTS,
    render_health_timeline,
    spark_row,
    worst_verdict,
)
from .metrics import Counter, Gauge, MetricsRegistry, WindowedHistogram
from .monitor import INVARIANTS, InvariantMonitor, TeeEmitter
from .profiler import PhaseProfiler
from .reconstruct import replay_observability, synthesize_events
from .summary import (
    render_alerts_section,
    render_epoch_section,
    render_trace_summary,
    summarize_trace,
)
from .top import TopModel, render_top_frame
from .trace import (
    TraceRecorder,
    chrome_trace,
    events_from_chrome,
    load_trace,
    read_jsonl,
    write_chrome,
    write_jsonl,
)

__all__ = [
    "Alert",
    "AlertLog",
    "AnomalyDetector",
    "Counter",
    "DetectorConfig",
    "EVENT_TYPES",
    "Gauge",
    "HealthReport",
    "INVARIANTS",
    "InvariantMonitor",
    "MetricsRegistry",
    "PhaseProfiler",
    "SEVERITIES",
    "TeeEmitter",
    "TopModel",
    "TraceRecorder",
    "VERDICTS",
    "WindowedHistogram",
    "canonical_form",
    "chrome_trace",
    "events_by_tick",
    "events_from_chrome",
    "load_metrics_document",
    "load_trace",
    "parse_openmetrics",
    "read_jsonl",
    "render_alerts_section",
    "render_epoch_section",
    "render_health_timeline",
    "render_openmetrics",
    "render_top_frame",
    "render_trace_summary",
    "replay_observability",
    "sanitize_metric_name",
    "spark_row",
    "summarize_trace",
    "synthesize_events",
    "worst_verdict",
    "write_chrome",
    "write_jsonl",
]
