"""Tests for the application catalog (§4.4)."""

import pytest

from repro.apps import (
    ALL_APPS,
    CONGA,
    FIGURE8_APPS,
    FLOWLET,
    SEQUENCER,
    WFQ,
    get_application,
)
from repro.mp5 import MP5Config, MP5Switch


class TestCatalog:
    def test_figure8_apps_in_order(self):
        assert [a.name for a in FIGURE8_APPS] == [
            "flowlet",
            "conga",
            "wfq",
            "sequencer",
        ]

    def test_get_application(self):
        assert get_application("flowlet") is FLOWLET

    def test_unknown_application(self):
        with pytest.raises(KeyError, match="available"):
            get_application("nope")

    @pytest.mark.parametrize("app", list(ALL_APPS.values()), ids=lambda a: a.name)
    def test_every_app_compiles(self, app):
        compiled = app.compile()
        assert compiled.stage_count <= compiled.target.num_stages

    @pytest.mark.parametrize("app", FIGURE8_APPS, ids=lambda a: a.name)
    def test_workload_provides_required_fields(self, app):
        program = app.compile()
        packets = app.workload(50, 2, seed=0)
        for pkt in packets:
            for field in program.packet_fields:
                assert field in pkt.headers, (app.name, field)

    def test_workload_deterministic(self):
        a = FLOWLET.workload(30, 2, seed=9)
        b = FLOWLET.workload(30, 2, seed=9)
        assert [p.headers for p in a] == [p.headers for p in b]

    def test_workload_sizes_bimodal_bounded(self):
        packets = CONGA.workload(100, 2, seed=0)
        assert all(64 <= p.size_bytes <= 1400 for p in packets)


class TestAppExecution:
    @pytest.mark.parametrize("app", FIGURE8_APPS, ids=lambda a: a.name)
    def test_runs_at_line_rate_on_four_pipelines(self, app):
        program = app.compile()
        trace = app.workload(1500, 4, seed=1)
        switch = MP5Switch(program, MP5Config(num_pipelines=4))
        stats = switch.run(trace)
        assert stats.throughput_normalized() > 0.97, app.name
        assert stats.dropped == 0

    def test_wfq_start_times_monotone_per_flow(self):
        program = WFQ.compile()
        packets = WFQ.workload(800, 2, seed=2)
        switch = MP5Switch(program, MP5Config(num_pipelines=2))
        switch.run(packets)
        by_flow = {}
        for pkt in packets:
            if pkt.egress_tick is None:
                continue
            by_flow.setdefault(pkt.flow_id, []).append(pkt)
        for flow_packets in by_flow.values():
            flow_packets.sort(key=lambda p: p.pkt_id)
            starts = [p.headers["start"] for p in flow_packets]
            assert starts == sorted(starts)

    def test_sequencer_unique_stamps(self):
        program = SEQUENCER.compile()
        packets = SEQUENCER.workload(600, 4, seed=3)
        switch = MP5Switch(program, MP5Config(num_pipelines=4))
        switch.run(packets)
        stamps = [p.headers["seq"] for p in packets if p.egress_tick is not None]
        assert len(stamps) == len(set(stamps))
        assert sorted(stamps) == list(range(1, len(stamps) + 1))
