"""Synthetic programs and traces for the sensitivity analysis (§4.3).

The paper's sensitivity simulator uses a parameterized configuration: a
64-port, 16-stage switch with m stateful stages, each holding one
register array of a given size, every packet accessing one index per
stateful stage. We express that configuration as a *generated Domino
program* so the sensitivity experiments exercise the same compiler and
runtime paths as the real applications:

    struct Packet { int idx0; ... int idxm; };
    int reg0[N] = {0}; ...
    void func(struct Packet p) {
        reg0[p.idx0] = reg0[p.idx0] + 1;
        ...
    }

Index header fields are filled by the workload from a uniform or skewed
(95% of packets -> 30% of states) access pattern.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..compiler import BanzaiTarget, CompiledProgram, compile_program
from ..errors import ConfigError
from ..mp5.packet import DataPacket
from .distributions import SkewedAccess, UniformAccess
from .traffic import line_rate_trace


def synthetic_source(num_stateful: int, register_size: int) -> str:
    """Domino source text of the m-stage counter program."""
    if num_stateful < 0:
        raise ConfigError("num_stateful must be >= 0")
    if register_size < 1:
        raise ConfigError("register_size must be >= 1")
    fields = [f"    int idx{i};" for i in range(max(num_stateful, 1))]
    fields.append("    int out;")
    regs = [
        f"int reg{i}[{register_size}] = {{0}};" for i in range(num_stateful)
    ]
    body = [
        f"    reg{i}[p.idx{i}] = reg{i}[p.idx{i}] + 1;" for i in range(num_stateful)
    ]
    if not body:
        body = ["    p.out = p.idx0 + 1;"]
    return (
        "struct Packet {\n"
        + "\n".join(fields)
        + "\n};\n\n"
        + "\n".join(regs)
        + ("\n\n" if regs else "")
        + "void func(struct Packet p) {\n"
        + "\n".join(body)
        + "\n}\n"
    )


def make_sensitivity_program(
    num_stateful: int = 4,
    register_size: int = 512,
    num_stages: int = 16,
) -> CompiledProgram:
    """Compile the synthetic program onto an ``num_stages``-stage target."""
    target = BanzaiTarget(num_stages=num_stages, name=f"sensitivity-{num_stages}")
    return compile_program(
        synthetic_source(num_stateful, register_size),
        target=target,
        name=f"synthetic_m{num_stateful}_r{register_size}",
    )


def make_access_pattern(kind: str, register_size: int):
    """'uniform' or 'skewed' index generator (§4.3.1)."""
    if kind == "uniform":
        return UniformAccess(register_size)
    if kind == "skewed":
        return SkewedAccess(register_size)
    raise ConfigError(f"unknown access pattern {kind!r}")


def sensitivity_trace(
    num_packets: int,
    num_pipelines: int,
    num_stateful: int,
    register_size: int,
    pattern: str = "uniform",
    packet_size: int = 64,
    seed: int = 0,
    num_ports: int = 64,
) -> List[DataPacket]:
    """A line-rate trace whose headers carry per-stage register indexes."""
    sampler = make_access_pattern(pattern, register_size)
    field_count = max(num_stateful, 1)

    def headers(rng: np.random.Generator, _i: int) -> Dict[str, int]:
        return {f"idx{j}": sampler.sample(rng) for j in range(field_count)}

    return line_rate_trace(
        num_packets,
        num_pipelines,
        headers,
        packet_size=packet_size,
        num_ports=num_ports,
        seed=seed,
    )
