"""Tests for the one-shot reproduction orchestrator."""

import json

import pytest

from repro.harness import run_all
from repro.harness.runall import SCALES


class TestRunAll:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("results")
        messages = []
        artifacts = run_all(
            out_dir=str(out), scale="tiny", progress=messages.append
        )
        return out, artifacts, messages

    def test_all_artifacts_present(self, artifacts):
        _out, rendered, _messages = artifacts
        assert set(rendered) == {
            "table1",
            "microbench",
            "fig7a",
            "fig7b",
            "fig7c",
            "fig7d",
            "fig8",
        }

    def test_files_written(self, artifacts):
        out, rendered, _messages = artifacts
        for name in rendered:
            assert (out / f"{name}.txt").exists()
        assert (out / "results.json").exists()

    def test_structured_results_parse(self, artifacts):
        out, _rendered, _messages = artifacts
        data = json.loads((out / "results.json").read_text())
        assert data["scale"] == "tiny"
        assert len(data["table1"]) == 12
        assert len(data["fig7a"]) == 5
        assert set(data["fig8"]) == {"flowlet", "conga", "wfq", "sequencer"}

    def test_progress_reported(self, artifacts):
        _out, _rendered, messages = artifacts
        assert any("Table 1" in m for m in messages)
        assert any("Figure 8" in m for m in messages)

    def test_rendered_tables_contain_numbers(self, artifacts):
        _out, rendered, _messages = artifacts
        assert "1 GHz" in rendered["table1"]
        assert "pipelines" in rendered["fig7a"]
        assert "D4" in rendered["microbench"]

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            run_all(scale="huge")

    def test_scales_defined(self):
        assert set(SCALES) == {"tiny", "small", "full"}
