"""The application catalog: the four §4.4 programs plus extras.

Each entry binds a bundled Domino program to the header fields its
packets need, generated on top of the flow-structured web-search
workload. The four headline applications are exactly those of Figure 8:
flowlet switching [30], CONGA [1], WFQ priority computation [32], and
the network sequencer [22].
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..mp5.packet import DataPacket
from .base import Application


def _flowlet_fields(rng: np.random.Generator, pkt: DataPacket) -> Dict[str, int]:
    return {
        # Coarse arrival clock: flowlets are delimited by inter-packet
        # gaps measured in these units.
        "arrival": int(pkt.arrival),
        "new_hop": 0,
        "next_hop": 0,
        "id": 0,
    }


def _conga_fields(rng: np.random.Generator, pkt: DataPacket) -> Dict[str, int]:
    path = int(rng.integers(0, 8))
    # Path utilization feedback: correlated with path id plus noise, as a
    # stand-in for the fabric's congestion metric.
    util = int((path * 7 + rng.integers(0, 40)) % 100)
    return {"path_id": path, "util": util}


def _wfq_fields(rng: np.random.Generator, pkt: DataPacket) -> Dict[str, int]:
    return {"length": pkt.size_bytes, "start": 0, "id": 0}


def _sequencer_fields(rng: np.random.Generator, pkt: DataPacket) -> Dict[str, int]:
    return {"seq": 0}


def _heavy_hitter_fields(rng: np.random.Generator, pkt: DataPacket) -> Dict[str, int]:
    return {"src_ip": (pkt.flow_id or 0) % 4096, "hot": 0}


class _FirewallFields:
    """SYN on the first packet of each flow; stateless for the rest.

    Tracks seen flows per workload run (a new trace starts at packet id
    zero, which resets the tracker).
    """

    def __init__(self):
        self._seen = set()

    def __call__(self, rng: np.random.Generator, pkt: DataPacket) -> Dict[str, int]:
        if pkt.pkt_id == 0:
            self._seen = set()
        flow = pkt.flow_id or 0
        first = flow not in self._seen
        self._seen.add(flow)
        return {
            "src_ip": flow % 65536,
            "dst_ip": (flow * 31 + 7) % 65536,
            "syn": 1 if first else 0,
            "allowed": 0,
        }


_firewall_fields = _FirewallFields()


FLOWLET = Application(
    name="flowlet",
    program_name="flowlet",
    extra_fields=_flowlet_fields,
    description="Flowlet switching [30]: per-flow next-hop pinned per burst",
)

CONGA = Application(
    name="conga",
    program_name="conga",
    extra_fields=_conga_fields,
    description="CONGA [1] leaf: best-path utilization tracking",
)

WFQ = Application(
    name="wfq",
    program_name="wfq",
    extra_fields=_wfq_fields,
    description="WFQ/STFQ [32]: per-flow virtual start-time computation",
)

SEQUENCER = Application(
    name="sequencer",
    program_name="sequencer",
    extra_fields=_sequencer_fields,
    description="Network sequencer [22]: global ordering stamp",
)

HEAVY_HITTER = Application(
    name="heavy_hitter",
    program_name="heavy_hitter",
    extra_fields=_heavy_hitter_fields,
    description="Per-source packet counting sketch (DDoS/heavy hitters)",
)

FIREWALL = Application(
    name="stateful_firewall",
    program_name="stateful_firewall",
    extra_fields=_firewall_fields,
    description="Stateful firewall: SYN packets write, the rest read",
)

# The four applications of Figure 8, in figure order.
FIGURE8_APPS: List[Application] = [FLOWLET, CONGA, WFQ, SEQUENCER]

ALL_APPS: Dict[str, Application] = {
    app.name: app
    for app in [FLOWLET, CONGA, WFQ, SEQUENCER, HEAVY_HITTER, FIREWALL]
}


def get_application(name: str) -> Application:
    try:
        return ALL_APPS[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; available: {sorted(ALL_APPS)}"
        ) from None
