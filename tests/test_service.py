"""The long-lived switch service (:mod:`repro.service`).

Four contract layers:

* **streaming layer** — the pausable run loop (start/feed/pump/finish)
  is byte-identical to the one-shot ``run()`` no matter how arrivals
  are chunked, on both scalar engines;
* **determinism layer** — a served run (ingest over HTTP → hot-swap at
  tick T → drain) produces segment payloads byte-identical to the
  equivalent pair of offline runs, on the fast and vector engines;
* **operations layer** — mid-traffic fault attach reproduces the
  offline ``run --faults --monitor`` alert stream, /health walks
  ok → degraded → ok across an emergency-remap fault window, and
  shutdown drains every FIFO;
* **control layer** — backpressure (HTTP 429), arrival-order rejection
  (409), validate-only compiles, and remap retunes.

Each test boots the real daemon (ephemeral port) through
:class:`ServiceThread` and drives it with the stdlib client — the same
path the CLI and CI smoke use.
"""

import json
import socket
import threading
import time

import pytest

from repro.compiler import compile_program
from repro.faults import FaultSchedule
from repro.mp5 import (
    ENGINES,
    MP5Config,
    MP5Switch,
    ReferenceSwitch,
    VectorSwitch,
)
from repro.obs.monitor import InvariantMonitor
from repro.service import (
    ServiceThread,
    SwitchService,
    render_payload,
    segment_payload,
)
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.daemon import random_headers
from repro.workloads.traceio import packet_to_dict
from repro.workloads.traffic import clone_packets, line_rate_trace

PIPELINES = 4


def make_trace(program_name: str, packets: int, seed: int = 11):
    program = compile_program(program_name)
    return line_rate_trace(
        packets, PIPELINES, random_headers(program), seed=seed
    )


def records_of(packets):
    return [packet_to_dict(p) for p in packets]


def offline_payload(engine: str, program_name: str, packets, config, **sinks):
    """What an offline ``run`` invocation freezes for these packets."""
    stats, registers = ENGINES[engine](
        compile_program(program_name), clone_packets(packets), config, **sinks
    )
    return render_payload(segment_payload(stats, registers))


def serve(**kwargs):
    service = SwitchService(
        config=MP5Config(num_pipelines=PIPELINES, seed=5), **kwargs
    )
    return service, ServiceThread(service)


def client_of(thread: ServiceThread) -> ServiceClient:
    host, port = thread.address
    return ServiceClient(host, port, timeout=30)


# ----------------------------------------------------------------------
# Streaming layer: start/feed/pump/finish vs run()
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "engine_cls", [MP5Switch, ReferenceSwitch, VectorSwitch]
)
@pytest.mark.parametrize("chunk", [1, 7, 64, 1000])
def test_chunked_feeding_matches_run(engine_cls, chunk):
    """Any feed batching, with gated pumping in between, is
    byte-identical to the one-shot run loop — on all three engines,
    the vector engine's epoch streaming included."""
    program = compile_program("heavy_hitter")
    config = MP5Config(num_pipelines=PIPELINES, seed=5)
    trace = make_trace("heavy_hitter", 300)

    reference = engine_cls(program, config)
    ref_stats = reference.run(clone_packets(trace))

    streamed = engine_cls(program, config)
    streamed.start()
    chunks = [trace[i : i + chunk] for i in range(0, len(trace), chunk)]
    for part in chunks:
        streamed.feed(clone_packets(part))
        streamed.pump(until_tick=streamed.ingest_watermark)
    streamed.pump()  # drain past the last watermark
    stream_stats = streamed.finish()

    assert stream_stats.summary() == ref_stats.summary()
    assert streamed.registers == reference.registers


def test_feed_rejects_non_monotone_batches():
    program = compile_program("heavy_hitter")
    switch = MP5Switch(program, MP5Config(num_pipelines=PIPELINES))
    switch.start()
    trace = make_trace("heavy_hitter", 40)
    switch.feed(trace[20:])
    from repro.errors import ConfigError

    with pytest.raises(ConfigError, match="monotone"):
        switch.feed(trace[:20])


# ----------------------------------------------------------------------
# Determinism layer: served hot-swap == two offline runs
# ----------------------------------------------------------------------


@pytest.mark.parametrize("engine", ["fast", "vector"])
def test_hot_swap_determinism(engine):
    """Ingest a trace, hot-swap the program at tick T, drain: each
    served segment is byte-identical to the equivalent offline run."""
    swap_tick = 40
    trace = make_trace("heavy_hitter", 600)
    part1 = [p for p in trace if p.arrival < swap_tick]
    part2 = [p for p in trace if p.arrival >= swap_tick]
    assert part1 and part2

    service, thread = serve(program="heavy_hitter", engine=engine)
    with thread:
        client = client_of(thread)
        # ragged chunk sizes: determinism may not depend on batching
        records = records_of(part1)
        for lo, hi in [(0, 13), (13, 100), (100, len(records))]:
            client.ingest(records[lo:hi])
        client.wait_settled()
        swap = client.load_program("flowlet")
        assert swap["swapped"] and swap["closed_segment"] == 0
        client.ingest(records_of(part2))
        client.wait_settled()
        record = client.drain()["closed_segment"]
        assert record["index"] == 1 and record["drained"]
        served1 = client.segment_results(0)
        served2 = client.segment_results(1)
        client.shutdown()

    config = MP5Config(num_pipelines=PIPELINES, seed=5)
    assert served1 == offline_payload(engine, "heavy_hitter", part1, config)
    assert served2 == offline_payload(engine, "flowlet", part2, config)


def test_segment_results_are_canonical_json():
    service, thread = serve(program="heavy_hitter")
    with thread:
        client = client_of(thread)
        client.ingest(records_of(make_trace("heavy_hitter", 60)))
        client.drain()
        raw = client.segment_results(0)
        payload = json.loads(raw)
        assert set(payload) == {"stats", "drops_by_reason", "registers"}
        assert render_payload(payload) == raw
        with pytest.raises(ServiceClientError) as err:
            client.segment_results(7)
        assert err.value.status == 404
        client.shutdown()


# ----------------------------------------------------------------------
# Operations layer: faults, health, shutdown
# ----------------------------------------------------------------------

STALL_SCHEDULE = {
    "format": "mp5-fault-schedule",
    "version": 1,
    "degradation": {
        "enabled": True,
        "drain_ticks": 4,
        "retry_backoff": 16,
        "max_retries": 8,
    },
    "faults": [
        {
            "kind": "pipeline_stall",
            "pipeline": 1,
            "start": 10,
            "duration": 30,
            "service_rate": 0.0,
            "degrade": True,
        }
    ],
}


def test_mid_traffic_fault_attach_matches_offline_alerts():
    """Attaching a schedule mid-traffic quiesces, and the next segment's
    alert stream equals an offline ``run --faults --monitor``."""
    clean = make_trace("heavy_hitter", 120, seed=3)
    faulted = make_trace("heavy_hitter", 400, seed=4)
    schedule_path = "examples/faults/crossbar.json"

    service, thread = serve(program="heavy_hitter", monitor=True)
    with thread:
        client = client_of(thread)
        client.ingest(records_of(clean))
        client.wait_settled()
        attach = client.attach_faults(path=schedule_path)
        assert attach["attached"] and attach["closed_segment"] == 0
        client.ingest(records_of(faulted))
        client.wait_settled()
        record = client.drain()["closed_segment"]
        served_alerts = client.alerts()["alerts"]
        # cursor polling: everything already consumed
        window = client.alerts(since=len(served_alerts))
        assert window["alerts"] == []
        assert window["cursor"] == len(served_alerts)
        assert record["health"] is not None
        client.shutdown()

    monitor = InvariantMonitor()
    ENGINES["fast"](
        compile_program("heavy_hitter"),
        clone_packets(faulted),
        MP5Config(num_pipelines=PIPELINES, seed=5),
        faults=FaultSchedule.load(schedule_path),
        monitor=monitor,
    )
    offline_alerts = monitor.alerts.to_dicts()
    assert offline_alerts, "crossbar schedule must raise alerts"
    assert served_alerts == offline_alerts


def test_health_ok_degraded_ok_under_emergency_remap():
    """/health walks ok → degraded (open fault window + emergency
    remap) → ok once the window passes and the segment drains."""
    trace = make_trace("heavy_hitter", 240, seed=9)
    part1 = [p for p in trace if p.arrival < 20]
    part2 = [p for p in trace if p.arrival >= 20]

    service, thread = serve(program="heavy_hitter")
    with thread:
        client = client_of(thread)
        assert client.health()["verdict"] == "ok"
        client.attach_faults(schedule=STALL_SCHEDULE)

        client.ingest(records_of(part1))
        client.wait_settled()  # engine parked at the tick-20 watermark
        health = client.health()
        assert health["verdict"] == "degraded", health
        assert any("fault window" in r for r in health["reasons"])

        client.ingest(records_of(part2))
        record = client.drain()["closed_segment"]
        payload = json.loads(client.segment_results(record["index"]))
        assert payload["stats"]["emergency_remap_moves"] > 0
        assert client.health()["verdict"] == "ok"

        # non-trivially ok: a fresh fault-free segment mid-flight
        client.detach_faults()
        client.ingest(records_of(make_trace("heavy_hitter", 40, seed=2)))
        client.wait_settled()
        health = client.health()
        assert health["verdict"] == "ok" and health["segment_open"]
        client.shutdown()


def test_graceful_shutdown_drains_fifos():
    trace = make_trace("heavy_hitter", 500, seed=6)
    service, thread = serve(program="heavy_hitter")
    with thread:
        client = client_of(thread)
        client.ingest(records_of(trace))
        final = client.shutdown()["closed_segment"]
    assert final["offered"] == len(trace)
    assert final["drained"]
    assert final["egressed"] + final["dropped"] == final["offered"]
    # the payload survives shutdown on the service object
    payload = json.loads(service.segment_results(0))
    assert payload["stats"]["offered"] == len(trace)


# ----------------------------------------------------------------------
# Control layer: backpressure, ordering, validation, retunes
# ----------------------------------------------------------------------


def test_ingest_backpressure_returns_429():
    trace = make_trace("heavy_hitter", 120)
    batches = [records_of(trace[i : i + 20]) for i in range(0, 120, 20)]
    service, thread = serve(program="heavy_hitter", queue_depth=2)
    with thread:
        client = client_of(thread)
        client.pause()  # nothing drains: the queue must fill
        client.ingest(batches[0])
        client.ingest(batches[1])
        with pytest.raises(ServiceClientError) as err:
            client.ingest(batches[2])
        assert err.value.status == 429
        assert "queue full" in err.value.message
        assert client.status()["rejected"] == 20
        client.resume()
        client.wait_settled()
        record = client.drain()["closed_segment"]
        assert record["offered"] == 40  # only the accepted batches ran
        client.shutdown()


def test_out_of_order_batch_rejected_and_reset_by_drain():
    trace = make_trace("heavy_hitter", 80)
    service, thread = serve(program="heavy_hitter")
    with thread:
        client = client_of(thread)
        client.ingest(records_of(trace[40:]))
        with pytest.raises(ServiceClientError) as err:
            client.ingest(records_of(trace[:40]))
        assert err.value.status == 409
        assert "monotone" in err.value.message
        client.drain()  # closes the segment, resets the arrival clock
        client.ingest(records_of(trace[:40]))
        client.wait_settled()
        record = client.drain()["closed_segment"]
        assert record["offered"] == 40
        client.shutdown()


def test_program_validate_only_and_compile_errors():
    service, thread = serve(program="heavy_hitter")
    with thread:
        client = client_of(thread)
        out = client.load_program("flowlet", validate_only=True)
        assert out["validated"] and not out["swapped"]
        assert client.status()["program"] == "heavy_hitter"
        with pytest.raises(ServiceClientError) as err:
            client.load_program(source="int x = ;;;", name="broken")
        assert err.value.status == 400
        assert "compile failed" in err.value.message
        assert client.status()["program"] == "heavy_hitter"
        client.shutdown()


def test_retune_remap_policy_closes_segment():
    service, thread = serve(program="heavy_hitter")
    with thread:
        client = client_of(thread)
        client.ingest(records_of(make_trace("heavy_hitter", 60)))
        client.wait_settled()
        out = client.configure(remap_period=50, remap_algorithm="optimal")
        assert out["closed_segment"] == 0
        assert out["config"]["remap_period"] == 50
        status = client.status()
        assert status["config"]["remap_algorithm"] == "optimal"
        with pytest.raises(ServiceClientError) as err:
            client.configure(bogus_knob=1)
        assert err.value.status == 400
        with pytest.raises(ServiceClientError) as err:
            client.configure(remap_algorithm="nonsense")
        assert err.value.status == 400
        client.shutdown()


def test_fault_schedule_validated_against_pipelines():
    bad = {
        "format": "mp5-fault-schedule",
        "version": 1,
        "faults": [
            {
                "kind": "pipeline_stall",
                "pipeline": 9,
                "start": 0,
                "duration": 5,
            }
        ],
    }
    service, thread = serve(program="heavy_hitter")
    with thread:
        client = client_of(thread)
        with pytest.raises(ServiceClientError) as err:
            client.attach_faults(schedule=bad)
        assert err.value.status == 400
        assert "out of range" in err.value.message
        client.shutdown()


# ----------------------------------------------------------------------
# Fast ingest path: NDJSON framing, and the served vector engine
# ----------------------------------------------------------------------


def test_ndjson_ingest_equals_json_ingest():
    """The NDJSON framing is pure transport: segments fed through
    ``ingest_ndjson``/``replay_trace`` are byte-identical to JSON-body
    ingest and to the offline run."""
    trace = make_trace("heavy_hitter", 300)
    records = records_of(trace)
    service, thread = serve(program="heavy_hitter")
    with thread:
        client = client_of(thread)
        client.ingest(records)
        client.drain()
        sent = client.replay_trace(records, chunk=64)
        assert sent["sent"] == len(records)
        record = client.drain()["closed_segment"]
        assert record["drained"]
        json_served = client.segment_results(0)
        ndjson_served = client.segment_results(1)
        client.shutdown()
    assert ndjson_served == json_served
    config = MP5Config(num_pipelines=PIPELINES, seed=5)
    assert json_served == offline_payload("fast", "heavy_hitter", trace, config)


def test_ndjson_malformed_frames_rejected_with_line_numbers():
    service, thread = serve(program="heavy_hitter")
    with thread:
        client = client_of(thread)
        good = json.dumps(records_of(make_trace("heavy_hitter", 1))[0])

        def post(body: bytes):
            return client._request(
                "POST", "/ingest", data=body,
                content_type="application/x-ndjson",
            )

        with pytest.raises(ServiceClientError) as err:
            post(good.encode() + b"\nnot json\n")
        assert err.value.status == 400
        assert "line 2" in err.value.message
        with pytest.raises(ServiceClientError) as err:
            post(good.encode() + b"\n[1, 2]\n")
        assert err.value.status == 400
        assert "line 2" in err.value.message and "object" in err.value.message
        with pytest.raises(ServiceClientError) as err:
            post(b"\n  \n")
        assert err.value.status == 400
        assert "no packet records" in err.value.message
        # NDJSON bodies are only negotiated on POST /ingest.
        with pytest.raises(ServiceClientError) as err:
            client._request(
                "POST", "/replay", data=b'{"packets": 10}\n',
                content_type="application/x-ndjson",
            )
        assert err.value.status == 400
        assert "only accepted on POST /ingest" in err.value.message
        # The daemon survives all of it, and blank-padded valid NDJSON
        # still ingests.
        out = post(b"\n" + good.encode() + b"\n\n")
        assert out["queued"] == 1
        client.shutdown()


def test_vector_served_segment_streams_before_drain():
    """The tentpole, end to end: a ``--engine vector`` service egresses
    packets while the segment is still open (first egress well before
    drain), exposes the watermark and first-egress-latency gauges, and
    the drained segment is byte-identical to the offline batch run."""
    from repro.obs.export import parse_openmetrics

    trace = make_trace("heavy_hitter", 900, seed=7)
    records = records_of(trace)
    service, thread = serve(program="heavy_hitter", engine="vector")
    with thread:
        client = client_of(thread)
        for lo in range(0, len(records), 150):
            client.ingest(records[lo : lo + 150])
            client.wait_settled()
        status = client.status()
        segment = status["segment"]
        assert segment["streaming"] and segment["engine"] == "vector"
        assert segment["egressed"] > 0, "no egress before drain"
        assert segment["watermark"] > 0
        metrics = client.metrics()["service"]
        assert metrics["watermark"] == segment["watermark"]
        assert metrics["first_egress_latency"] is not None
        stream = metrics["stream"]
        assert stream["epochs_serviced"] > 0
        assert 0 < stream["peak_buffered"] < len(records)
        families = parse_openmetrics(client.metrics_prom())
        assert families["mp5_service_watermark"]["samples"][0][2] == (
            segment["watermark"]
        )
        assert (
            families["mp5_service_first_egress_latency_seconds"]["samples"][0][2]
            >= 0
        )
        record = client.drain()["closed_segment"]
        assert record["engine"] == "vector" and record["drained"]
        served = client.segment_results(0)
        # the latency gauge survives segment close
        closed = client.metrics()["service"]
        assert closed["first_egress_latency"] is not None
        client.shutdown()
    config = MP5Config(num_pipelines=PIPELINES, seed=5)
    assert served == offline_payload("vector", "heavy_hitter", trace, config)


@pytest.mark.parametrize("chunk", [37, 150, 900])
def test_vector_served_chunking_invariance(chunk):
    """Served vector segments are byte-identical at every chunking —
    the PR 8 determinism contract now covers the third engine."""
    trace = make_trace("heavy_hitter", 900, seed=8)
    records = records_of(trace)
    service, thread = serve(program="heavy_hitter", engine="vector")
    with thread:
        client = client_of(thread)
        for lo in range(0, len(records), chunk):
            client.ingest(records[lo : lo + chunk])
        client.wait_settled()
        record = client.drain()["closed_segment"]
        assert record["drained"]
        served = client.segment_results(0)
        client.shutdown()
    config = MP5Config(num_pipelines=PIPELINES, seed=5)
    assert served == offline_payload("vector", "heavy_hitter", trace, config)


def test_vector_service_fault_attach_falls_back_to_fast():
    """Mid-stream fault attach on a vector service: the open vector
    segment closes clean, the next segment runs on the fast engine
    (same ladder as ``run_mp5_vector``) with faults live, and detaching
    returns to the vector engine."""
    clean = make_trace("heavy_hitter", 200, seed=3)
    faulted = make_trace("heavy_hitter", 400, seed=4)
    schedule_path = "examples/faults/crossbar.json"

    service, thread = serve(
        program="heavy_hitter", engine="vector", monitor=True
    )
    with thread:
        client = client_of(thread)
        client.ingest(records_of(clean))
        client.wait_settled()
        attach = client.attach_faults(path=schedule_path)
        assert attach["attached"] and attach["closed_segment"] == 0
        client.ingest(records_of(faulted))
        client.wait_settled()
        client.drain()
        served_alerts = client.alerts()["alerts"]
        segments = client.segments()["segments"]
        client.detach_faults()
        client.ingest(records_of(make_trace("heavy_hitter", 40, seed=2)))
        final = client.drain()["closed_segment"]
        client.shutdown()

    assert segments[0]["engine"] == "vector"
    assert segments[1]["engine"] == "fast"
    assert final["engine"] == "vector"
    monitor = InvariantMonitor()
    ENGINES["fast"](
        compile_program("heavy_hitter"),
        clone_packets(faulted),
        MP5Config(num_pipelines=PIPELINES, seed=5),
        faults=FaultSchedule.load(schedule_path),
        monitor=monitor,
    )
    assert served_alerts == monitor.alerts.to_dicts()
    assert served_alerts, "crossbar schedule must raise alerts"


# ----------------------------------------------------------------------
# Streaming telemetry: SSE push, OpenMetrics exposition, retention
# ----------------------------------------------------------------------


def _collect(iterator, sink):
    for payload in iterator:
        sink.append(payload)


def _merge_engine(target, snap):
    """Accumulate one /metrics document's engine rows into ``target``
    (the union a cursor-poll loop builds up)."""
    engine = snap.get("engine")
    if engine is None:
        return
    for name, rows in engine["series"].items():
        target.setdefault("series", {}).setdefault(name, []).extend(rows)
    for name, rows in engine["histograms"].items():
        target.setdefault("histograms", {}).setdefault(name, []).extend(rows)


def _streamed_union(frames):
    union = {}
    for frame in frames:
        _merge_engine(union, frame)
    return union


def test_sse_metrics_stream_equals_cursor_polls():
    """Acceptance: the concatenation of /stream/metrics SSE events
    equals the union of /metrics?since= cursor polls for the same
    served workload."""
    trace = make_trace("heavy_hitter", 900, seed=7)
    service, thread = serve(program="heavy_hitter", metrics_window=50)
    with thread:
        client = client_of(thread)
        frames = []
        subscriber = threading.Thread(
            target=_collect,
            args=(client.stream_metrics(poll=0.01), frames),
            daemon=True,
        )
        subscriber.start()

        polled, cursor = {}, -1
        chunk = 300
        for start in range(0, len(trace), chunk):
            client.ingest(records_of(trace[start : start + chunk]))
            client.wait_settled()
            snap = client.metrics(cursor)
            _merge_engine(polled, snap)
            if snap.get("engine") is not None:
                cursor = snap["engine"]["cursor"]

        # Nothing else will roll until drain; let the subscriber catch
        # up to the last polled row, then stop the daemon.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if _streamed_union(frames) == polled:
                break
            time.sleep(0.02)
        client.shutdown()
        subscriber.join(timeout=10)
        assert not subscriber.is_alive(), "stream did not end on shutdown"

    assert polled["series"], "workload must roll metrics windows"
    assert _streamed_union(frames) == polled


def test_sse_alerts_stream_equals_cursor_polls():
    """Same contract for /stream/alerts: SSE frames concatenate to the
    exact alert list a ?since= poll loop retrieves."""
    trace = make_trace("heavy_hitter", 400, seed=4)
    schedule = FaultSchedule.load("examples/faults/crossbar.json")
    service, thread = serve(
        program="heavy_hitter", monitor=True, faults=schedule
    )
    with thread:
        client = client_of(thread)
        frames = []
        subscriber = threading.Thread(
            target=_collect,
            args=(client.stream_alerts(poll=0.01), frames),
            daemon=True,
        )
        subscriber.start()
        client.ingest(records_of(trace))
        client.wait_settled()
        reference = client.alerts()["alerts"]
        assert reference, "crossbar schedule must raise alerts"
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if sum(len(f["alerts"]) for f in frames) >= len(reference):
                break
            time.sleep(0.02)
        client.shutdown()
        subscriber.join(timeout=10)
        assert not subscriber.is_alive()

    streamed = [alert for frame in frames for alert in frame["alerts"]]
    assert streamed == reference


def test_sse_health_stream_pushes_initial_and_final_frames():
    service, thread = serve(program="heavy_hitter")
    with thread:
        client = client_of(thread)
        frames = []
        subscriber = threading.Thread(
            target=_collect,
            args=(client.stream_health(poll=0.01), frames),
            daemon=True,
        )
        subscriber.start()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and not frames:
            time.sleep(0.02)
        assert frames, "health stream must push an initial frame"
        assert frames[0]["verdict"] == "ok"
        client.shutdown()
        subscriber.join(timeout=10)
        assert not subscriber.is_alive()


def test_metrics_prom_parses_and_matches_totals():
    from repro.obs.export import parse_openmetrics

    trace = make_trace("heavy_hitter", 500, seed=9)
    service, thread = serve(program="heavy_hitter")
    with thread:
        client = client_of(thread)
        client.ingest(records_of(trace))
        client.wait_settled()
        families = parse_openmetrics(client.metrics_prom())
        totals = client.metrics()["engine"]["totals"]
        assert families["mp5_egressed"]["samples"][0] == (
            "_total",
            (),
            totals["egressed"],
        )
        assert families["mp5_service_ingested"]["samples"][0][2] == len(trace)
        assert families["mp5_latency"]["type"] == "summary"
        # With the segment closed only service families remain — still a
        # valid exposition.
        client.drain()
        closed = parse_openmetrics(client.metrics_prom())
        assert "mp5_egressed" not in closed
        assert closed["mp5_service_segments"]["samples"][0][2] == 1
        client.shutdown()


def test_retention_bounds_rows_without_changing_results():
    """Acceptance: with retention capped the daemon's in-memory series
    stay bounded while the segment results and health verdict remain
    byte-identical to an uncapped run."""
    trace = make_trace("heavy_hitter", 900, seed=6)
    outcomes = {}
    for label, retention in (("uncapped", None), ("capped", 4)):
        service, thread = serve(
            program="heavy_hitter",
            monitor=True,
            metrics_window=25,
            metrics_retention=retention,
        )
        with thread:
            client = client_of(thread)
            client.ingest(records_of(trace))
            client.wait_settled()
            snapshot = client.metrics()["engine"]
            record = client.drain()["closed_segment"]
            outcomes[label] = {
                "rows": {
                    name: len(rows)
                    for name, rows in snapshot["series"].items()
                },
                "results": client.segment_results(record["index"]),
                "health": client.health(),
                "totals": snapshot["totals"],
            }
            client.shutdown()

    capped, uncapped = outcomes["capped"], outcomes["uncapped"]
    assert max(uncapped["rows"].values()) > 4, "workload must exceed cap"
    assert max(capped["rows"].values()) <= 4
    assert capped["results"] == uncapped["results"]
    assert capped["health"] == uncapped["health"]
    assert capped["totals"] == uncapped["totals"]


def test_oversized_request_line_rejected_with_413():
    service, thread = serve(program="heavy_hitter")
    with thread:
        host, port = thread.address
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(b"GET /" + b"x" * 10000 + b" HTTP/1.1\r\n\r\n")
            response = sock.recv(65536)
        assert response.startswith(b"HTTP/1.1 413 ")
        assert b"too long" in response or b"exceeds" in response
        # An unterminated flood (no newline at all) is also bounded.
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(b"y" * (1 << 17))
            response = sock.recv(65536)
        assert response.startswith(b"HTTP/1.1 413 ")
        # The daemon survives both.
        client = client_of(thread)
        assert client.health()["verdict"] == "ok"
        client.shutdown()


def test_malformed_content_length_rejected_with_400():
    service, thread = serve(program="heavy_hitter")
    with thread:
        host, port = thread.address
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(
                b"POST /ingest HTTP/1.1\r\ncontent-length: nope\r\n\r\n"
            )
            response = sock.recv(65536)
        assert response.startswith(b"HTTP/1.1 400 ")
        assert b"content-length" in response
        client = client_of(thread)
        client.shutdown()
