"""Shared harness glue for the real applications evaluated in §4.4."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..compiler import BanzaiTarget, CompiledProgram, compile_program
from ..mp5.packet import DataPacket
from ..workloads.distributions import BimodalPacketSizes
from ..workloads.traffic import FlowWorkload


@dataclass
class Application:
    """One evaluated application: a Domino program plus its workload.

    ``extra_fields(rng, pkt)`` layers the application's header fields on
    top of the flow-structured base workload (web-search flow sizes,
    bimodal packet sizes), mirroring the §4.4 methodology.
    """

    name: str
    program_name: str
    extra_fields: Callable[[np.random.Generator, DataPacket], Dict[str, int]]
    description: str = ""

    def compile(self, target: Optional[BanzaiTarget] = None) -> CompiledProgram:
        return compile_program(self.program_name, target=target)

    def workload(
        self,
        num_packets: int,
        num_pipelines: int,
        seed: int = 0,
        num_ports: int = 64,
        sizes: Optional[BimodalPacketSizes] = None,
        utilization: float = 1.0,
    ) -> List[DataPacket]:
        generator = FlowWorkload(
            num_pipelines=num_pipelines,
            num_ports=num_ports,
            active_flows=num_ports,
            sizes=sizes or BimodalPacketSizes(),
            seed=seed,
            utilization=utilization,
            extra_fields=self.extra_fields,
        )
        return generator.generate(num_packets)
