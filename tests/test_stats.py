"""Tests for run statistics and the C1 metrics."""

import pytest

from repro.mp5 import SwitchStats, c1_metrics, c1_violations
from repro.mp5.stats import C1Report


class TestThroughput:
    def _stats(self, arrivals, egresses, offered=None):
        stats = SwitchStats()
        stats.arrival_ticks = arrivals
        stats.egress_ticks = egresses
        stats.offered = offered if offered is not None else len(arrivals)
        stats.egressed = len(egresses)
        return stats

    def test_full_rate(self):
        stats = self._stats(list(range(100)), list(range(2, 102)))
        assert stats.throughput_normalized() == pytest.approx(1.0)

    def test_half_rate(self):
        # 100 arrivals over 100 ticks, but only every other one egresses
        # in the measurement window.
        arrivals = [float(i) for i in range(100)]
        egresses = [float(2 * i) for i in range(50) if 2 * i <= 99]
        stats = self._stats(arrivals, egresses)
        assert 0.4 < stats.throughput_normalized() < 0.6

    def test_empty_run(self):
        assert SwitchStats().throughput_normalized() == 0.0

    def test_delivery_ratio(self):
        stats = self._stats([0.0, 1.0], [5.0], offered=2)
        assert stats.delivery_ratio == 0.5

    def test_summary_keys(self):
        stats = self._stats([0.0], [1.0])
        summary = stats.summary()
        for key in ("offered", "egressed", "throughput", "max_queue_depth"):
            assert key in summary

    def test_summary_includes_drop_breakdown(self):
        stats = self._stats([0.0], [1.0])
        stats.drops_fifo_full = 3
        stats.drops_no_phantom = 2
        stats.drops_starvation = 1
        summary = stats.summary()
        assert summary["drops_fifo_full"] == 3
        assert summary["drops_no_phantom"] == 2
        assert summary["drops_starvation"] == 1


class TestLatencyPercentile:
    def test_basic_percentiles(self):
        stats = SwitchStats()
        stats.latencies = [float(i) for i in range(1, 101)]
        assert stats.latency_percentile(0) == 1.0
        assert stats.latency_percentile(100) == 100.0
        assert stats.latency_percentile(50) == pytest.approx(50.0, abs=1.0)

    def test_empty_returns_zero(self):
        assert SwitchStats().latency_percentile(99) == 0.0

    @pytest.mark.parametrize("bad", [-0.1, 100.1, 150, -5])
    def test_out_of_range_raises(self, bad):
        stats = SwitchStats()
        stats.latencies = [1.0, 2.0]
        with pytest.raises(ValueError):
            stats.latency_percentile(bad)

    @pytest.mark.parametrize("bad", [-0.1, 100.1])
    def test_out_of_range_raises_even_when_empty(self, bad):
        # Regression: the range check used to sit after the empty-list
        # early return, so bad percentiles silently produced 0.0.
        with pytest.raises(ValueError):
            SwitchStats().latency_percentile(bad)


class TestReordering:
    def test_in_order_flows_zero(self):
        stats = SwitchStats()
        stats.flow_egress = {1: [0, 1, 2], 2: [3, 4]}
        assert stats.reordered_flows() == 0
        assert stats.reordered_packets() == 0

    def test_reordered_flow_detected(self):
        stats = SwitchStats()
        stats.flow_egress = {1: [0, 2, 1]}
        assert stats.reordered_flows() == 1
        assert stats.reordered_packets() == 1

    def test_multiple_reordered_packets(self):
        stats = SwitchStats()
        stats.flow_egress = {1: [3, 0, 1, 2]}
        assert stats.reordered_packets() == 3


class TestC1Metrics:
    def test_perfect_order_zero(self):
        ref = {("r", 0): [0, 1, 2]}
        obs = {("r", 0): [0, 1, 2]}
        report = c1_metrics(ref, obs, 3)
        assert report.displaced_packets == 0
        assert report.inversion_fraction == 0.0
        assert not report.violated

    def test_swap_detected(self):
        ref = {("r", 0): [0, 1, 2]}
        obs = {("r", 0): [0, 2, 1]}
        report = c1_metrics(ref, obs, 3)
        assert report.displaced_packets == 2  # both parties of the swap
        assert report.inversions == 1
        assert report.violated

    def test_missing_reference_falls_back_to_sorted(self):
        report = c1_metrics({}, {("r", 0): [2, 0, 1]}, 3)
        assert report.displaced_packets == 3
        assert report.inversions == 1

    def test_multiple_states_union_of_violators(self):
        ref = {("r", 0): [0, 1], ("r", 1): [2, 3]}
        obs = {("r", 0): [1, 0], ("r", 1): [2, 3]}
        report = c1_metrics(ref, obs, 4)
        assert report.displaced_packets == 2
        assert report.displaced_fraction == 0.5

    def test_inversion_fraction_normalizes_by_accesses(self):
        obs = {("r", 0): [1, 0], ("r", 1): [0, 1]}
        report = c1_metrics({}, obs, 2)
        assert report.inversion_fraction == pytest.approx(0.25)

    def test_legacy_tuple_api(self):
        count, fraction = c1_violations({}, {("r", 0): [1, 0]}, 2)
        assert count == 2
        assert fraction == 1.0

    def test_empty_observation(self):
        report = c1_metrics({}, {}, 0)
        assert report.displaced_fraction == 0.0
        assert report.inversion_fraction == 0.0
