#!/usr/bin/env python3
"""NetCache-style in-network key-value caching on MP5.

In-network caching [47] is one of the application classes that motivates
stateful programmable switches (§1). The switch caches hot keys in
register arrays; GETs are served from the data plane, PUTs install
values. Correctness is delicate on a multi-pipelined switch: a GET
racing a PUT to the same key must observe them in arrival order, or the
cache serves stale (or phantom) data — exactly condition C1.

This script runs a read-heavy Zipf workload, checks every GET against a
golden in-order cache model, and contrasts MP5 with the no-D4 ablation,
where stale reads appear.

Run:  python examples/in_network_cache.py
"""

import numpy as np

from repro.baselines import no_phantom_config
from repro.compiler import compile_program
from repro.mp5 import MP5Config, MP5Switch
from repro.workloads import clone_packets, line_rate_trace, zipf_access


def build_trace(num_packets: int, num_pipelines: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    # A small hot keyset with a 70/30 read/write mix: GET/PUT races to
    # the same bucket are frequent, which is the case ordering protects.
    keys = zipf_access(16, 1.1, rng, num_packets)

    def headers(r, i):
        return {
            "key": int(keys[i]),
            "is_read": int(r.random() < 0.7),
            "value_in": 1000 + i,  # unique per write
            "value_out": 0,
            "cache_hit": 0,
        }

    return line_rate_trace(num_packets, num_pipelines, headers, seed=seed)


def stale_reads(packets) -> int:
    """Replay in arrival order against a golden cache; count GETs whose
    observed value differs from the in-order model.

    The golden model tracks *buckets* (the program hashes keys into 2048
    slots without storing tags, so colliding keys legitimately share a
    bucket — that is cache semantics, not a reordering)."""
    from repro.domino import hash2

    golden = {}
    stale = 0
    for pkt in sorted(packets, key=lambda p: p.pkt_id):
        if pkt.dropped or pkt.egress_tick is None:
            continue
        bucket = hash2(pkt.headers["key"], 5) % 2048
        if pkt.headers["is_read"]:
            expected_value, expected_valid = golden.get(bucket, (0, 0))
            if (
                pkt.headers["cache_hit"] != expected_valid
                or (expected_valid and pkt.headers["value_out"] != expected_value)
            ):
                stale += 1
        else:
            golden[bucket] = (pkt.headers["value_in"], 1)
    return stale


def main() -> None:
    num_pipelines = 8
    program = compile_program("netcache")
    trace = build_trace(10000, num_pipelines, seed=23)

    print("Design           throughput  stale GET responses")
    print("---------------  ----------  -------------------")
    for name, config in [
        ("MP5 (with D4)", MP5Config(num_pipelines=num_pipelines)),
        ("MP5 without D4", no_phantom_config(num_pipelines=num_pipelines)),
    ]:
        packets = clone_packets(trace)
        switch = MP5Switch(program, config)
        stats = switch.run(packets)
        print(
            f"{name:15s}  {stats.throughput_normalized():10.3f}  "
            f"{stale_reads(packets):19d}"
        )

    print(
        "\nWith preemptive ordering every GET observes exactly the writes"
        "\nthat arrived before it — the cache is linearizable at the switch."
    )


if __name__ == "__main__":
    main()
