"""Declarative fault schedules: what breaks, where, and when.

A :class:`FaultSchedule` is a validated list of :class:`FaultEvent`
windows plus a :class:`DegradationPolicy`, serialized as JSON::

    {
      "format": "mp5-fault-schedule",
      "version": 1,
      "seed": 7,
      "degradation": {"enabled": true, "drain_ticks": 4,
                      "retry_backoff": 16, "max_retries": 8},
      "faults": [
        {"kind": "pipeline_stall", "start": 40, "duration": 30,
         "pipeline": 1, "service_rate": 0.0},
        {"kind": "phantom_channel", "start": 0, "duration": 200,
         "loss_rate": 0.05, "delay": 3, "delay_rate": 0.1},
        {"kind": "crossbar_fail", "start": 80, "duration": 25,
         "pipeline": 2},
        {"kind": "fifo_shrink", "start": 50, "duration": 60,
         "capacity": 2}
      ]
    }

Fault kinds (the four failure modes of §3.5.1-style analysis, extended
to every MP5 mechanism):

``pipeline_stall``
    Pipeline ``pipeline`` services ``service_rate`` packets per tick
    (0 = full stall, 0<r<1 = slowdown) for the window: injection at its
    front is blocked, its in-flight packets freeze in place, and its
    stage FIFOs stop popping.
``phantom_channel``
    The phantom channel (D4) toward ``pipeline``/``stage`` (``null`` =
    any) loses each phantom with probability ``loss_rate`` or delivers
    it ``delay`` ticks late with probability ``delay_rate``. Decisions
    are per-packet hashes of (pkt_id, seed), so they are identical in
    both engines regardless of evaluation order.
``crossbar_fail``
    The crossbar (D3) ports steering *into* ``pipeline`` go down:
    data packets whose resolved access lives there are dropped with
    reason ``crossbar_down``; the physically separate phantom channel
    keeps working.
``fifo_shrink``
    The per-ring-buffer capacity of stage FIFOs (optionally only
    ``pipeline``/``stage``) drops to ``capacity`` for the window, then
    reverts — the bit-budget shrink of a partial SRAM failure.

Schedules are pure data; the per-run state machine that applies them
lives in :mod:`repro.faults.injector`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from ..errors import ConfigError

SCHEDULE_FORMAT = "mp5-fault-schedule"
SCHEDULE_VERSION = 1

KIND_STALL = "pipeline_stall"
KIND_PHANTOM = "phantom_channel"
KIND_CROSSBAR = "crossbar_fail"
KIND_FIFO = "fifo_shrink"
FAULT_KINDS = (KIND_STALL, KIND_PHANTOM, KIND_CROSSBAR, KIND_FIFO)

PathLike = Union[str, Path]


@dataclass
class FaultEvent:
    """One fault window. Field relevance depends on ``kind`` (see the
    module docstring); :meth:`validate` enforces the combinations."""

    kind: str
    start: int
    duration: int
    pipeline: Optional[int] = None
    stage: Optional[int] = None
    service_rate: float = 0.0  # pipeline_stall: packets serviced per tick
    loss_rate: float = 0.0  # phantom_channel
    delay: int = 0  # phantom_channel: late-delivery ticks
    delay_rate: float = 0.0  # phantom_channel
    capacity: int = 1  # fifo_shrink
    degrade: bool = True  # stall/crossbar: trigger the emergency remap

    @property
    def end(self) -> int:
        return self.start + self.duration

    def validate(self, num_pipelines: Optional[int] = None) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}"
            )
        if self.start < 0:
            raise ConfigError(f"fault start must be >= 0, got {self.start}")
        if self.duration < 1:
            raise ConfigError(
                f"fault duration must be >= 1, got {self.duration}"
            )
        if self.kind in (KIND_STALL, KIND_CROSSBAR):
            if self.pipeline is None:
                raise ConfigError(f"{self.kind} needs a target pipeline")
        if self.pipeline is not None:
            if self.pipeline < 0 or (
                num_pipelines is not None and self.pipeline >= num_pipelines
            ):
                raise ConfigError(
                    f"fault pipeline {self.pipeline} out of range for "
                    f"{num_pipelines} pipelines"
                )
        if self.kind == KIND_STALL and not 0.0 <= self.service_rate < 1.0:
            raise ConfigError(
                f"service_rate must be in [0, 1), got {self.service_rate}"
            )
        if self.kind == KIND_PHANTOM:
            if not 0.0 <= self.loss_rate <= 1.0:
                raise ConfigError(
                    f"loss_rate must be in [0, 1], got {self.loss_rate}"
                )
            if not 0.0 <= self.delay_rate <= 1.0:
                raise ConfigError(
                    f"delay_rate must be in [0, 1], got {self.delay_rate}"
                )
            if self.delay < 0:
                raise ConfigError(f"delay must be >= 0, got {self.delay}")
            if self.loss_rate == 0.0 and (
                self.delay == 0 or self.delay_rate == 0.0
            ):
                raise ConfigError(
                    "phantom_channel fault is a no-op: set loss_rate > 0 "
                    "or both delay > 0 and delay_rate > 0"
                )
        if self.kind == KIND_FIFO and self.capacity < 1:
            raise ConfigError(
                f"fifo_shrink capacity must be >= 1, got {self.capacity}"
            )

    def to_dict(self) -> Dict:
        out: Dict = {
            "kind": self.kind,
            "start": self.start,
            "duration": self.duration,
        }
        if self.pipeline is not None:
            out["pipeline"] = self.pipeline
        if self.stage is not None:
            out["stage"] = self.stage
        if self.kind == KIND_STALL:
            out["service_rate"] = self.service_rate
            out["degrade"] = self.degrade
        elif self.kind == KIND_PHANTOM:
            out["loss_rate"] = self.loss_rate
            out["delay"] = self.delay
            out["delay_rate"] = self.delay_rate
        elif self.kind == KIND_CROSSBAR:
            out["degrade"] = self.degrade
        elif self.kind == KIND_FIFO:
            out["capacity"] = self.capacity
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultEvent":
        known = {
            "kind", "start", "duration", "pipeline", "stage",
            "service_rate", "loss_rate", "delay", "delay_rate",
            "capacity", "degrade",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown fault fields: {', '.join(sorted(unknown))}"
            )
        return cls(**data)


@dataclass
class DegradationPolicy:
    """Drain/retry/backoff protocol for the emergency remap.

    When a stall or crossbar failure is detected on pipeline *p* (and the
    event asks for degradation), the sharder waits ``drain_ticks`` for
    in-flight packets to clear, then moves every zero-in-flight index
    active on *p* to the least-loaded healthy pipeline. Indices still
    carrying in-flight packets are deferred and retried every
    ``retry_backoff`` ticks, up to ``max_retries`` attempts.
    """

    enabled: bool = True
    drain_ticks: int = 4
    retry_backoff: int = 16
    max_retries: int = 8

    def validate(self) -> None:
        if self.drain_ticks < 0:
            raise ConfigError("drain_ticks must be >= 0")
        if self.retry_backoff < 1:
            raise ConfigError("retry_backoff must be >= 1")
        if self.max_retries < 1:
            raise ConfigError("max_retries must be >= 1")

    def to_dict(self) -> Dict:
        return {
            "enabled": self.enabled,
            "drain_ticks": self.drain_ticks,
            "retry_backoff": self.retry_backoff,
            "max_retries": self.max_retries,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "DegradationPolicy":
        known = {"enabled", "drain_ticks", "retry_backoff", "max_retries"}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown degradation fields: {', '.join(sorted(unknown))}"
            )
        return cls(**data)


@dataclass
class FaultSchedule:
    """A validated set of fault windows plus the degradation policy."""

    faults: List[FaultEvent] = field(default_factory=list)
    degradation: DegradationPolicy = field(default_factory=DegradationPolicy)
    seed: int = 0

    def __post_init__(self) -> None:
        self.validate()

    @property
    def empty(self) -> bool:
        return not self.faults

    def validate(self, num_pipelines: Optional[int] = None) -> None:
        for event in self.faults:
            event.validate(num_pipelines)
        self.degradation.validate()

    def to_dict(self) -> Dict:
        return {
            "format": SCHEDULE_FORMAT,
            "version": SCHEDULE_VERSION,
            "seed": self.seed,
            "degradation": self.degradation.to_dict(),
            "faults": [event.to_dict() for event in self.faults],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultSchedule":
        if data.get("format") != SCHEDULE_FORMAT:
            raise ConfigError(
                f"not a fault schedule: format={data.get('format')!r} "
                f"(expected {SCHEDULE_FORMAT!r})"
            )
        if data.get("version") != SCHEDULE_VERSION:
            raise ConfigError(
                f"unsupported fault-schedule version {data.get('version')!r}"
            )
        return cls(
            faults=[FaultEvent.from_dict(f) for f in data.get("faults", [])],
            degradation=DegradationPolicy.from_dict(
                data.get("degradation", {})
            ),
            seed=int(data.get("seed", 0)),
        )

    def save(self, path: PathLike) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def load(cls, path: PathLike) -> "FaultSchedule":
        try:
            data = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid JSON in {path}: {exc}") from exc
        return cls.from_dict(data)

    def describe(self) -> str:
        lines = [
            f"{len(self.faults)} fault(s), seed {self.seed}, degradation "
            f"{'on' if self.degradation.enabled else 'off'} "
            f"(drain {self.degradation.drain_ticks}, backoff "
            f"{self.degradation.retry_backoff}, retries "
            f"{self.degradation.max_retries})"
        ]
        for event in self.faults:
            where = []
            if event.pipeline is not None:
                where.append(f"pipe {event.pipeline}")
            if event.stage is not None:
                where.append(f"stage {event.stage}")
            params = []
            if event.kind == KIND_STALL:
                params.append(f"rate {event.service_rate}")
            elif event.kind == KIND_PHANTOM:
                params.append(f"loss {event.loss_rate}")
                if event.delay_rate:
                    params.append(f"delay {event.delay}@{event.delay_rate}")
            elif event.kind == KIND_FIFO:
                params.append(f"capacity {event.capacity}")
            lines.append(
                f"  [{event.start:5d}, {event.end:5d}) {event.kind:15s} "
                f"{' '.join(where) or 'all':12s} {' '.join(params)}"
            )
        return "\n".join(lines)


def generate_schedule(
    seed: int = 0,
    kinds: Optional[List[str]] = None,
    num_pipelines: int = 4,
    horizon: int = 400,
    events: int = 4,
) -> FaultSchedule:
    """Draw a random (but seed-reproducible) schedule of ``events`` fault
    windows over ``[0, horizon)`` — the ``faults generate`` CLI backend."""
    kinds = list(kinds) if kinds else list(FAULT_KINDS)
    for kind in kinds:
        if kind not in FAULT_KINDS:
            raise ConfigError(f"unknown fault kind {kind!r}")
    rng = np.random.default_rng(seed)
    faults: List[FaultEvent] = []
    for _ in range(events):
        kind = kinds[int(rng.integers(0, len(kinds)))]
        start = int(rng.integers(0, max(1, horizon // 2)))
        duration = int(rng.integers(horizon // 20 + 1, horizon // 4 + 2))
        pipeline = int(rng.integers(0, num_pipelines))
        if kind == KIND_STALL:
            rate = float(rng.choice([0.0, 0.0, 0.25, 0.5]))
            faults.append(
                FaultEvent(kind, start, duration, pipeline, service_rate=rate)
            )
        elif kind == KIND_PHANTOM:
            faults.append(
                FaultEvent(
                    kind,
                    start,
                    duration,
                    loss_rate=float(rng.choice([0.02, 0.05, 0.1])),
                    delay=int(rng.integers(0, 4)),
                    delay_rate=float(rng.choice([0.0, 0.1, 0.2])),
                )
            )
        elif kind == KIND_CROSSBAR:
            faults.append(FaultEvent(kind, start, duration, pipeline))
        else:
            faults.append(
                FaultEvent(
                    kind, start, duration, capacity=int(rng.integers(1, 4))
                )
            )
    return FaultSchedule(faults=faults, seed=seed)
