"""Control plane: pre-runtime table population (§2.2.1's assumption).

Functional equivalence assumes all control-plane operations happen
identically on both switches *before* runtime and never during it. This
module makes that assumption operational: a :class:`ControlPlane` owns
every match table, installs entries while the switch is offline, keeps
an audit log, and ``commit()`` seals all tables — after which any
mutation raises. Deploying the same control plane against the single
pipeline and every MP5 pipeline (D1: homogeneous programming) guarantees
the "identical match-table state" precondition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import ConfigError
from .match_table import MatchEntry, MatchTable


@dataclass(frozen=True)
class AuditRecord:
    """One control-plane operation, for the audit log."""

    operation: str
    table: str
    entry: Optional[MatchEntry] = None


class ControlPlane:
    """Owns match tables and enforces the configure-then-run lifecycle."""

    def __init__(self):
        self._tables: Dict[str, MatchTable] = {}
        self._log: List[AuditRecord] = []
        self._committed = False

    # ------------------------------------------------------------------
    # Configuration phase
    # ------------------------------------------------------------------

    def create_table(self, name: str) -> MatchTable:
        """Create an empty match table (configuration phase only)."""
        if self._committed:
            raise ConfigError("control plane already committed")
        if name in self._tables:
            raise ConfigError(f"table {name!r} already exists")
        table = MatchTable(name)
        self._tables[name] = table
        self._log.append(AuditRecord("create", name))
        return table

    def install(
        self,
        table: str,
        fields: Mapping[str, int],
        action: str = "default",
        priority: int = 0,
    ) -> None:
        """Install one exact-match entry into ``table``."""
        if self._committed:
            raise ConfigError(
                "control plane already committed; runtime table updates are "
                "outside the functional-equivalence scope (§2.2.1)"
            )
        entry = MatchEntry(fields=dict(fields), action=action, priority=priority)
        self._get(table).add_entry(entry)
        self._log.append(AuditRecord("install", table, entry))

    def install_wildcard(self, table: str, action: str = "default") -> None:
        self.install(table, {}, action=action, priority=-(10**9))

    def commit(self) -> None:
        """Seal every table; the switch may start processing packets."""
        for table in self._tables.values():
            table.seal()
        self._committed = True
        self._log.append(AuditRecord("commit", "*"))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _get(self, name: str) -> MatchTable:
        try:
            return self._tables[name]
        except KeyError:
            raise ConfigError(f"unknown table {name!r}") from None

    @property
    def committed(self) -> bool:
        return self._committed

    def table(self, name: str) -> MatchTable:
        return self._get(name)

    def tables(self) -> List[str]:
        return sorted(self._tables)

    def audit_log(self) -> List[AuditRecord]:
        return list(self._log)

    def snapshot(self) -> Dict[str, Tuple[MatchEntry, ...]]:
        """Immutable view of the installed entries, for equivalence
        comparison between two switches' control state."""
        return {
            name: tuple(table.entries) for name, table in self._tables.items()
        }

    def equivalent_to(self, other: "ControlPlane") -> bool:
        """True when both control planes installed identical state — the
        §2.2.1 precondition for data-plane equivalence."""
        return self.snapshot() == other.snapshot()


def deploy_wildcard_control(num_stages: int) -> ControlPlane:
    """The control plane Domino-compiled programs need: one wildcard
    entry per stage, committed."""
    plane = ControlPlane()
    for stage in range(num_stages):
        plane.create_table(f"stage{stage}")
        plane.install_wildcard(f"stage{stage}")
    plane.commit()
    return plane
