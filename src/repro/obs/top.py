"""The ``repro top`` dashboard: model + frame renderer.

Split deliberately into a pure-data :class:`TopModel` and a pure
renderer :func:`render_top_frame`:

* the model is fed the same JSON documents the control plane serves —
  ``/metrics`` snapshots (full or since-cursor increments, including
  SSE frames, which carry the identical shape), ``/alerts`` windows,
  ``/health`` and ``/status`` documents — or a recorded
  ``metrics.json`` + ``alerts.jsonl`` pair via :meth:`load_artifacts`;
* the renderer reads only model state — no wall clock, no I/O — so
  ``repro top --once`` against recorded artifacts is byte-reproducible
  run over run (the determinism contract the tests pin).

The live loop (SSE subscription with cursor-polling fallback) lives in
``repro.cli``; this module never imports the service layer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union
from pathlib import Path

from .alerts import AlertLog
from .export import _LANE, load_metrics_document
from .health import spark_row

PathLike = Union[str, Path]

__all__ = ["TopModel", "render_top_frame"]

#: ANSI: clear screen + home cursor (prefixed to live frames only).
CLEAR = "\x1b[2J\x1b[H"

_UNSET = object()


def _fmt(value: float) -> str:
    number = float(value)
    if number.is_integer():
        return str(int(number))
    return f"{number:.2f}"


class TopModel:
    """Render state for one dashboard: bounded series, alert tail,
    latest health/status documents.

    ``width`` bounds both the sparkline columns and the rows kept per
    series; ``max_alerts`` bounds the alert tail. Incremental metrics
    frames merge; a segment change (fresh registry, ticks restart)
    clears the series so sparklines never mix two segments' clocks.
    """

    def __init__(self, width: int = 48, max_alerts: int = 8):
        if width < 1:
            raise ValueError("width must be >= 1")
        self.width = width
        self.max_alerts = max_alerts
        self.window: Optional[int] = None
        self.series: Dict[str, List[List[float]]] = {}
        self.totals: Dict[str, float] = {}
        self.service: Dict[str, float] = {}
        self.segment_index = _UNSET
        self.alerts: List[Dict] = []
        self.alerts_total = 0
        self.health: Optional[Dict] = None
        self.status: Optional[Dict] = None
        self.source = "live"

    # -- feeding --------------------------------------------------------

    def apply_metrics(self, snap: Dict) -> None:
        """Merge a ``/metrics`` document (full snapshot, ``?since=``
        increment, or SSE frame — all share one shape)."""
        self.service = dict(snap.get("service") or self.service)
        segment = snap.get("segment_index", _UNSET)
        if segment is not _UNSET and segment != self.segment_index:
            if segment is not None:
                self.series = {}
            self.segment_index = segment
        engine = snap.get("engine")
        if engine is None:
            return
        self.window = engine.get("window", self.window)
        self.totals = dict(engine.get("totals") or self.totals)
        for name, rows in engine.get("series", {}).items():
            merged = self.series.setdefault(name, [])
            last = merged[-1][0] if merged else None
            for row in rows:
                if last is None or row[0] > last:
                    merged.append(list(row))
            del merged[: -self.width]

    def apply_alerts(self, window: Dict) -> None:
        """Merge an ``/alerts`` window (``cursor`` is the total count)."""
        fresh = window.get("alerts") or []
        cursor = window.get("cursor")
        if cursor is not None:
            self.alerts_total = max(self.alerts_total, int(cursor))
        else:
            self.alerts_total += len(fresh)
        self.alerts.extend(fresh)
        del self.alerts[: -self.max_alerts]

    def apply_health(self, doc: Dict) -> None:
        self.health = doc

    def apply_status(self, doc: Dict) -> None:
        self.status = doc

    def load_artifacts(
        self, metrics_path: PathLike, alerts_path: Optional[PathLike] = None
    ) -> None:
        """Offline mode: a recorded ``metrics.json`` (registry
        ``to_dict`` shape) plus an optional ``alerts.jsonl`` log."""
        doc = load_metrics_document(metrics_path)
        self.source = str(metrics_path)
        self.window = doc.get("window")
        self.totals = dict(doc.get("totals") or {})
        self.series = {
            name: [list(row) for row in rows[-self.width :]]
            for name, rows in doc.get("series", {}).items()
        }
        if alerts_path is not None:
            header, log = AlertLog.load(alerts_path)
            records = log.to_dicts()
            self.alerts_total = len(records)
            self.alerts = records[-self.max_alerts :]
            verdict = header.get("verdict")
            if verdict is not None and self.health is None:
                self.health = {"verdict": verdict, "reasons": []}

    # -- derived views --------------------------------------------------

    def pipes(self) -> List[int]:
        found = set()
        for name in self.series:
            lane = _LANE.match(name)
            if lane:
                found.add(int(lane.group("pipe")))
        return sorted(found)

    def pipe_depth_rows(self, pipe: int) -> List[List[float]]:
        """Per-window max stage-FIFO depth of one pipeline (the lane
        series ``queue_depth.p<pipe>.s<j>`` folded across stages)."""
        per_tick: Dict[float, float] = {}
        for name, rows in self.series.items():
            lane = _LANE.match(name)
            if lane is None or int(lane.group("pipe")) != pipe:
                continue
            for tick, value in rows:
                per_tick[tick] = max(per_tick.get(tick, 0.0), value)
        return [[tick, per_tick[tick]] for tick in sorted(per_tick)]


def _series_line(label: str, rows: List[List[float]], width: int) -> str:
    values = [row[1] for row in rows[-width:]]
    if not values:
        return f"  {label:<12} |{' ' * width}|"
    pad = " " * (width - len(values))
    spark = pad + spark_row(values)
    return (
        f"  {label:<12} |{spark}| last {_fmt(values[-1])}"
        f"  peak {_fmt(max(values))}"
    )


def render_top_frame(model: TopModel, clear: bool = False) -> str:
    """One dashboard frame as text; ``clear`` prepends the ANSI
    clear-screen sequence for live redraws (never used in --once or
    offline renders, which must stay byte-reproducible)."""
    lines: List[str] = []
    health = model.health or {}
    status = model.status or {}
    program = health.get("program") or status.get("program") or "-"
    engine = health.get("engine") or status.get("engine") or "-"
    verdict = health.get("verdict", "-")
    if model.segment_index is _UNSET:
        segment = "-"
    elif model.segment_index is None:
        segment = "closed"
    else:
        segment = str(model.segment_index)
    lines.append(
        f"MP5 top — program {program} · engine {engine} · "
        f"segment {segment} · verdict {verdict}"
    )
    if model.service:
        svc = model.service
        queue = _fmt(svc.get("queue_depth", 0))
        capacity = status.get("queue_capacity")
        if capacity is not None:
            queue = f"{queue}/{capacity}"
        line = (
            "service  "
            f"ingested={_fmt(svc.get('ingested', 0))}  "
            f"batches={_fmt(svc.get('batches', 0))}  "
            f"rejected={_fmt(svc.get('rejected', 0))}  "
            f"queue={queue}  "
            f"segments={_fmt(svc.get('segments', 0))}  "
            f"alerts={_fmt(svc.get('alerts_total', 0))}"
        )
        if svc.get("watermark") is not None:
            line += f"  watermark={_fmt(svc['watermark'])}"
        if svc.get("first_egress_latency") is not None:
            line += f"  first-egress={svc['first_egress_latency'] * 1000:.1f}ms"
        lines.append(line)
    flags = []
    if status.get("paused"):
        flags.append("paused")
    if status.get("draining"):
        flags.append("draining")
    faults = status.get("faults", 0)
    if faults:
        flags.append(f"{faults} fault(s) armed")
    if flags:
        lines.append("state    " + " · ".join(flags))
    lines.append("")

    window = model.window or "?"
    lines.append(
        f"window series (window={window} ticks, last {model.width} "
        f"windows, peak-scaled)"
    )
    lines.append(
        _series_line("throughput", model.series.get("egressed", []), model.width)
    )
    lines.append(
        _series_line("drops", model.series.get("dropped", []), model.width)
    )
    for pipe in model.pipes():
        lines.append(
            _series_line(
                f"queue p{pipe}", model.pipe_depth_rows(pipe), model.width
            )
        )
    lines.append("")

    shown = len(model.alerts)
    lines.append(f"alerts (total {model.alerts_total}, showing last {shown})")
    if model.alerts:
        lines.append(f"  {'tick':>6}  {'severity':<8}  {'kind':<20}  message")
        for alert in model.alerts:
            lines.append(
                f"  {alert.get('tick', '?'):>6}  "
                f"{alert.get('severity', '?'):<8}  "
                f"{alert.get('kind', '?'):<20}  "
                f"{alert.get('message', '')}"
            )
    reasons = health.get("reasons") or []
    if reasons:
        lines.append("")
        lines.append("health reasons:")
        for reason in reasons:
            lines.append(f"  - {reason}")
    text = "\n".join(lines) + "\n"
    if clear:
        text = CLEAR + text
    return text
