"""Tests for logical MP5 partitioning (§3.1 footnote 1)."""

import pytest

from repro.compiler import compile_program
from repro.errors import ConfigError
from repro.mp5 import LogicalPartition, MP5Config, PartitionedMP5
from repro.workloads import line_rate_trace

from .conftest import heavy_hitter_headers


@pytest.fixture(scope="module")
def programs():
    return (
        compile_program("heavy_hitter"),
        compile_program("sequencer"),
    )


class TestPartitioning:
    def test_disjoint_pipeline_ranges(self, programs):
        hh, seq = programs
        switch = PartitionedMP5(
            total_pipelines=8,
            partitions=[LogicalPartition(hh, 6), LogicalPartition(seq, 2)],
        )
        assert switch.ranges == [(0, 5), (6, 7)]
        assert switch.spare_pipelines == 0

    def test_spare_pipelines_allowed(self, programs):
        hh, _ = programs
        switch = PartitionedMP5(
            total_pipelines=8, partitions=[LogicalPartition(hh, 3)]
        )
        assert switch.spare_pipelines == 5

    def test_oversubscription_rejected(self, programs):
        hh, seq = programs
        with pytest.raises(ConfigError, match="pipelines"):
            PartitionedMP5(
                total_pipelines=4,
                partitions=[LogicalPartition(hh, 3), LogicalPartition(seq, 2)],
            )

    def test_empty_partitions_rejected(self):
        with pytest.raises(ConfigError):
            PartitionedMP5(total_pipelines=4, partitions=[])

    def test_zero_width_partition_rejected(self, programs):
        hh, _ = programs
        with pytest.raises(ConfigError):
            LogicalPartition(hh, 0)

    def test_trace_count_must_match(self, programs):
        hh, seq = programs
        switch = PartitionedMP5(
            total_pipelines=4,
            partitions=[LogicalPartition(hh, 2), LogicalPartition(seq, 2)],
        )
        with pytest.raises(ConfigError, match="traces"):
            switch.run([[]])

    def test_independent_execution(self, programs):
        hh, seq = programs
        switch = PartitionedMP5(
            total_pipelines=4,
            partitions=[LogicalPartition(hh, 2), LogicalPartition(seq, 2)],
        )
        hh_trace = line_rate_trace(300, 2, heavy_hitter_headers, seed=0)
        seq_trace = line_rate_trace(300, 2, lambda r, i: {"seq": 0}, seed=0)
        results = switch.run([hh_trace, seq_trace])
        assert [r.name for r in results] == ["heavy_hitter", "sequencer"]
        # Each logical switch behaves like a standalone MP5 of its width.
        assert results[0].stats.egressed == 300
        assert results[1].registers["count"][0] == 300

    def test_partition_width_matches_standalone_throughput(self, programs):
        # A 2-pipeline logical sequencer inside an 8-pipeline switch has
        # the same 1/2 normalized throughput as a standalone 2-pipeline
        # MP5 — partitioning neither helps nor hurts other partitions.
        _, seq = programs
        switch = PartitionedMP5(
            total_pipelines=8, partitions=[LogicalPartition(seq, 2)]
        )
        trace = line_rate_trace(800, 2, lambda r, i: {"seq": 0}, seed=0)
        (result,) = switch.run([trace])
        assert result.stats.throughput_normalized() == pytest.approx(0.5, abs=0.05)
