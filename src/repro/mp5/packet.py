"""Packet types flowing through an MP5 switch.

Two kinds of traffic exist (§3.2): **data packets** on the data channel,
and **phantom packets** on the physically separate phantom channel. A
phantom is a small (48-bit in the paper) placeholder carrying
``<pkt id, register, index, pipeline, stage>`` that reserves its data
packet's position in the destination stage's FIFO.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..compiler.tac import Temp


@dataclass(slots=True)
class StateAccess:
    """One planned register access, resolved at the address-resolution
    stage and carried in the packet's metadata (§3.3).

    ``index`` is None for arrays whose index computation is stateful —
    ordering then falls back to array-level phantoms. ``pipeline`` is the
    destination pipeline at resolution time (the index-to-pipeline map
    lookup). ``conservative`` marks accesses whose guard could not be
    evaluated preemptively: the phantom is always generated and a false
    guard wastes the slot.
    """

    array: str
    stage: int
    pipeline: int
    index: Optional[int] = None
    conservative: bool = False
    completed: bool = False


@dataclass(slots=True)
class DataPacket:
    """A data packet and its PHV (headers + carried temporaries)."""

    pkt_id: int
    arrival: float
    port: int
    headers: Dict[str, int]
    size_bytes: int = 64
    flow_id: Optional[int] = None
    env: Dict[Temp, int] = field(default_factory=dict)
    accesses: List[StateAccess] = field(default_factory=list)
    entry_pipeline: int = -1
    entry_tick: int = -1
    egress_tick: Optional[int] = None
    dropped: bool = False
    drop_reason: str = ""
    ecn_marked: bool = False
    # Stage -> access lookup table, built by index_accesses() once the
    # resolution stage finalizes the access plan. At most one access per
    # stage exists after the MP5 transform, so a dict is exact.
    _by_stage: Optional[Dict[int, StateAccess]] = field(
        default=None, repr=False, compare=False
    )

    def index_accesses(self) -> None:
        """Freeze the access plan into a per-stage lookup table."""
        self._by_stage = {a.stage: a for a in self.accesses}

    def access_at_stage(self, stage: int) -> Optional[StateAccess]:
        table = self._by_stage
        if table is not None:
            access = table.get(stage)
            if access is not None and not access.completed:
                return access
            return None
        for access in self.accesses:
            if access.stage == stage and not access.completed:
                return access
        return None

    @property
    def is_stateful(self) -> bool:
        return bool(self.accesses)

    @property
    def done(self) -> bool:
        return self.dropped or self.egress_tick is not None


@dataclass(slots=True)
class PhantomPacket:
    """Placeholder traveling the phantom channel (48 bits of content in
    hardware: packet id, register, index, destination pipeline+stage)."""

    pkt_id: int
    array: str
    index: Optional[int]
    pipeline: int
    stage: int
    created_tick: int
