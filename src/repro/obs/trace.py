"""Per-packet lifecycle trace recorder and its two export formats.

A :class:`TraceRecorder` is attached to a switch with
``MP5Switch.attach_observability(recorder=...)``; the engine then calls
one emitter method per lifecycle event (see :mod:`repro.obs.events`).
When no recorder is attached the engine's hot paths skip the calls
behind a single attribute check, so recording costs nothing disabled.

Exports:

* **JSONL** (``write_jsonl``/``read_jsonl``) — a header line followed by
  one JSON object per event; the format ``repro trace-summary`` and the
  differential tests consume.
* **Chrome trace_event JSON** (``write_chrome``/``chrome_trace``) — a
  ``traceEvents`` array that loads directly in Perfetto or
  ``chrome://tracing``: one *process* per pipeline, one *thread* (lane)
  per stage, one extra "switch" process for laneless events (remap,
  drop, egress). One tick maps to one microsecond on the timeline.
  Every original record rides along in ``args`` so a Chrome trace can
  be summarized too.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .events import (
    EVENT_DROP,
    EVENT_ECN,
    EVENT_EGRESS,
    EVENT_EMERGENCY_REMAP,
    EVENT_FAULT_END,
    EVENT_FAULT_START,
    EVENT_FIFO_BLOCK,
    EVENT_FIFO_POP,
    EVENT_FIFO_UNBLOCK,
    EVENT_INGRESS,
    EVENT_PHANTOM_EMIT,
    EVENT_PHANTOM_LOSS,
    EVENT_PHANTOM_MATCH,
    EVENT_REMAP,
    EVENT_SERVICE,
    EVENT_STEER,
)

TRACE_EVENTS_VERSION = 1
JSONL_FORMAT = "mp5-trace-events"
TICK_US = 1.0  # one tick renders as one microsecond in Perfetto

PathLike = Union[str, Path]


class TraceRecorder:
    """Collects lifecycle events from one simulation run.

    The emitter methods are the engine-facing surface; they append plain
    dicts to :attr:`events`. The recorder also derives the FIFO
    block/unblock *episodes* from the per-tick block signals the engine
    raises, and the queueing ``wait`` of every popped packet from its
    phantom-match (or steer) tick.
    """

    __slots__ = ("events", "_queued", "_blocked")

    def __init__(self) -> None:
        self.events: List[Dict] = []
        # pkt id -> tick it entered a stage FIFO (match/steer time)
        self._queued: Dict[int, int] = {}
        # (pipe, stage) -> tick the current blocking episode began
        self._blocked: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # Engine-facing emitters (one per lifecycle event)
    # ------------------------------------------------------------------

    def ingress(
        self, tick: int, pkt: int, pipe: int, port: int, flow: Optional[int]
    ) -> None:
        self.events.append(
            {
                "type": EVENT_INGRESS,
                "tick": tick,
                "pkt": pkt,
                "pipe": pipe,
                "stage": 0,
                "port": port,
                "flow": flow,
            }
        )

    def phantom_emit(
        self,
        tick: int,
        pkt: int,
        pipe: int,
        stage: int,
        array: str,
        index: Optional[int],
    ) -> None:
        self.events.append(
            {
                "type": EVENT_PHANTOM_EMIT,
                "tick": tick,
                "pkt": pkt,
                "pipe": pipe,
                "stage": stage,
                "array": array,
                "index": index,
            }
        )

    def phantom_loss(
        self, tick: int, pkt: int, pipe: int, stage: int, array: str
    ) -> None:
        self.events.append(
            {
                "type": EVENT_PHANTOM_LOSS,
                "tick": tick,
                "pkt": pkt,
                "pipe": pipe,
                "stage": stage,
                "array": array,
            }
        )

    def phantom_match(self, tick: int, pkt: int, pipe: int, stage: int) -> None:
        self._queued[pkt] = tick
        self.events.append(
            {
                "type": EVENT_PHANTOM_MATCH,
                "tick": tick,
                "pkt": pkt,
                "pipe": pipe,
                "stage": stage,
            }
        )

    def steer(self, tick: int, pkt: int, src: int, pipe: int, stage: int) -> None:
        # With phantoms disabled the steer push *is* the FIFO entry.
        self._queued.setdefault(pkt, tick)
        self.events.append(
            {
                "type": EVENT_STEER,
                "tick": tick,
                "pkt": pkt,
                "pipe": pipe,
                "stage": stage,
                "src": src,
            }
        )

    def fifo_block(self, tick: int, pipe: int, stage: int) -> None:
        """The engine raises this every tick a FIFO pop is blocked by a
        phantom head; only the first tick of an episode emits a record."""
        key = (pipe, stage)
        if key in self._blocked:
            return
        self._blocked[key] = tick
        self.events.append(
            {"type": EVENT_FIFO_BLOCK, "tick": tick, "pipe": pipe, "stage": stage}
        )

    def fifo_pop(self, tick: int, pkt: int, pipe: int, stage: int) -> None:
        entered = self._queued.pop(pkt, tick)
        self.events.append(
            {
                "type": EVENT_FIFO_POP,
                "tick": tick,
                "pkt": pkt,
                "pipe": pipe,
                "stage": stage,
                "wait": tick - entered,
            }
        )
        start = self._blocked.pop((pipe, stage), None)
        if start is not None:
            self.events.append(
                {
                    "type": EVENT_FIFO_UNBLOCK,
                    "tick": tick,
                    "pipe": pipe,
                    "stage": stage,
                    "blocked": tick - start,
                }
            )

    def service(self, tick: int, pkt: int, pipe: int, stage: int) -> None:
        self.events.append(
            {
                "type": EVENT_SERVICE,
                "tick": tick,
                "pkt": pkt,
                "pipe": pipe,
                "stage": stage,
            }
        )

    def ecn_mark(self, tick: int, pkt: int, pipe: int, stage: int) -> None:
        self.events.append(
            {
                "type": EVENT_ECN,
                "tick": tick,
                "pkt": pkt,
                "pipe": pipe,
                "stage": stage,
            }
        )

    def remap(self, tick: int, moves: int) -> None:
        self.events.append({"type": EVENT_REMAP, "tick": tick, "moves": moves})

    def egress(self, tick: int, pkt: int, latency: float) -> None:
        self.events.append(
            {"type": EVENT_EGRESS, "tick": tick, "pkt": pkt, "latency": latency}
        )

    def drop(self, tick: int, pkt: int, reason: str) -> None:
        self.events.append(
            {"type": EVENT_DROP, "tick": tick, "pkt": pkt, "reason": reason}
        )

    def fault_start(
        self, tick: int, kind: str, pipe: Optional[int], stage: Optional[int]
    ) -> None:
        self.events.append(
            {
                "type": EVENT_FAULT_START,
                "tick": tick,
                "kind": kind,
                "pipe": pipe,
                "stage": stage,
            }
        )

    def fault_end(
        self, tick: int, kind: str, pipe: Optional[int], stage: Optional[int]
    ) -> None:
        self.events.append(
            {
                "type": EVENT_FAULT_END,
                "tick": tick,
                "kind": kind,
                "pipe": pipe,
                "stage": stage,
            }
        )

    def emergency_remap(
        self, tick: int, pipe: int, moved: int, deferred: int, attempt: int
    ) -> None:
        self.events.append(
            {
                "type": EVENT_EMERGENCY_REMAP,
                "tick": tick,
                "pipe": pipe,
                "moved": moved,
                "deferred": deferred,
                "attempt": attempt,
            }
        )

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)


# ---------------------------------------------------------------------------
# JSONL export
# ---------------------------------------------------------------------------


def write_jsonl(
    events: List[Dict], path: PathLike, meta: Optional[Dict] = None
) -> None:
    header = {"format": JSONL_FORMAT, "version": TRACE_EVENTS_VERSION}
    header.update(meta or {})
    with open(path, "w") as fh:
        fh.write(json.dumps(header) + "\n")
        for event in events:
            fh.write(json.dumps(event) + "\n")


def read_jsonl(path: PathLike) -> Tuple[Dict, List[Dict]]:
    with open(path) as fh:
        header = json.loads(fh.readline())
        if header.get("format") != JSONL_FORMAT:
            raise ValueError(f"{path}: not an {JSONL_FORMAT} file")
        events = [json.loads(line) for line in fh if line.strip()]
    return header, events


# ---------------------------------------------------------------------------
# Chrome trace_event export
# ---------------------------------------------------------------------------

# Process id for events without a (pipeline, stage) lane.
SWITCH_PID = 0


def _lane(event: Dict) -> Tuple[int, int]:
    pipe = event.get("pipe")
    stage = event.get("stage")
    if pipe is None:
        return SWITCH_PID, 0
    return pipe + 1, stage if stage is not None else 0


def chrome_trace(events: List[Dict], meta: Optional[Dict] = None) -> Dict:
    """Render an event stream as a Chrome trace_event document."""
    trace_events: List[Dict] = []
    lanes: Dict[Tuple[int, int], None] = {}
    for event in events:
        pid, tid = _lane(event)
        lanes[(pid, tid)] = None
        record = {
            "name": event["type"],
            "cat": event["type"],
            "pid": pid,
            "tid": tid,
            "args": dict(event),
        }
        if event["type"] == EVENT_SERVICE:
            record.update(ph="X", ts=event["tick"] * TICK_US, dur=TICK_US)
        elif event["type"] == EVENT_FIFO_UNBLOCK:
            # Paint the whole blocking episode as a duration slice.
            blocked = event.get("blocked", 0)
            record.update(
                ph="X",
                ts=(event["tick"] - blocked) * TICK_US,
                dur=max(blocked, 1) * TICK_US,
            )
        else:
            record.update(ph="i", ts=event["tick"] * TICK_US, s="t")
        trace_events.append(record)

    metadata: List[Dict] = []
    for pid in sorted({pid for pid, _tid in lanes}):
        name = "switch" if pid == SWITCH_PID else f"pipeline {pid - 1}"
        metadata.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "args": {"name": name},
            }
        )
        metadata.append(
            {"ph": "M", "name": "process_sort_index", "pid": pid,
             "args": {"sort_index": pid}}
        )
    for pid, tid in sorted(lanes):
        metadata.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": f"stage {tid}"},
            }
        )
        metadata.append(
            {"ph": "M", "name": "thread_sort_index", "pid": pid, "tid": tid,
             "args": {"sort_index": tid}}
        )

    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
        "otherData": dict(
            meta or {}, format=JSONL_FORMAT, version=TRACE_EVENTS_VERSION
        ),
    }


def write_chrome(
    events: List[Dict], path: PathLike, meta: Optional[Dict] = None
) -> None:
    Path(path).write_text(json.dumps(chrome_trace(events, meta)))


def events_from_chrome(document: Dict) -> List[Dict]:
    """Recover the original event stream from a Chrome export (every
    record is carried verbatim in ``args``)."""
    events = []
    for record in document.get("traceEvents", ()):
        if record.get("ph") == "M":
            continue
        args = record.get("args")
        if isinstance(args, dict) and "type" in args and "tick" in args:
            events.append(args)
    return events


def load_trace(path: PathLike) -> Tuple[Dict, List[Dict]]:
    """Load a trace file in either format (JSONL or Chrome JSON)."""
    text = Path(path).read_text()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        first_line = stripped.splitlines()[0].strip()
        try:
            header = json.loads(first_line)
        except json.JSONDecodeError:
            header = None
        if isinstance(header, dict) and header.get("format") == JSONL_FORMAT:
            return read_jsonl(path)
        document = json.loads(text)
        if "traceEvents" in document:
            return document.get("otherData", {}), events_from_chrome(document)
    raise ValueError(f"{path}: neither an mp5 JSONL trace nor a Chrome trace")
