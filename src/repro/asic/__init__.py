"""Analytic ASIC cost models for MP5's hardware additions (§4.2, Table 1)."""

from .area import (
    AreaBreakdown,
    COMMERCIAL_ASIC_AREA_MM2,
    PAPER_TABLE1,
    area_table,
    chip_area,
    chip_area_mm2,
    model_error_vs_paper,
)
from .sram import (
    BITS_PER_INDEX,
    SramReport,
    sram_overhead,
    sram_overhead_paper_example,
)
from .timing import (
    TARGET_FREQUENCY_GHZ,
    TimingReport,
    achievable_frequency_ghz,
    max_pipelines_at_1ghz,
    timing_report,
)

__all__ = [
    "AreaBreakdown",
    "BITS_PER_INDEX",
    "COMMERCIAL_ASIC_AREA_MM2",
    "PAPER_TABLE1",
    "SramReport",
    "TARGET_FREQUENCY_GHZ",
    "TimingReport",
    "achievable_frequency_ghz",
    "area_table",
    "chip_area",
    "chip_area_mm2",
    "max_pipelines_at_1ghz",
    "model_error_vs_paper",
    "sram_overhead",
    "sram_overhead_paper_example",
    "timing_report",
]
