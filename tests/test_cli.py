"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.domino import program_names


class TestCli:
    def test_programs_lists_catalog(self, capsys):
        assert main(["programs"]) == 0
        out = capsys.readouterr().out.split()
        assert out == program_names()

    def test_compile_shows_layout(self, capsys):
        assert main(["compile", "figure3"]) == 0
        out = capsys.readouterr().out
        assert "resolution" in out
        assert "reg3" in out

    def test_tac_shows_instructions(self, capsys):
        assert main(["tac", "packet_counter"]) == 0
        out = capsys.readouterr().out
        assert "count[0]" in out

    def test_compile_from_file(self, tmp_path, capsys):
        source = tmp_path / "prog.domino"
        source.write_text(
            "struct Packet { int x; };\nint c = 0;\n"
            "void func(struct Packet p) { c = c + p.x; }"
        )
        assert main(["compile", str(source)]) == 0
        assert "prog" in capsys.readouterr().out

    def test_run_prints_summary(self, capsys):
        assert main(["run", "heavy_hitter", "--packets", "400"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "egressed" in out

    def test_equiv_exit_code_zero_on_success(self, capsys):
        code = main(
            ["equiv", "sequencer", "--packets", "300", "--pipelines", "2"]
        )
        assert code == 0
        assert "EQUAL" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "1 GHz" in capsys.readouterr().out

    def test_micro_d4(self, capsys):
        code = main(["micro", "d4", "--packets", "800", "--seeds", "1"])
        assert code == 0
        assert "MP5 0.000" in capsys.readouterr().out

    def test_unknown_program_raises(self):
        with pytest.raises(KeyError):
            main(["compile", "definitely_not_a_program"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
