"""Functional-equivalence checking (§2.2.1)."""

from .checker import EquivalenceReport, check_equivalence, compare_runs

__all__ = ["EquivalenceReport", "check_equivalence", "compare_runs"]
