"""Three-address code (TAC) intermediate representation.

The Domino compiler's preprocessing phase (§3.3, Figure 5) converts the
input program into "a simpler three-address code form". Our TAC is a
straight-line sequence of instructions over *temporaries*; control flow
has been flattened into guards (predicated execution) exactly the way
Domino lowers branches into predicated packet transactions.

Instruction kinds
-----------------

``read_field``   t = p.f                  (load a packet header field)
``write_field``  p.f = a        [guard]   (store a packet header field)
``const``        t = c
``unary``        t = op a
``binary``       t = a op b
``call``         t = builtin(a, ...)
``select``       t = g ? a : b            (mux; the workhorse of flattening)
``reg_read``     t = R[idx]     [guard]   (stateful: read register slot)
``reg_write``    R[idx] = a     [guard]   (stateful: write register slot)

Guards are temporaries holding 0/1. A ``None`` guard means
unconditional. ``reg_read``/``reg_write`` with a false guard perform *no
state access at all* — this is what preserves the program's state-access
pattern (which registers a given packet touches), the property MP5's
correctness condition C1 is defined over.

All arithmetic is 32-bit two's complement, mirroring the switch datapath.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..domino.builtins import BUILTINS, MASK32
from ..errors import CompilerError


@dataclass(frozen=True)
class Temp:
    """An SSA-style temporary. Each temp is assigned exactly once."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """An integer constant operand."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


Operand = Union[Temp, Const]


class OpKind(enum.Enum):
    READ_FIELD = "read_field"
    WRITE_FIELD = "write_field"
    CONST = "const"
    UNARY = "unary"
    BINARY = "binary"
    CALL = "call"
    SELECT = "select"
    REG_READ = "reg_read"
    REG_WRITE = "reg_write"


@dataclass
class TacInstr:
    """One TAC instruction.

    Field usage by kind:

    * READ_FIELD:  dest, field
    * WRITE_FIELD: field, args=[value], guard?
    * CONST:       dest, args=[Const]
    * UNARY:       dest, op, args=[a]
    * BINARY:      dest, op, args=[a, b]
    * CALL:        dest, op=builtin name, args
    * SELECT:      dest, args=[g, if_true, if_false]
    * REG_READ:    dest, reg, args=[idx], guard?
    * REG_WRITE:   reg, args=[idx, value], guard?
    """

    kind: OpKind
    dest: Optional[Temp] = None
    op: str = ""
    args: List[Operand] = field(default_factory=list)
    guard: Optional[Temp] = None
    reg: Optional[str] = None
    field_name: Optional[str] = None

    # ------------------------------------------------------------------
    # Introspection used by the scheduler
    # ------------------------------------------------------------------

    def uses(self) -> List[Temp]:
        """Temporaries this instruction reads (including its guard)."""
        used = [a for a in self.args if isinstance(a, Temp)]
        if self.guard is not None:
            used.append(self.guard)
        return used

    def defines(self) -> Optional[Temp]:
        return self.dest

    @property
    def is_stateful(self) -> bool:
        return self.kind in (OpKind.REG_READ, OpKind.REG_WRITE)

    def __str__(self) -> str:
        guard = f" [if {self.guard}]" if self.guard is not None else ""
        if self.kind is OpKind.READ_FIELD:
            return f"{self.dest} = p.{self.field_name}"
        if self.kind is OpKind.WRITE_FIELD:
            return f"p.{self.field_name} = {self.args[0]}{guard}"
        if self.kind is OpKind.CONST:
            return f"{self.dest} = {self.args[0]}"
        if self.kind is OpKind.UNARY:
            return f"{self.dest} = {self.op}{self.args[0]}"
        if self.kind is OpKind.BINARY:
            return f"{self.dest} = {self.args[0]} {self.op} {self.args[1]}"
        if self.kind is OpKind.CALL:
            joined = ", ".join(str(a) for a in self.args)
            return f"{self.dest} = {self.op}({joined})"
        if self.kind is OpKind.SELECT:
            return f"{self.dest} = {self.args[0]} ? {self.args[1]} : {self.args[2]}"
        if self.kind is OpKind.REG_READ:
            return f"{self.dest} = {self.reg}[{self.args[0]}]{guard}"
        if self.kind is OpKind.REG_WRITE:
            return f"{self.reg}[{self.args[0]}] = {self.args[1]}{guard}"
        raise AssertionError(self.kind)


@dataclass
class TacProgram:
    """A lowered program: straight-line TAC plus declarations."""

    instrs: List[TacInstr]
    packet_fields: List[str]
    # name -> (size, initial values)
    registers: Dict[str, Tuple[int, Tuple[int, ...]]]
    source_name: str = "<tac>"

    def __str__(self) -> str:
        return "\n".join(str(i) for i in self.instrs)

    def instructions_for_register(self, reg: str) -> List[TacInstr]:
        return [i for i in self.instrs if i.reg == reg]

    @property
    def register_names(self) -> List[str]:
        return list(self.registers)

    def validate(self) -> None:
        """Check SSA discipline and use-before-def; raises CompilerError."""
        defined: set = set()
        for instr in self.instrs:
            for used in instr.uses():
                if used not in defined:
                    raise CompilerError(
                        f"{self.source_name}: temp {used} used before definition "
                        f"in {instr}"
                    )
            dest = instr.defines()
            if dest is not None:
                if dest in defined:
                    raise CompilerError(
                        f"{self.source_name}: temp {dest} defined twice"
                    )
                defined.add(dest)


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------

def _to_signed32(value: int) -> int:
    value &= MASK32
    return value - (1 << 32) if value & 0x80000000 else value


def _wrap(value: int) -> int:
    return _to_signed32(value)


_BINARY_EVAL = {
    "+": lambda a, b: _wrap(a + b),
    "-": lambda a, b: _wrap(a - b),
    "*": lambda a, b: _wrap(a * b),
    "/": lambda a, b: _wrap(int(a / b)) if b != 0 else 0,
    "%": lambda a, b: _wrap(int(a - b * int(a / b))) if b != 0 else 0,
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "&&": lambda a, b: int(bool(a) and bool(b)),
    "||": lambda a, b: int(bool(a) or bool(b)),
    "&": lambda a, b: _wrap(a & b),
    "|": lambda a, b: _wrap(a | b),
    "^": lambda a, b: _wrap(a ^ b),
    "<<": lambda a, b: _wrap(a << (b & 31)),
    ">>": lambda a, b: _wrap((a & MASK32) >> (b & 31)),
}

_UNARY_EVAL = {
    "-": lambda a: _wrap(-a),
    "!": lambda a: int(not a),
}


class TacEvaluator:
    """Executes TAC instructions against a packet and register store.

    ``env`` maps Temp -> int for the current packet; ``headers`` is the
    mutable packet header dict; ``registers`` maps array name -> list of
    ints. The evaluator is deliberately tiny — simulators call
    :meth:`run_instr` per instruction so they can interleave state access
    accounting.
    """

    def __init__(
        self,
        headers: Dict[str, int],
        registers: Dict[str, List[int]],
        env: Optional[Dict[Temp, int]] = None,
        on_access=None,
    ):
        self.headers = headers
        self.registers = registers
        self.env: Dict[Temp, int] = env if env is not None else {}
        # Optional callback fired as on_access(reg_name, index, kind)
        # whenever a guarded state access actually executes; used for
        # C1 (state-access-order) accounting.
        self.on_access = on_access

    def value(self, operand: Operand) -> int:
        if isinstance(operand, Const):
            return operand.value
        try:
            return self.env[operand]
        except KeyError:
            raise CompilerError(f"temp {operand} has no value") from None

    def _guard_true(self, instr: TacInstr) -> bool:
        return instr.guard is None or bool(self.env.get(instr.guard, 0))

    def run_instr(self, instr: TacInstr) -> None:
        kind = instr.kind
        if kind is OpKind.READ_FIELD:
            self.env[instr.dest] = _wrap(self.headers.get(instr.field_name, 0))
        elif kind is OpKind.WRITE_FIELD:
            if self._guard_true(instr):
                self.headers[instr.field_name] = self.value(instr.args[0])
        elif kind is OpKind.CONST:
            self.env[instr.dest] = _wrap(self.value(instr.args[0]))
        elif kind is OpKind.UNARY:
            self.env[instr.dest] = _UNARY_EVAL[instr.op](self.value(instr.args[0]))
        elif kind is OpKind.BINARY:
            self.env[instr.dest] = _BINARY_EVAL[instr.op](
                self.value(instr.args[0]), self.value(instr.args[1])
            )
        elif kind is OpKind.CALL:
            func = BUILTINS[instr.op]
            self.env[instr.dest] = _wrap(func(*[self.value(a) for a in instr.args]))
        elif kind is OpKind.SELECT:
            picked = instr.args[1] if self.value(instr.args[0]) else instr.args[2]
            self.env[instr.dest] = self.value(picked)
        elif kind is OpKind.REG_READ:
            if self._guard_true(instr):
                idx = self._reg_index(instr)
                self.env[instr.dest] = self.registers[instr.reg][idx]
                if self.on_access is not None:
                    self.on_access(instr.reg, idx, "read")
            else:
                # No state access; the value is never consumed on paths
                # where the guard is false, but define it to keep SSA sane.
                self.env[instr.dest] = 0
        elif kind is OpKind.REG_WRITE:
            if self._guard_true(instr):
                idx = self._reg_index(instr)
                self.registers[instr.reg][idx] = self.value(instr.args[1])
                if self.on_access is not None:
                    self.on_access(instr.reg, idx, "write")
        else:  # pragma: no cover
            raise AssertionError(kind)

    def _reg_index(self, instr: TacInstr) -> int:
        idx = self.value(instr.args[0])
        size = len(self.registers[instr.reg])
        if not 0 <= idx < size:
            # Hardware register indexes wrap within the array, mirroring
            # the masking an RMT pipeline applies to its address lines.
            idx %= size
        return idx

    def run(self, instrs: Iterable[TacInstr]) -> None:
        for instr in instrs:
            self.run_instr(instr)


class TempFactory:
    """Generates fresh, uniquely named temporaries."""

    def __init__(self, prefix: str = "t"):
        self.prefix = prefix
        self.counter = 0

    def fresh(self, hint: str = "") -> Temp:
        """Return a new uniquely-named temporary."""
        name = f"{self.prefix}{self.counter}"
        if hint:
            name = f"{self.prefix}{self.counter}_{hint}"
        self.counter += 1
        return Temp(name)
