"""TAC-to-NumPy compilation for the batch (vector) engine.

:mod:`repro.compiler.jit` lowers a stage's instruction list to one
Python function over scalar packet state; this module lowers the same
list to one function over *columns* — structure-of-arrays packet state
where every header field and every PHV temp is a contiguous ``int64``
array indexed by packet row. A kernel invocation executes the stage for
a whole batch of packets at once:

    kernel.fn(H, registers, E, rows, acc=None)

* ``H``    — dict field name -> int64[N] (all packets; raw header
  values, wrapped on read exactly like the scalar engines);
* ``registers`` — dict array name -> int64 NumPy array (shared state);
* ``E``    — dict temp name -> int64[N] (the PHV columns);
* ``rows`` — int64 index array selecting the packets to process;
* ``acc``  — optional dict array name -> bool[len(rows)]; a lane is set
  when the packet actually executed a register access on that array
  (i.e. its guard evaluated true), which is what the wasted-slot
  accounting for conservative phantoms needs.

Semantics are bit-identical to the scalar JIT / interpreter: 32-bit
two's-complement wrap on arithmetic, C-style truncating division and
modulo, shift counts masked to 5 bits, guarded register reads producing
0 on a false guard, raw (unwrapped) register and header stores.
Builtin calls (``hash2`` etc.) fall back to a per-row Python loop —
they are rare and arbitrary Python.

The caller is responsible for ordering: register read-modify-write
chains are only correct when no two rows in one invocation touch the
same register slot (the vector engine partitions batches into such
"waves"; see :mod:`repro.mp5.vector`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..domino.builtins import BUILTINS
from ..errors import CompilerError
from .jit import _wrapped
from .tac import Const, OpKind, TacInstr, Temp, _to_signed32

_counter = itertools.count()

_WRAPPED_BINOPS = {"+": "+", "-": "-", "*": "*", "&": "&", "|": "|", "^": "^"}
_COMPARISONS = {"==", "!=", "<", "<=", ">", ">="}


def _truthy(x):
    return np.asarray(x) != 0


def _maskn(g, n: int) -> np.ndarray:
    """Broadcast a guard value to a bool[n] lane mask."""
    m = np.asarray(g) != 0
    if m.ndim == 0:
        return np.full(n, bool(m)) if n else np.zeros(0, dtype=bool)
    return m


def _divv(a, b):
    """C-style truncating division, 0 on division by zero, wrapped."""
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    bb = np.where(b == 0, 1, b)
    q = np.abs(a) // np.abs(bb)
    q = np.where((a < 0) != (bb < 0), -q, q)
    return np.where(b == 0, 0, ((q + 2147483648) & 4294967295) - 2147483648)


def _modv(a, b):
    """``a - b * trunc(a / b)``, 0 on division by zero, wrapped."""
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    bb = np.where(b == 0, 1, b)
    q = np.abs(a) // np.abs(bb)
    q = np.where((a < 0) != (bb < 0), -q, q)
    r = a - bb * q
    return np.where(b == 0, 0, ((r + 2147483648) & 4294967295) - 2147483648)


def _callv(fn, args: Tuple, n: int) -> np.ndarray:
    """Per-row builtin call; args cast to Python ints so arbitrary-
    precision builtin arithmetic (hash mixing) cannot overflow int64."""
    cols = [np.broadcast_to(np.asarray(a, dtype=np.int64), (n,)) for a in args]
    out = np.empty(n, dtype=np.int64)
    for i in range(n):
        out[i] = _to_signed32(fn(*(int(c[i]) for c in cols)))
    return out


def _regset(arr, idx, val, mask=None) -> None:
    """Masked scatter into a register column or header column."""
    if mask is None:
        if np.ndim(idx) == 0 and np.ndim(val) != 0:
            # Constant index: every row writes the same slot, last wins.
            arr[idx] = val[-1]
        else:
            arr[idx] = val
    else:
        idx = np.broadcast_to(np.asarray(idx), mask.shape)
        val = np.broadcast_to(np.asarray(val), mask.shape)
        arr[idx[mask]] = val[mask]


def _acc_set(acc, reg: str) -> None:
    if acc is not None:
        lane = acc.get(reg)
        if lane is not None:
            lane[:] = True


def _acc_or(acc, reg: str, mask) -> None:
    if acc is not None:
        lane = acc.get(reg)
        if lane is not None:
            lane |= np.broadcast_to(mask, lane.shape)


@dataclass(frozen=True)
class VectorKernel:
    """One compiled stage plus the metadata the engine plans with."""

    fn: Callable
    fields_read: frozenset
    fields_written: frozenset
    temps_in: Tuple[str, ...]  # loaded from E before the stage
    temps_out: Tuple[str, ...]  # stored to E after the stage
    stateful: Tuple[TacInstr, ...]  # REG_READ/REG_WRITE, program order
    source: str


def _var(temp: Temp, names: Dict[Temp, str]) -> str:
    name = names.get(temp)
    if name is None:
        name = f"v{len(names)}"
        names[temp] = name
    return name


def _operand(op, names: Dict[Temp, str]) -> str:
    if isinstance(op, Const):
        return repr(op.value)
    return _var(op, names)


def _emit(instr: TacInstr, names: Dict[Temp, str], lines: List[str]) -> None:
    kind = instr.kind
    pad = "    "
    if kind is OpKind.READ_FIELD:
        lines.append(
            f"{pad}{_var(instr.dest, names)} = "
            f"{_wrapped(f'H[{instr.field_name!r}][rows]')}"
        )
        return
    if kind is OpKind.WRITE_FIELD:
        value = _operand(instr.args[0], names)
        if instr.guard is None:
            lines.append(f"{pad}H[{instr.field_name!r}][rows] = {value}")
        else:
            g = _operand(instr.guard, names)
            lines.append(f"{pad}_m = _maskn({g}, _n)")
            lines.append(
                f"{pad}_regset(H[{instr.field_name!r}], rows, {value}, _m)"
            )
        return
    if kind is OpKind.CONST:
        if not isinstance(instr.args[0], Const):
            raise CompilerError("vjit: CONST with non-constant operand")
        lines.append(
            f"{pad}{_var(instr.dest, names)} = "
            f"{_to_signed32(instr.args[0].value)!r}"
        )
        return
    if kind is OpKind.UNARY:
        a = _operand(instr.args[0], names)
        dest = _var(instr.dest, names)
        if instr.op == "-":
            lines.append(f"{pad}{dest} = {_wrapped(f'-({a})')}")
            return
        if instr.op == "!":
            lines.append(f"{pad}{dest} = _np.where(_truthy({a}), 0, 1)")
            return
        raise CompilerError(f"vjit: unknown unary op {instr.op!r}")
    if kind is OpKind.BINARY:
        _emit_binary(instr, names, lines)
        return
    if kind is OpKind.CALL:
        args = ", ".join(_operand(a, names) for a in instr.args)
        lines.append(
            f"{pad}{_var(instr.dest, names)} = "
            f"_callv(_builtins[{instr.op!r}], ({args},), _n)"
        )
        return
    if kind is OpKind.SELECT:
        g = _operand(instr.args[0], names)
        a = _operand(instr.args[1], names)
        b = _operand(instr.args[2], names)
        lines.append(
            f"{pad}{_var(instr.dest, names)} = "
            f"_np.where(_truthy({g}), {a}, {b})"
        )
        return
    if kind is OpKind.REG_READ:
        dest = _var(instr.dest, names)
        idx = _operand(instr.args[0], names)
        lines.append(f"{pad}_a = registers[{instr.reg!r}]")
        lines.append(f"{pad}_i = ({idx}) % _a.shape[0]")
        if instr.guard is None:
            lines.append(f"{pad}{dest} = _a[_i]")
            lines.append(f"{pad}_acc_set(acc, {instr.reg!r})")
        else:
            g = _operand(instr.guard, names)
            lines.append(f"{pad}_m = _maskn({g}, _n)")
            lines.append(f"{pad}{dest} = _np.where(_m, _a[_i], 0)")
            lines.append(f"{pad}_acc_or(acc, {instr.reg!r}, _m)")
        return
    if kind is OpKind.REG_WRITE:
        idx = _operand(instr.args[0], names)
        value = _operand(instr.args[1], names)
        lines.append(f"{pad}_a = registers[{instr.reg!r}]")
        lines.append(f"{pad}_i = ({idx}) % _a.shape[0]")
        if instr.guard is None:
            lines.append(f"{pad}_regset(_a, _i, {value})")
            lines.append(f"{pad}_acc_set(acc, {instr.reg!r})")
        else:
            g = _operand(instr.guard, names)
            lines.append(f"{pad}_m = _maskn({g}, _n)")
            lines.append(f"{pad}_regset(_a, _i, {value}, _m)")
            lines.append(f"{pad}_acc_or(acc, {instr.reg!r}, _m)")
        return
    raise CompilerError(f"vjit: unknown instruction kind {kind}")


def _emit_binary(
    instr: TacInstr, names: Dict[Temp, str], lines: List[str]
) -> None:
    a = _operand(instr.args[0], names)
    b = _operand(instr.args[1], names)
    dest = _var(instr.dest, names)
    op = instr.op
    pad = "    "
    if op in _WRAPPED_BINOPS:
        lines.append(
            f"{pad}{dest} = "
            f"{_wrapped(f'({a}) {_WRAPPED_BINOPS[op]} ({b})')}"
        )
        return
    if op in _COMPARISONS:
        lines.append(f"{pad}{dest} = _np.where(({a}) {op} ({b}), 1, 0)")
        return
    if op == "/":
        lines.append(f"{pad}{dest} = _divv({a}, {b})")
        return
    if op == "%":
        lines.append(f"{pad}{dest} = _modv({a}, {b})")
        return
    if op == "&&":
        lines.append(
            f"{pad}{dest} = _np.where(_truthy({a}) & _truthy({b}), 1, 0)"
        )
        return
    if op == "||":
        lines.append(
            f"{pad}{dest} = _np.where(_truthy({a}) | _truthy({b}), 1, 0)"
        )
        return
    if op == "<<":
        lines.append(
            f"{pad}{dest} = "
            f"{_wrapped(f'_i64({a}) << (_i64({b}) & 31)')}"
        )
        return
    if op == ">>":
        lines.append(
            f"{pad}{dest} = "
            f"{_wrapped(f'(_i64({a}) & 4294967295) >> (_i64({b}) & 31)')}"
        )
        return
    raise CompilerError(f"vjit: unknown binary op {op!r}")


def _i64(x):
    return np.asarray(x, dtype=np.int64)


def compile_vector_stage(
    instrs: Sequence[TacInstr], name: str = "stage"
) -> Optional[VectorKernel]:
    """Compile one stage's instruction list to a batch kernel."""
    if not instrs:
        return None
    names: Dict[Temp, str] = {}
    defined: Set[Temp] = set()
    used_before_def: List[Temp] = []
    fields_read: Set[str] = set()
    fields_written: Set[str] = set()
    stateful: List[TacInstr] = []
    for instr in instrs:
        for temp in instr.uses():
            if temp not in defined and temp not in used_before_def:
                used_before_def.append(temp)
        dest = instr.defines()
        if dest is not None:
            defined.add(dest)
        if instr.kind is OpKind.READ_FIELD:
            fields_read.add(instr.field_name)
        elif instr.kind is OpKind.WRITE_FIELD:
            fields_written.add(instr.field_name)
        if instr.is_stateful:
            stateful.append(instr)

    lines: List[str] = [
        f"def _{name}(H, registers, E, rows, acc=None):",
        "    _n = rows.shape[0]",
    ]
    for temp in used_before_def:
        lines.append(f"    {_var(temp, names)} = E[{temp.name!r}][rows]")
    for instr in instrs:
        _emit(instr, names, lines)
    temps_out = sorted(defined, key=lambda t: t.name)
    for temp in temps_out:
        lines.append(f"    E[{temp.name!r}][rows] = {_var(temp, names)}")

    source = "\n".join(lines)
    scope = {
        "_np": np,
        "_builtins": BUILTINS,
        "_truthy": _truthy,
        "_maskn": _maskn,
        "_divv": _divv,
        "_modv": _modv,
        "_callv": _callv,
        "_regset": _regset,
        "_acc_set": _acc_set,
        "_acc_or": _acc_or,
        "_i64": _i64,
    }
    exec(compile(source, f"<vjit:{name}:{next(_counter)}>", "exec"), scope)
    fn = scope[f"_{name}"]
    fn.__doc__ = source
    return VectorKernel(
        fn=fn,
        fields_read=frozenset(fields_read),
        fields_written=frozenset(fields_written),
        temps_in=tuple(t.name for t in used_before_def),
        temps_out=tuple(t.name for t in temps_out),
        stateful=tuple(stateful),
        source=source,
    )
