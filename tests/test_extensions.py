"""Tests for the §3.4 extension mechanisms: ECN marking and latency
telemetry, plus the extra application programs."""

import pytest

from repro.compiler import compile_program
from repro.equivalence import check_equivalence
from repro.mp5 import MP5Config, MP5Switch, run_mp5
from repro.workloads import line_rate_trace


class TestEcnMarking:
    def test_marks_when_queue_builds(self, sequencer_program):
        # A global counter at 64 B line rate on 4 pipelines builds deep
        # queues: packets crossing the threshold get marked.
        trace = line_rate_trace(800, 4, lambda r, i: {"seq": 0}, seed=0)
        cfg = MP5Config(num_pipelines=4, ecn_threshold=8)
        stats, _ = run_mp5(sequencer_program, trace, cfg)
        assert stats.ecn_marked > 0
        assert stats.ecn_marked <= stats.offered

    def test_no_marks_below_threshold(self, heavy_hitter_program):
        from .conftest import heavy_hitter_headers

        trace = line_rate_trace(400, 4, heavy_hitter_headers, seed=0)
        cfg = MP5Config(num_pipelines=4, ecn_threshold=1000)
        stats, _ = run_mp5(heavy_hitter_program, trace, cfg)
        assert stats.ecn_marked == 0

    def test_disabled_by_default(self, sequencer_program):
        trace = line_rate_trace(400, 4, lambda r, i: {"seq": 0}, seed=0)
        stats, _ = run_mp5(sequencer_program, trace, MP5Config(num_pipelines=4))
        assert stats.ecn_marked == 0

    def test_marking_does_not_change_function(self, sequencer_program):
        trace = line_rate_trace(300, 4, lambda r, i: {"seq": 0}, seed=0)
        report = check_equivalence(
            sequencer_program, trace, MP5Config(num_pipelines=4, ecn_threshold=4)
        )
        assert report.equivalent

    def test_invalid_threshold_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            MP5Config(ecn_threshold=0)


class TestLatencyTelemetry:
    def test_uncontended_latency_is_pipeline_depth(self):
        program = compile_program("stateless_rewrite")
        trace = line_rate_trace(
            100, 4, lambda r, i: {"ttl": 64, "dscp": 0, "out": 0}, seed=0
        )
        switch = MP5Switch(program, MP5Config(num_pipelines=4))
        stats = switch.run(trace)
        # Stateless packets traverse depth stages, one per tick.
        assert stats.mean_latency == pytest.approx(switch.depth, abs=1.5)

    def test_contention_raises_tail_latency(self, sequencer_program):
        trace = line_rate_trace(600, 4, lambda r, i: {"seq": 0}, seed=0)
        switch = MP5Switch(sequencer_program, MP5Config(num_pipelines=4))
        stats = switch.run(trace)
        assert stats.latency_percentile(99) > stats.latency_percentile(50)
        assert stats.latency_percentile(99) > switch.depth * 2

    def test_percentile_bounds_checked(self):
        from repro.mp5 import SwitchStats

        stats = SwitchStats()
        stats.latencies = [1.0, 2.0, 3.0]
        assert stats.latency_percentile(0) == 1.0
        assert stats.latency_percentile(100) == 3.0
        with pytest.raises(ValueError):
            stats.latency_percentile(101)

    def test_summary_includes_latency(self, sequencer_program):
        trace = line_rate_trace(100, 2, lambda r, i: {"seq": 0}, seed=0)
        stats, _ = run_mp5(sequencer_program, trace, MP5Config(num_pipelines=2))
        assert stats.summary()["mean_latency"] > 0


class TestExtraPrograms:
    def test_sampled_netflow_samples_every_nth(self):
        program = compile_program("sampled_netflow")
        regs = program.make_register_store()
        sampled = []
        for _ in range(128):
            out = program.execute_packet({"sampled": 0}, regs)
            sampled.append(out["sampled"])
        assert sum(sampled) == 2  # packets 64 and 128
        assert sampled[63] == 1 and sampled[127] == 1

    def test_token_bucket_polices_bursts(self):
        program = compile_program("token_bucket")
        regs = program.make_register_store()
        headers = {"sport": 1, "dport": 2, "now": 0, "allowed": 0}
        allowed = [
            program.execute_packet(dict(headers), regs)["allowed"]
            for _ in range(12)
        ]
        # Initial burst of 8 tokens, then the bucket runs dry at now=0.
        assert sum(allowed) == 8
        assert allowed[:8] == [1] * 8
        # Time passes: tokens refill.
        headers["now"] = 100
        assert program.execute_packet(dict(headers), regs)["allowed"] == 1

    def test_ewma_converges_toward_samples(self):
        program = compile_program("ewma_latency")
        regs = program.make_register_store()
        estimate = 0
        for _ in range(60):
            out = program.execute_packet(
                {"flow": 7, "sample": 800, "estimate": 0}, regs
            )
            estimate = out["estimate"]
        assert 600 <= estimate <= 800

    def test_syn_flood_flags_attack(self):
        program = compile_program("syn_flood")
        regs = program.make_register_store()
        out = {}
        for _ in range(150):
            out = program.execute_packet(
                {"dst_ip": 9, "syn": 1, "fin": 0, "under_attack": 0}, regs
            )
        assert out["under_attack"] == 1
        # Balanced traffic clears the flag for another destination.
        for _ in range(10):
            out = program.execute_packet(
                {"dst_ip": 10, "syn": 1, "fin": 1, "under_attack": 0}, regs
            )
        assert out["under_attack"] == 0

    def test_dns_ttl_change_counts_flux(self):
        program = compile_program("dns_ttl_change")
        regs = program.make_register_store()
        out = {}
        for i in range(40):
            out = program.execute_packet(
                {"domain": 5, "ttl": i % 2, "suspicious": 0}, regs
            )
        assert out["suspicious"] == 1
