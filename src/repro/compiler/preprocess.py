"""Preprocessing phase: lower a Domino AST into three-address code.

This mirrors the first phase of the Domino compiler workflow (Figure 5):
branches are flattened into predicated straight-line code, expressions
are decomposed into three-address instructions over SSA temporaries, and
register accesses are normalized into the *packet transaction* shape a
Banzai atom can execute:

* each register array is accessed at **one** index per packet (programs
  that use two different indexes for the same array are rejected, as in
  Domino);
* per array, the lowering emits a single guarded ``reg_read`` at the
  first access and a single guarded ``reg_write`` (carrying the final
  muxed value) at the end — the read-modify-write an atom performs
  atomically within one stage;
* the *access guard* is the disjunction of the guards of all syntactic
  accesses. When that disjunction cannot be placed before the read (a
  later branch introduces a new guard), the access conservatively becomes
  unconditional, matching MP5's "assume the predicate is true" fallback
  (§3.3).

Local value numbering makes structurally identical pure expressions share
one temporary, which is also how we detect that two accesses use the same
index expression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..domino.ast_nodes import (
    Assign,
    BinaryExpr,
    CallExpr,
    Expr,
    If,
    IntLiteral,
    LocalDecl,
    LocalVar,
    PacketField,
    Program,
    RegisterRef,
    Stmt,
    TernaryExpr,
    UnaryExpr,
)
from ..errors import CompilerError
from .tac import Const, OpKind, Operand, TacInstr, TacProgram, Temp, TempFactory


@dataclass
class _RegisterAccess:
    """Book-keeping for one register array during lowering."""

    name: str
    index: Operand
    read_instr: TacInstr
    read_position: int  # index into the instruction list
    version: Operand  # current in-transaction value of the slot
    guards: List[Optional[Temp]] = field(default_factory=list)
    wrote: bool = False


class Lowering:
    """Lowers one semantically checked :class:`Program` to TAC."""

    def __init__(self, program: Program):
        self.program = program
        self.temps = TempFactory()
        self.instrs: List[TacInstr] = []
        # Value numbering table for pure ops: key -> temp.
        self.value_table: Dict[tuple, Temp] = {}
        # Current operand for each named value.
        self.field_version: Dict[str, Operand] = {}
        self.local_version: Dict[str, Operand] = {}
        self.fields_loaded: Dict[str, Temp] = {}
        self.reg_access: Dict[str, _RegisterAccess] = {}
        # Position (in self.instrs) where each temp was defined, used to
        # decide whether a guard is available before a register read.
        self.def_position: Dict[Temp, int] = {}

    # ------------------------------------------------------------------
    # Emission helpers
    # ------------------------------------------------------------------

    def _emit(self, instr: TacInstr) -> None:
        if instr.dest is not None:
            self.def_position[instr.dest] = len(self.instrs)
        self.instrs.append(instr)

    def _pure(self, kind: OpKind, op: str, args: List[Operand], hint: str = "") -> Operand:
        """Emit a pure instruction with value numbering."""
        key = (kind, op, tuple(args))
        cached = self.value_table.get(key)
        if cached is not None:
            return cached
        # Constant folding for fully constant operands keeps the IR small
        # and makes index expressions like `0 % 4` come out as constants.
        if all(isinstance(a, Const) for a in args):
            folded = self._try_fold(kind, op, args)
            if folded is not None:
                return folded
        dest = self.temps.fresh(hint)
        self._emit(TacInstr(kind=kind, dest=dest, op=op, args=list(args)))
        self.value_table[key] = dest
        return dest

    def _try_fold(self, kind: OpKind, op: str, args: List[Operand]) -> Optional[Const]:
        from .tac import _BINARY_EVAL, _UNARY_EVAL  # local import: private tables

        values = [a.value for a in args]  # type: ignore[union-attr]
        if kind is OpKind.BINARY and op in _BINARY_EVAL:
            return Const(_BINARY_EVAL[op](values[0], values[1]))
        if kind is OpKind.UNARY and op in _UNARY_EVAL:
            return Const(_UNARY_EVAL[op](values[0]))
        if kind is OpKind.SELECT:
            return Const(values[1] if values[0] else values[2])
        return None

    def _binary(self, op: str, a: Operand, b: Operand, hint: str = "") -> Operand:
        return self._pure(OpKind.BINARY, op, [a, b], hint)

    def _select(self, g: Operand, a: Operand, b: Operand, hint: str = "") -> Operand:
        if a == b:
            return a
        return self._pure(OpKind.SELECT, "", [g, a, b], hint)

    def _not(self, a: Operand) -> Operand:
        return self._pure(OpKind.UNARY, "!", [a])

    def _and(self, a: Optional[Operand], b: Operand) -> Operand:
        if a is None:
            return b
        return self._binary("&&", a, b)

    def _as_temp(self, operand: Operand, hint: str = "") -> Temp:
        """Guards must be temps; wrap constants in a CONST instruction."""
        if isinstance(operand, Temp):
            return operand
        key = (OpKind.CONST, "", (operand,))
        cached = self.value_table.get(key)
        if cached is not None:
            return cached
        dest = self.temps.fresh(hint or "c")
        self._emit(TacInstr(kind=OpKind.CONST, dest=dest, args=[operand]))
        self.value_table[key] = dest
        return dest

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def lower_expr(self, expr: Expr, guard: Optional[Temp]) -> Operand:
        """Lower one expression; returns the operand holding its value."""
        if isinstance(expr, IntLiteral):
            return Const(expr.value)
        if isinstance(expr, PacketField):
            return self._field_value(expr.field_name)
        if isinstance(expr, LocalVar):
            try:
                return self.local_version[expr.name]
            except KeyError:
                raise CompilerError(
                    f"local {expr.name!r} used before assignment"
                ) from None
        if isinstance(expr, RegisterRef):
            return self._register_read(expr, guard)
        if isinstance(expr, UnaryExpr):
            operand = self.lower_expr(expr.operand, guard)
            return self._pure(OpKind.UNARY, expr.op, [operand])
        if isinstance(expr, BinaryExpr):
            left = self.lower_expr(expr.left, guard)
            right = self.lower_expr(expr.right, guard)
            return self._binary(expr.op, left, right)
        if isinstance(expr, TernaryExpr):
            return self._lower_ternary(expr, guard)
        if isinstance(expr, CallExpr):
            args = [self.lower_expr(a, guard) for a in expr.args]
            return self._pure(OpKind.CALL, expr.func, args)
        raise CompilerError(f"cannot lower expression {expr!r}")

    def _lower_ternary(self, expr: TernaryExpr, guard: Optional[Temp]) -> Operand:
        cond = self.lower_expr(expr.condition, guard)
        cond_temp = self._as_temp(cond, "pred")
        then_guard = self._as_temp(self._and(guard, cond_temp))
        else_guard = self._as_temp(self._and(guard, self._not(cond_temp)))
        if_true = self.lower_expr(expr.if_true, then_guard)
        if_false = self.lower_expr(expr.if_false, else_guard)
        return self._select(cond_temp, if_true, if_false, "mux")

    def _field_value(self, name: str) -> Operand:
        current = self.field_version.get(name)
        if current is not None:
            return current
        loaded = self.fields_loaded.get(name)
        if loaded is None:
            loaded = self.temps.fresh(f"f_{name}")
            self._emit(TacInstr(kind=OpKind.READ_FIELD, dest=loaded, field_name=name))
            self.fields_loaded[name] = loaded
        self.field_version[name] = loaded
        return loaded

    # ------------------------------------------------------------------
    # Register transactions
    # ------------------------------------------------------------------

    def _register_state(
        self, ref: RegisterRef, guard: Optional[Temp]
    ) -> _RegisterAccess:
        # Index expressions are evaluated unconditionally: they are pure
        # w.r.t. packet processing (any register reads they contain are
        # themselves separate transactions) and are hoisted to the
        # address-resolution stage by the MP5 transformer.
        index = self.lower_expr(ref.index, None)
        state = self.reg_access.get(ref.register)
        if state is None:
            read_dest = self.temps.fresh(f"r_{ref.register}")
            read_instr = TacInstr(
                kind=OpKind.REG_READ,
                dest=read_dest,
                reg=ref.register,
                args=[index],
            )
            position = len(self.instrs)
            self._emit(read_instr)
            state = _RegisterAccess(
                name=ref.register,
                index=index,
                read_instr=read_instr,
                read_position=position,
                version=read_dest,
            )
            self.reg_access[ref.register] = state
        elif state.index != index:
            raise CompilerError(
                f"register array {ref.register!r} accessed with two different "
                f"index expressions ({state.index} vs {index}); Banzai atoms "
                f"support a single index per array per packet"
            )
        state.guards.append(guard)
        return state

    def _register_read(self, ref: RegisterRef, guard: Optional[Temp]) -> Operand:
        state = self._register_state(ref, guard)
        return state.version

    def register_write(
        self, ref: RegisterRef, value: Operand, guard: Optional[Temp]
    ) -> None:
        state = self._register_state(ref, guard)
        if guard is None:
            state.version = value
        else:
            state.version = self._select(guard, value, state.version, "regmux")
        state.wrote = True

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def lower_stmt(self, stmt: Stmt, guard: Optional[Temp]) -> None:
        if isinstance(stmt, LocalDecl):
            self.local_version[stmt.name] = self.lower_expr(stmt.value, guard)
        elif isinstance(stmt, Assign):
            self._lower_assign(stmt, guard)
        elif isinstance(stmt, If):
            self._lower_if(stmt, guard)
        else:  # pragma: no cover
            raise CompilerError(f"cannot lower statement {stmt!r}")

    def _lower_assign(self, stmt: Assign, guard: Optional[Temp]) -> None:
        value = self.lower_expr(stmt.value, guard)
        target = stmt.target
        if isinstance(target, PacketField):
            if guard is None:
                self.field_version[target.field_name] = value
            else:
                old = self._field_value(target.field_name)
                self.field_version[target.field_name] = self._select(
                    guard, value, old, f"f_{target.field_name}"
                )
        elif isinstance(target, LocalVar):
            if guard is None:
                self.local_version[target.name] = value
            else:
                old = self.local_version.get(target.name)
                if old is None:
                    raise CompilerError(
                        f"local {target.name!r} conditionally assigned before "
                        f"any unconditional assignment"
                    )
                self.local_version[target.name] = self._select(guard, value, old)
        elif isinstance(target, RegisterRef):
            self.register_write(target, value, guard)
        else:  # pragma: no cover
            raise CompilerError(f"bad assignment target {target!r}")

    def _lower_if(self, stmt: If, guard: Optional[Temp]) -> None:
        cond = self.lower_expr(stmt.condition, guard)
        cond_temp = self._as_temp(cond, "pred")
        then_guard = self._as_temp(self._and(guard, cond_temp))
        for inner in stmt.then_body:
            self.lower_stmt(inner, then_guard)
        if stmt.else_body:
            else_guard = self._as_temp(self._and(guard, self._not(cond_temp)))
            for inner in stmt.else_body:
                self.lower_stmt(inner, else_guard)

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------

    def finalize(self) -> TacProgram:
        # Emit the final write-back for every register array that was
        # written, and resolve each array's access guard.
        """Emit register/field write-backs and return the validated TAC."""
        for state in self.reg_access.values():
            access_guard = self._resolve_access_guard(state)
            state.read_instr.guard = access_guard
            if state.wrote:
                self._emit(
                    TacInstr(
                        kind=OpKind.REG_WRITE,
                        reg=state.name,
                        args=[state.index, state.version],
                        guard=access_guard,
                    )
                )
        # Emit final packet-field write-backs.
        for name in self.program.packet_struct.fields:
            version = self.field_version.get(name)
            if version is None or version == self.fields_loaded.get(name):
                continue  # never written, or written back to its own load
            self._emit(
                TacInstr(kind=OpKind.WRITE_FIELD, field_name=name, args=[version])
            )

        registers = {
            reg.name: (reg.size, reg.initial) for reg in self.program.registers
        }
        tac = TacProgram(
            instrs=self.instrs,
            packet_fields=list(self.program.packet_struct.fields),
            registers=registers,
            source_name=self.program.source_name,
        )
        tac.validate()
        return tac

    def _resolve_access_guard(self, state: _RegisterAccess) -> Optional[Temp]:
        """Disjunction of all access guards, or None for unconditional.

        The guard temps must already be defined before the read
        instruction; otherwise we conservatively make the transaction
        unconditional (the atom reads and writes back the old value when
        no syntactic access fired), which preserves functional behaviour
        while over-approximating the access pattern — the same
        conservatism MP5 applies to unresolvable predicates.
        """
        if any(g is None for g in state.guards):
            return None
        unique = []
        for g in state.guards:
            if g not in unique:
                unique.append(g)
        if any(self.def_position[g] > state.read_position for g in unique):
            return None
        combined: Operand = unique[0]
        for g in unique[1:]:
            key = (OpKind.BINARY, "||", (combined, g))
            cached = self.value_table.get(key)
            if cached is not None:
                combined = cached
                continue
            dest = self.temps.fresh("ag")
            instr = TacInstr(
                kind=OpKind.BINARY, dest=dest, op="||", args=[combined, g]
            )
            # Insert the OR immediately before the read so SSA order holds.
            self.instrs.insert(state.read_position, instr)
            self._reindex_positions()
            self.value_table[key] = dest
            combined = dest
        return self._as_temp_before_read(combined, state)

    def _as_temp_before_read(self, operand: Operand, state: _RegisterAccess) -> Temp:
        if isinstance(operand, Temp):
            return operand
        dest = self.temps.fresh("agc")
        self.instrs.insert(
            state.read_position, TacInstr(kind=OpKind.CONST, dest=dest, args=[operand])
        )
        self._reindex_positions()
        return dest

    def _reindex_positions(self) -> None:
        """Recompute def positions and per-array read positions."""
        self.def_position = {}
        positions: Dict[int, int] = {}
        for position, instr in enumerate(self.instrs):
            if instr.dest is not None:
                self.def_position[instr.dest] = position
            positions[id(instr)] = position
        for reg_state in self.reg_access.values():
            reg_state.read_position = positions[id(reg_state.read_instr)]


def preprocess(program: Program) -> TacProgram:
    """Lower a semantically checked Domino program to three-address code."""
    lowering = Lowering(program)
    for stmt in program.body:
        lowering.lower_stmt(stmt, None)
    return lowering.finalize()
