"""Dynamic state sharding: the index-to-pipeline map and its runtime (D2, §3.4).

For every register array of size N, each pipeline physically holds an
N-entry copy, but each index is *active* in exactly one pipeline. The
index-to-pipeline map tracks the active location; it is replicated in
every pipeline (packets only read it) and updated atomically by the
background remap algorithm of Figure 6:

    every t clock cycles, per register array:
      find pipelines H (highest) and L (lowest aggregate access count)
      C = (c_max - c_min) / 2
      find index i in H with the largest access counter < C
      if it exists and its in-flight counter is 0:
          move state at i from H to L; update the map

The runtime also keeps, per index, a packet **access counter**
(incremented at address resolution, reset each epoch) and an
**in-flight counter** (incremented at resolution, decremented when the
access completes) that prevents remapping an index with packets already
steered toward its old location.

The **optimal** policy used by the ideal baseline replaces the
single-move heuristic with a longest-processing-time (LPT) repack of all
indexes each epoch — the bin-packing relaxation §3.4 says is NP-hard to
do exactly but that LPT approximates within 4/3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError


@dataclass
class ShardedArray:
    """Runtime sharding state for one register array."""

    name: str
    size: int
    shardable: bool
    pin_key: str
    index_to_pipeline: np.ndarray  # int32[size]
    access_counts: np.ndarray  # int64[size], reset each epoch
    in_flight: np.ndarray  # int32[size]
    moves: int = 0

    def pipeline_of(self, index: Optional[int]) -> int:
        if index is None:
            # Array-level placement (stateful index): every slot lives in
            # the same pipeline, use slot 0 as the representative.
            return int(self.index_to_pipeline[0])
        return int(self.index_to_pipeline[index % self.size])


class ShardingRuntime:
    """Owns the maps and counters for every array of a program.

    The D2 runtime: per-array index-to-pipeline maps, access counters,
    and in-flight counters. Every ``remap_period`` ticks the Figure 6
    heuristic (or the iterated-greedy ``optimal`` variant) rebalances
    hot indices; only indices with zero packets in flight may move, so
    steering decisions already made stay valid (C1 is never broken by a
    remap). Under faults the same machinery runs *emergency* remaps —
    evacuating a failed pipeline's indices to healthy ones with
    drain/retry/backoff (see :mod:`repro.faults`).
    """

    def __init__(
        self,
        arrays: Sequence[Tuple[str, int, bool, str]],
        num_pipelines: int,
        initial: str = "roundrobin",
        rng: Optional[np.random.Generator] = None,
    ):
        """``arrays`` is a sequence of (name, size, shardable, pin_key).

        ``initial`` is 'roundrobin' or 'random'; non-shardable arrays are
        placed whole on one pipeline, arrays sharing a pin_key on the
        same one.
        """
        if num_pipelines < 1:
            raise ConfigError("need at least one pipeline")
        if initial not in ("roundrobin", "random"):
            raise ConfigError(f"unknown initial sharding {initial!r}")
        self.num_pipelines = num_pipelines
        self.rng = rng or np.random.default_rng(0)
        self.arrays: Dict[str, ShardedArray] = {}
        pin_assignment: Dict[str, int] = {}
        next_pin = 0
        for name, size, shardable, pin_key in arrays:
            if shardable and num_pipelines > 1:
                if initial == "roundrobin":
                    mapping = np.arange(size, dtype=np.int32) % num_pipelines
                else:
                    mapping = self.rng.integers(
                        0, num_pipelines, size=size, dtype=np.int32
                    )
            else:
                if pin_key not in pin_assignment:
                    pin_assignment[pin_key] = next_pin % num_pipelines
                    next_pin += 1
                mapping = np.full(size, pin_assignment[pin_key], dtype=np.int32)
            self.arrays[name] = ShardedArray(
                name=name,
                size=size,
                shardable=shardable and num_pipelines > 1,
                pin_key=pin_key,
                index_to_pipeline=mapping,
                access_counts=np.zeros(size, dtype=np.int64),
                in_flight=np.zeros(size, dtype=np.int32),
            )

    # ------------------------------------------------------------------
    # Hot path: resolution / completion accounting
    # ------------------------------------------------------------------

    def lookup(self, array: str, index: Optional[int]) -> int:
        return self.arrays[array].pipeline_of(index)

    def note_resolved(self, array: str, index: Optional[int]) -> int:
        """Account a resolved access; returns the destination pipeline."""
        state = self.arrays[array]
        if index is None:
            return state.pipeline_of(None)
        index %= state.size
        state.access_counts[index] += 1
        state.in_flight[index] += 1
        return int(state.index_to_pipeline[index])

    def note_completed(self, array: str, index: Optional[int]) -> None:
        """Account a completed access (in-flight decrement)."""
        state = self.arrays[array]
        if index is None:
            return
        index %= state.size
        if state.in_flight[index] > 0:
            state.in_flight[index] -= 1

    # ------------------------------------------------------------------
    # Background remapping
    # ------------------------------------------------------------------

    def remap_heuristic(self, array: str) -> bool:
        """One invocation of the Figure 6 heuristic. Returns True if an
        index moved."""
        state = self.arrays[array]
        if not state.shardable:
            return False
        per_pipe = np.zeros(self.num_pipelines, dtype=np.int64)
        np.add.at(per_pipe, state.index_to_pipeline, state.access_counts)
        high = int(per_pipe.argmax())
        low = int(per_pipe.argmin())
        c_max, c_min = int(per_pipe[high]), int(per_pipe[low])
        if high == low or c_max == c_min:
            return False
        threshold = (c_max - c_min) / 2
        on_high = np.nonzero(state.index_to_pipeline == high)[0]
        if on_high.size == 0:
            return False
        counts = state.access_counts[on_high]
        eligible = (counts < threshold) & (state.in_flight[on_high] == 0)
        if not eligible.any():
            return False
        candidates = on_high[eligible]
        best = candidates[int(state.access_counts[candidates].argmax())]
        # Atomic move: the register value itself lives in the global
        # store (exactly one copy is active), so the move is purely a
        # map update — mirroring the single-cycle state move in §3.4.
        state.index_to_pipeline[best] = low
        state.moves += 1
        return True

    def remap_optimal(self, array: str) -> bool:
        """Near-optimal rebalance for the ideal baseline (§4.3.3).

        Iterates the greedy max-to-min move (the Figure 6 step) until no
        move narrows the load gap, instead of performing a single move per
        epoch. This converges to a locally optimal packing while keeping
        the mapping sticky — a full repack from scratch would thrash the
        mapping on noisy per-epoch counters. Only indexes with zero
        in-flight packets move, same as the heuristic.
        """
        state = self.arrays[array]
        if not state.shardable:
            return False
        per_pipe = np.zeros(self.num_pipelines, dtype=np.int64)
        np.add.at(per_pipe, state.index_to_pipeline, state.access_counts)
        moved_any = False
        for _ in range(state.size):
            high = int(per_pipe.argmax())
            low = int(per_pipe.argmin())
            gap = int(per_pipe[high]) - int(per_pipe[low])
            if high == low or gap <= 0:
                break
            on_high = np.nonzero(state.index_to_pipeline == high)[0]
            counts = state.access_counts[on_high]
            # Any index lighter than the gap strictly narrows it; pick the
            # heaviest such (the biggest single-step improvement).
            eligible = (counts < gap) & (counts > 0) & (
                state.in_flight[on_high] == 0
            )
            if not eligible.any():
                break
            candidates = on_high[eligible]
            best = candidates[int(state.access_counts[candidates].argmax())]
            weight = int(state.access_counts[best])
            state.index_to_pipeline[best] = low
            per_pipe[high] -= weight
            per_pipe[low] += weight
            moved_any = True
        if moved_any:
            state.moves += 1
        return moved_any

    def end_epoch(self, algorithm: str = "heuristic") -> int:
        """Run the configured remap on every array, then reset access
        counters for the next epoch. Returns the number of arrays whose
        mapping changed."""
        changed = 0
        for name, state in self.arrays.items():
            if algorithm == "heuristic":
                changed += bool(self.remap_heuristic(name))
            elif algorithm == "optimal":
                changed += bool(self.remap_optimal(name))
            elif algorithm == "none":
                pass
            else:
                raise ConfigError(f"unknown remap algorithm {algorithm!r}")
            state.access_counts[:] = 0
        return changed

    def emergency_remap(
        self, failed: int, healthy: Sequence[int]
    ) -> Tuple[int, int]:
        """Evacuate pipeline ``failed``: move every shardable index active
        there to the least-loaded pipeline in ``healthy``.

        The graceful-degradation path of :mod:`repro.faults` — unlike the
        Figure 6 heuristic this is not load balancing but evacuation, so
        it moves *all* of the failed pipeline's indices at once. The same
        safety rule applies: only indices with zero in-flight packets
        move (a packet already steered toward the old location must find
        its state there, or C1 breaks); the rest are *deferred* and the
        caller retries after its drain/backoff. Load ties break toward
        the lowest pipeline id and per-index loads update as indices
        land, so the result is deterministic and both engines agree.

        Non-shardable (pinned) arrays cannot be evacuated — their state
        has no per-index location freedom — and are left in place; their
        packets keep dropping for the fault's duration, which the drop
        accounting surfaces.

        Returns ``(moved, deferred)`` index counts.
        """
        targets = [p for p in sorted(set(healthy)) if p != failed]
        moved = deferred = 0
        if not targets:
            return 0, 0
        # Seed destination loads with the current epoch's access counts
        # so evacuated hot indices spread instead of piling on one pipe.
        loads = {p: 0 for p in targets}
        for state in self.arrays.values():
            if not state.shardable:
                continue
            per_pipe = np.zeros(self.num_pipelines, dtype=np.int64)
            np.add.at(per_pipe, state.index_to_pipeline, state.access_counts)
            for p in targets:
                loads[p] += int(per_pipe[p])
        for state in self.arrays.values():
            if not state.shardable:
                continue
            on_failed = np.nonzero(state.index_to_pipeline == failed)[0]
            for index in on_failed:
                if state.in_flight[index] > 0:
                    deferred += 1
                    continue
                dest = min(targets, key=lambda p: (loads[p], p))
                state.index_to_pipeline[index] = dest
                loads[dest] += int(state.access_counts[index]) + 1
                state.moves += 1
                moved += 1
        return moved, deferred

    # ------------------------------------------------------------------

    def total_moves(self) -> int:
        """Cumulative index moves across all arrays (what the metrics
        registry samples for the per-window remap-churn series)."""
        return sum(state.moves for state in self.arrays.values())

    def load_imbalance(self, array: str) -> float:
        """max/mean per-pipeline index-count ratio (diagnostics)."""
        state = self.arrays[array]
        counts = np.bincount(
            state.index_to_pipeline, minlength=self.num_pipelines
        ).astype(float)
        mean = counts.mean()
        return float(counts.max() / mean) if mean else 1.0

    def sram_overhead_bits(self) -> int:
        """SRAM cost of the maps/counters at 30 bits per index (§4.2:
        6 map + 16 access counter + 8 in-flight)."""
        return 30 * sum(state.size for state in self.arrays.values())
