"""The long-lived switch service (:mod:`repro.service`).

Four contract layers:

* **streaming layer** — the pausable run loop (start/feed/pump/finish)
  is byte-identical to the one-shot ``run()`` no matter how arrivals
  are chunked, on both scalar engines;
* **determinism layer** — a served run (ingest over HTTP → hot-swap at
  tick T → drain) produces segment payloads byte-identical to the
  equivalent pair of offline runs, on the fast and vector engines;
* **operations layer** — mid-traffic fault attach reproduces the
  offline ``run --faults --monitor`` alert stream, /health walks
  ok → degraded → ok across an emergency-remap fault window, and
  shutdown drains every FIFO;
* **control layer** — backpressure (HTTP 429), arrival-order rejection
  (409), validate-only compiles, and remap retunes.

Each test boots the real daemon (ephemeral port) through
:class:`ServiceThread` and drives it with the stdlib client — the same
path the CLI and CI smoke use.
"""

import json

import pytest

from repro.compiler import compile_program
from repro.faults import FaultSchedule
from repro.mp5 import ENGINES, MP5Config, MP5Switch, ReferenceSwitch
from repro.obs.monitor import InvariantMonitor
from repro.service import (
    ServiceThread,
    SwitchService,
    render_payload,
    segment_payload,
)
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.daemon import random_headers
from repro.workloads.traceio import packet_to_dict
from repro.workloads.traffic import clone_packets, line_rate_trace

PIPELINES = 4


def make_trace(program_name: str, packets: int, seed: int = 11):
    program = compile_program(program_name)
    return line_rate_trace(
        packets, PIPELINES, random_headers(program), seed=seed
    )


def records_of(packets):
    return [packet_to_dict(p) for p in packets]


def offline_payload(engine: str, program_name: str, packets, config, **sinks):
    """What an offline ``run`` invocation freezes for these packets."""
    stats, registers = ENGINES[engine](
        compile_program(program_name), clone_packets(packets), config, **sinks
    )
    return render_payload(segment_payload(stats, registers))


def serve(**kwargs):
    service = SwitchService(
        config=MP5Config(num_pipelines=PIPELINES, seed=5), **kwargs
    )
    return service, ServiceThread(service)


def client_of(thread: ServiceThread) -> ServiceClient:
    host, port = thread.address
    return ServiceClient(host, port, timeout=30)


# ----------------------------------------------------------------------
# Streaming layer: start/feed/pump/finish vs run()
# ----------------------------------------------------------------------


@pytest.mark.parametrize("engine_cls", [MP5Switch, ReferenceSwitch])
@pytest.mark.parametrize("chunk", [1, 7, 64, 1000])
def test_chunked_feeding_matches_run(engine_cls, chunk):
    """Any feed batching, with gated pumping in between, is
    byte-identical to the one-shot run loop."""
    program = compile_program("heavy_hitter")
    config = MP5Config(num_pipelines=PIPELINES, seed=5)
    trace = make_trace("heavy_hitter", 300)

    reference = engine_cls(program, config)
    ref_stats = reference.run(clone_packets(trace))

    streamed = engine_cls(program, config)
    streamed.start()
    chunks = [trace[i : i + chunk] for i in range(0, len(trace), chunk)]
    for part in chunks:
        streamed.feed(clone_packets(part))
        streamed.pump(until_tick=streamed.ingest_watermark)
    streamed.pump()  # drain past the last watermark
    stream_stats = streamed.finish()

    assert stream_stats.summary() == ref_stats.summary()
    assert streamed.registers == reference.registers


def test_feed_rejects_non_monotone_batches():
    program = compile_program("heavy_hitter")
    switch = MP5Switch(program, MP5Config(num_pipelines=PIPELINES))
    switch.start()
    trace = make_trace("heavy_hitter", 40)
    switch.feed(trace[20:])
    from repro.errors import ConfigError

    with pytest.raises(ConfigError, match="monotone"):
        switch.feed(trace[:20])


# ----------------------------------------------------------------------
# Determinism layer: served hot-swap == two offline runs
# ----------------------------------------------------------------------


@pytest.mark.parametrize("engine", ["fast", "vector"])
def test_hot_swap_determinism(engine):
    """Ingest a trace, hot-swap the program at tick T, drain: each
    served segment is byte-identical to the equivalent offline run."""
    swap_tick = 40
    trace = make_trace("heavy_hitter", 600)
    part1 = [p for p in trace if p.arrival < swap_tick]
    part2 = [p for p in trace if p.arrival >= swap_tick]
    assert part1 and part2

    service, thread = serve(program="heavy_hitter", engine=engine)
    with thread:
        client = client_of(thread)
        # ragged chunk sizes: determinism may not depend on batching
        records = records_of(part1)
        for lo, hi in [(0, 13), (13, 100), (100, len(records))]:
            client.ingest(records[lo:hi])
        client.wait_settled()
        swap = client.load_program("flowlet")
        assert swap["swapped"] and swap["closed_segment"] == 0
        client.ingest(records_of(part2))
        client.wait_settled()
        record = client.drain()["closed_segment"]
        assert record["index"] == 1 and record["drained"]
        served1 = client.segment_results(0)
        served2 = client.segment_results(1)
        client.shutdown()

    config = MP5Config(num_pipelines=PIPELINES, seed=5)
    assert served1 == offline_payload(engine, "heavy_hitter", part1, config)
    assert served2 == offline_payload(engine, "flowlet", part2, config)


def test_segment_results_are_canonical_json():
    service, thread = serve(program="heavy_hitter")
    with thread:
        client = client_of(thread)
        client.ingest(records_of(make_trace("heavy_hitter", 60)))
        client.drain()
        raw = client.segment_results(0)
        payload = json.loads(raw)
        assert set(payload) == {"stats", "drops_by_reason", "registers"}
        assert render_payload(payload) == raw
        with pytest.raises(ServiceClientError) as err:
            client.segment_results(7)
        assert err.value.status == 404
        client.shutdown()


# ----------------------------------------------------------------------
# Operations layer: faults, health, shutdown
# ----------------------------------------------------------------------

STALL_SCHEDULE = {
    "format": "mp5-fault-schedule",
    "version": 1,
    "degradation": {
        "enabled": True,
        "drain_ticks": 4,
        "retry_backoff": 16,
        "max_retries": 8,
    },
    "faults": [
        {
            "kind": "pipeline_stall",
            "pipeline": 1,
            "start": 10,
            "duration": 30,
            "service_rate": 0.0,
            "degrade": True,
        }
    ],
}


def test_mid_traffic_fault_attach_matches_offline_alerts():
    """Attaching a schedule mid-traffic quiesces, and the next segment's
    alert stream equals an offline ``run --faults --monitor``."""
    clean = make_trace("heavy_hitter", 120, seed=3)
    faulted = make_trace("heavy_hitter", 400, seed=4)
    schedule_path = "examples/faults/crossbar.json"

    service, thread = serve(program="heavy_hitter", monitor=True)
    with thread:
        client = client_of(thread)
        client.ingest(records_of(clean))
        client.wait_settled()
        attach = client.attach_faults(path=schedule_path)
        assert attach["attached"] and attach["closed_segment"] == 0
        client.ingest(records_of(faulted))
        client.wait_settled()
        record = client.drain()["closed_segment"]
        served_alerts = client.alerts()["alerts"]
        # cursor polling: everything already consumed
        window = client.alerts(since=len(served_alerts))
        assert window["alerts"] == []
        assert window["cursor"] == len(served_alerts)
        assert record["health"] is not None
        client.shutdown()

    monitor = InvariantMonitor()
    ENGINES["fast"](
        compile_program("heavy_hitter"),
        clone_packets(faulted),
        MP5Config(num_pipelines=PIPELINES, seed=5),
        faults=FaultSchedule.load(schedule_path),
        monitor=monitor,
    )
    offline_alerts = monitor.alerts.to_dicts()
    assert offline_alerts, "crossbar schedule must raise alerts"
    assert served_alerts == offline_alerts


def test_health_ok_degraded_ok_under_emergency_remap():
    """/health walks ok → degraded (open fault window + emergency
    remap) → ok once the window passes and the segment drains."""
    trace = make_trace("heavy_hitter", 240, seed=9)
    part1 = [p for p in trace if p.arrival < 20]
    part2 = [p for p in trace if p.arrival >= 20]

    service, thread = serve(program="heavy_hitter")
    with thread:
        client = client_of(thread)
        assert client.health()["verdict"] == "ok"
        client.attach_faults(schedule=STALL_SCHEDULE)

        client.ingest(records_of(part1))
        client.wait_settled()  # engine parked at the tick-20 watermark
        health = client.health()
        assert health["verdict"] == "degraded", health
        assert any("fault window" in r for r in health["reasons"])

        client.ingest(records_of(part2))
        record = client.drain()["closed_segment"]
        payload = json.loads(client.segment_results(record["index"]))
        assert payload["stats"]["emergency_remap_moves"] > 0
        assert client.health()["verdict"] == "ok"

        # non-trivially ok: a fresh fault-free segment mid-flight
        client.detach_faults()
        client.ingest(records_of(make_trace("heavy_hitter", 40, seed=2)))
        client.wait_settled()
        health = client.health()
        assert health["verdict"] == "ok" and health["segment_open"]
        client.shutdown()


def test_graceful_shutdown_drains_fifos():
    trace = make_trace("heavy_hitter", 500, seed=6)
    service, thread = serve(program="heavy_hitter")
    with thread:
        client = client_of(thread)
        client.ingest(records_of(trace))
        final = client.shutdown()["closed_segment"]
    assert final["offered"] == len(trace)
    assert final["drained"]
    assert final["egressed"] + final["dropped"] == final["offered"]
    # the payload survives shutdown on the service object
    payload = json.loads(service.segment_results(0))
    assert payload["stats"]["offered"] == len(trace)


# ----------------------------------------------------------------------
# Control layer: backpressure, ordering, validation, retunes
# ----------------------------------------------------------------------


def test_ingest_backpressure_returns_429():
    trace = make_trace("heavy_hitter", 120)
    batches = [records_of(trace[i : i + 20]) for i in range(0, 120, 20)]
    service, thread = serve(program="heavy_hitter", queue_depth=2)
    with thread:
        client = client_of(thread)
        client.pause()  # nothing drains: the queue must fill
        client.ingest(batches[0])
        client.ingest(batches[1])
        with pytest.raises(ServiceClientError) as err:
            client.ingest(batches[2])
        assert err.value.status == 429
        assert "queue full" in err.value.message
        assert client.status()["rejected"] == 20
        client.resume()
        client.wait_settled()
        record = client.drain()["closed_segment"]
        assert record["offered"] == 40  # only the accepted batches ran
        client.shutdown()


def test_out_of_order_batch_rejected_and_reset_by_drain():
    trace = make_trace("heavy_hitter", 80)
    service, thread = serve(program="heavy_hitter")
    with thread:
        client = client_of(thread)
        client.ingest(records_of(trace[40:]))
        with pytest.raises(ServiceClientError) as err:
            client.ingest(records_of(trace[:40]))
        assert err.value.status == 409
        assert "monotone" in err.value.message
        client.drain()  # closes the segment, resets the arrival clock
        client.ingest(records_of(trace[:40]))
        client.wait_settled()
        record = client.drain()["closed_segment"]
        assert record["offered"] == 40
        client.shutdown()


def test_program_validate_only_and_compile_errors():
    service, thread = serve(program="heavy_hitter")
    with thread:
        client = client_of(thread)
        out = client.load_program("flowlet", validate_only=True)
        assert out["validated"] and not out["swapped"]
        assert client.status()["program"] == "heavy_hitter"
        with pytest.raises(ServiceClientError) as err:
            client.load_program(source="int x = ;;;", name="broken")
        assert err.value.status == 400
        assert "compile failed" in err.value.message
        assert client.status()["program"] == "heavy_hitter"
        client.shutdown()


def test_retune_remap_policy_closes_segment():
    service, thread = serve(program="heavy_hitter")
    with thread:
        client = client_of(thread)
        client.ingest(records_of(make_trace("heavy_hitter", 60)))
        client.wait_settled()
        out = client.configure(remap_period=50, remap_algorithm="optimal")
        assert out["closed_segment"] == 0
        assert out["config"]["remap_period"] == 50
        status = client.status()
        assert status["config"]["remap_algorithm"] == "optimal"
        with pytest.raises(ServiceClientError) as err:
            client.configure(bogus_knob=1)
        assert err.value.status == 400
        with pytest.raises(ServiceClientError) as err:
            client.configure(remap_algorithm="nonsense")
        assert err.value.status == 400
        client.shutdown()


def test_fault_schedule_validated_against_pipelines():
    bad = {
        "format": "mp5-fault-schedule",
        "version": 1,
        "faults": [
            {
                "kind": "pipeline_stall",
                "pipeline": 9,
                "start": 0,
                "duration": 5,
            }
        ],
    }
    service, thread = serve(program="heavy_hitter")
    with thread:
        client = client_of(thread)
        with pytest.raises(ServiceClientError) as err:
            client.attach_faults(schedule=bad)
        assert err.value.status == 400
        assert "out of range" in err.value.message
        client.shutdown()
