"""Markdown link checker for intra-repo links (stdlib only).

Scans the given markdown files (or README.md plus docs/ by default) for
inline links and validates every **local** target:

* relative file links must resolve to an existing file or directory;
* ``#fragment`` parts (and bare in-page ``#anchors``) must match a
  heading in the target file, using GitHub's slug rules (lowercase,
  spaces to dashes, punctuation dropped, ``-N`` suffixes for
  duplicates);
* ``http(s)``/``mailto`` links are skipped — no network in CI.

Exit status is the number of broken links. Usage::

    python tools/check_links.py [FILE.md ...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List, Tuple

# Inline links/images: [text](target). Reference-style definitions
# ([id]: target) are rare in this repo and intentionally out of scope.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str, seen: Dict[str, int]) -> str:
    """GitHub's anchor algorithm: strip markup, lowercase, drop
    punctuation, spaces to dashes, dedupe with -1, -2, ..."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links
    text = re.sub(r"[*_]", "", text)  # emphasis
    slug = re.sub(r"[^\w\- ]", "", text.lower(), flags=re.UNICODE)
    slug = slug.replace(" ", "-")
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def anchors_of(path: Path, cache: Dict[Path, set]) -> set:
    if path not in cache:
        seen: Dict[str, int] = {}
        slugs = set()
        in_fence = False
        for line in path.read_text(encoding="utf-8").splitlines():
            if CODE_FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            match = HEADING_RE.match(line)
            if match:
                slugs.add(github_slug(match.group(1), seen))
        cache[path] = slugs
    return cache[path]


def iter_links(path: Path) -> List[Tuple[int, str]]:
    links = []
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            links.append((lineno, match.group(1)))
    return links


def check_file(path: Path, cache: Dict[Path, set]) -> List[str]:
    errors = []
    for lineno, target in iter_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target, _, fragment = target.partition("#")
        dest = path if not target else (path.parent / target).resolve()
        if not dest.exists():
            errors.append(f"{path}:{lineno}: broken link -> {target}")
            continue
        if fragment and dest.suffix == ".md":
            if fragment not in anchors_of(dest, cache):
                errors.append(
                    f"{path}:{lineno}: missing anchor -> "
                    f"{target or path.name}#{fragment}"
                )
    return errors


def main(argv: List[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    if argv:
        files = [Path(a).resolve() for a in argv]
    else:
        files = [root / "README.md"] + sorted((root / "docs").glob("*.md"))
    cache: Dict[Path, set] = {}
    errors = []
    for path in files:
        errors.extend(check_file(path, cache))
    for error in errors:
        print(error)
    checked = sum(len(iter_links(p)) for p in files)
    print(f"checked {checked} links in {len(files)} files: {len(errors)} broken")
    return min(len(errors), 125)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
