"""The per-run fault state machine driven by a :class:`FaultSchedule`.

One :class:`FaultInjector` is attached per switch instance
(``MP5Switch.attach_faults``); at the top of every tick the engine calls
:meth:`FaultInjector.begin_tick`, which

1. closes fault windows ending at this tick (restoring shrunk FIFO
   capacities) and opens windows starting at it,
2. recomputes the per-tick ``stalled`` and ``crossbar_failed`` pipeline
   sets the hot paths consult, and
3. runs due emergency remaps per the degradation policy (drain, then
   retry with backoff while in-flight packets pin indices in place).

Determinism contract: every decision is a pure function of (tick,
schedule, seed, packet id). Phantom loss/delay draws use the same
integer hash both engines share (:func:`repro.domino.builtins.hash2`)
keyed by packet id — never draw-order-dependent RNG state — so the fast
and reference engines make identical choices even though they evaluate
packets in different orders.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..domino.builtins import hash2
from .schedule import (
    KIND_CROSSBAR,
    KIND_FIFO,
    KIND_PHANTOM,
    KIND_STALL,
    FaultEvent,
    FaultSchedule,
)

_HASH_SPAN = 1000003  # prime modulus for rate-threshold draws


def _stall_services(event: FaultEvent, tick: int) -> bool:
    """True when a slowed pipeline gets a service slot at ``tick``.

    ``service_rate`` r in (0, 1) admits service on the ticks where the
    integer part of the accumulated rate advances — a pure function of
    the tick, so both engines agree without shared state."""
    rate = event.service_rate
    if rate <= 0.0:
        return False
    offset = tick - event.start
    return int((offset + 1) * rate) > int(offset * rate)


class FaultInjector:
    """Applies one schedule to one switch run (not reusable)."""

    def __init__(self, schedule: FaultSchedule, num_pipelines: int):
        schedule.validate(num_pipelines)
        self.schedule = schedule
        self.num_pipelines = num_pipelines
        self.seed = schedule.seed
        # Window transitions precomputed: tick -> [(index, event)].
        self._starts: Dict[int, List[Tuple[int, FaultEvent]]] = {}
        self._ends: Dict[int, List[Tuple[int, FaultEvent]]] = {}
        for idx, event in enumerate(schedule.faults):
            self._starts.setdefault(event.start, []).append((idx, event))
            self._ends.setdefault(event.end, []).append((idx, event))
        self._active: List[Tuple[int, FaultEvent]] = []
        self._phantom_active: List[Tuple[int, FaultEvent]] = []
        self._stall_active: List[Tuple[int, FaultEvent]] = []
        self._unavailable: Set[int] = set()
        self._base_capacity = None  # snapshotted at the first tick
        # Per-tick sets the engine hot paths consult (None = inactive,
        # so the gate stays a single "is not None" check).
        self.stalled: Optional[Set[int]] = None
        self.crossbar_failed: Optional[Set[int]] = None
        # Degradation protocol state: pending emergency remaps.
        self._pending_remaps: List[Dict] = []
        # Packets dropped mid-flight: their delayed phantoms are void.
        self._dropped: Set[int] = set()
        self.faults_started = 0
        self.faults_ended = 0

    # ------------------------------------------------------------------
    # Tick boundary
    # ------------------------------------------------------------------

    def begin_tick(self, tick: int, switch) -> None:
        """Advance the fault state machine to ``tick`` (phase 0 of the
        engine's step, before any packet moves)."""
        transition = False
        ending = self._ends.get(tick)
        if ending:
            transition = True
            ended = {id(event) for _idx, event in ending}
            self._active = [
                entry for entry in self._active if id(entry[1]) not in ended
            ]
            for _idx, event in ending:
                self.faults_ended += 1
                if switch.obs is not None:
                    switch.obs.fault_end(
                        tick, event.kind, event.pipeline, event.stage
                    )
        starting = self._starts.get(tick)
        if starting:
            transition = True
            policy = self.schedule.degradation
            for idx, event in starting:
                self._active.append((idx, event))
                self.faults_started += 1
                if switch.obs is not None:
                    switch.obs.fault_start(
                        tick, event.kind, event.pipeline, event.stage
                    )
                if (
                    event.kind in (KIND_STALL, KIND_CROSSBAR)
                    and event.degrade
                    and policy.enabled
                    and not any(
                        r["pipe"] == event.pipeline
                        for r in self._pending_remaps
                    )
                ):
                    self._pending_remaps.append(
                        {
                            "pipe": event.pipeline,
                            "due": tick + policy.drain_ticks,
                            "attempt": 0,
                        }
                    )
        if transition:
            self._refresh_active(switch)

        # Per-tick stall set: full stalls hold for the window; slowdowns
        # release the pipeline only on their service ticks.
        if self._stall_active:
            stalled = {
                event.pipeline
                for _idx, event in self._stall_active
                if not _stall_services(event, tick)
            }
            self.stalled = stalled or None
        else:
            self.stalled = None

        if self._pending_remaps:
            self._run_due_remaps(tick, switch)

    def _refresh_active(self, switch) -> None:
        """Recompute the derived views after a window transition."""
        self._stall_active = [
            entry for entry in self._active if entry[1].kind == KIND_STALL
        ]
        self._phantom_active = [
            entry for entry in self._active if entry[1].kind == KIND_PHANTOM
        ]
        failed = {
            event.pipeline
            for _idx, event in self._active
            if event.kind == KIND_CROSSBAR
        }
        self.crossbar_failed = failed or None
        self._unavailable = failed | {
            event.pipeline
            for _idx, event in self._active
            if event.kind == KIND_STALL
        }
        self._apply_fifo_capacity(switch)

    def _apply_fifo_capacity(self, switch) -> None:
        """Re-derive every FIFO's capacity from the base snapshot plus
        all active shrink windows (overlaps compose via min)."""
        if self._base_capacity is None:
            self._base_capacity = {
                key: fifo.capacity for key, fifo in switch.fifos.items()
            }
        shrinks = [e for _i, e in self._active if e.kind == KIND_FIFO]
        for key, fifo in switch.fifos.items():
            capacity = self._base_capacity[key]
            for event in shrinks:
                if event.pipeline is not None and event.pipeline != key[0]:
                    continue
                if event.stage is not None and event.stage != key[1]:
                    continue
                capacity = (
                    event.capacity
                    if capacity is None
                    else min(capacity, event.capacity)
                )
            fifo.capacity = capacity

    # ------------------------------------------------------------------
    # Degradation protocol
    # ------------------------------------------------------------------

    def _run_due_remaps(self, tick: int, switch) -> None:
        policy = self.schedule.degradation
        keep: List[Dict] = []
        for request in self._pending_remaps:
            if request["due"] > tick:
                keep.append(request)
                continue
            pipe = request["pipe"]
            if pipe not in self._unavailable:
                continue  # the pipeline recovered before the drain ended
            healthy = [
                p for p in range(self.num_pipelines)
                if p not in self._unavailable
            ]
            if not healthy:
                moved, deferred = 0, -1  # nowhere to go; retry later
            else:
                moved, deferred = switch.sharder.emergency_remap(
                    pipe, healthy
                )
            stats = switch.stats
            stats.emergency_remaps += 1
            stats.emergency_remap_moves += moved
            if switch.obs is not None:
                switch.obs.emergency_remap(
                    tick, pipe, moved, max(deferred, 0), request["attempt"]
                )
            if deferred and request["attempt"] + 1 < policy.max_retries:
                request["attempt"] += 1
                request["due"] = tick + policy.retry_backoff
                keep.append(request)
        self._pending_remaps = keep

    # ------------------------------------------------------------------
    # Per-packet decisions (order-independent)
    # ------------------------------------------------------------------

    def phantom_fault(
        self, pkt_id: int, pipeline: int, stage: int
    ) -> Tuple[bool, int]:
        """Phantom-channel verdict for one emission: (lost, extra delay).

        The draw hashes (pkt_id, stage, event index, seed), so a packet
        with phantoms toward several stages gets independent verdicts
        and both engines — whatever order they emit in — agree."""
        for idx, event in self._phantom_active:
            if event.pipeline is not None and event.pipeline != pipeline:
                continue
            if event.stage is not None and event.stage != stage:
                continue
            salt = self.seed * 7919 + idx * 8191 + stage * 131
            if event.loss_rate > 0.0:
                draw = hash2(pkt_id * 2 + 1, salt) % _HASH_SPAN
                if draw < event.loss_rate * _HASH_SPAN:
                    return True, 0
            if event.delay > 0 and event.delay_rate > 0.0:
                draw = hash2(pkt_id * 2, salt) % _HASH_SPAN
                if draw < event.delay_rate * _HASH_SPAN:
                    return False, event.delay
        return False, 0

    def active_windows(self) -> List[Dict]:
        """The fault windows currently open, as evidence-ready dicts.

        The invariant monitor (:mod:`repro.obs.monitor`) tags every
        alert raised during a fault with this list, so an alert log
        names the schedule window — kind, target, [start, end) — that
        was active when delivery degraded. Ordered by schedule position,
        so both engines report identical evidence."""
        return [
            {
                "kind": event.kind,
                "pipe": event.pipeline,
                "stage": event.stage,
                "start": event.start,
                "end": event.end,
            }
            for _idx, event in sorted(self._active, key=lambda e: e[0])
        ]

    def pending_remaps(self) -> List[Dict]:
        """Emergency remaps requested but not yet fully executed.

        Each entry names the evacuating pipeline and the tick the move
        becomes due. Non-empty means the sharder is still moving state
        away from a degraded pipeline — the service health endpoint
        reports this phase as ``degraded``."""
        return [
            {"pipe": r["pipe"], "due": r["due"]} for r in self._pending_remaps
        ]

    def note_dropped(self, pkt_id: int) -> None:
        """A data packet dropped; any still-undelivered (delayed) phantom
        of its is void — delivering it would wedge a FIFO head forever."""
        self._dropped.add(pkt_id)

    def is_cancelled(self, pkt_id: int) -> bool:
        return pkt_id in self._dropped
