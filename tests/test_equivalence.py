"""Tests for the functional-equivalence checker (§2.2.1)."""

import pytest

from repro.compiler import compile_program
from repro.equivalence import check_equivalence
from repro.errors import EquivalenceError
from repro.mp5 import MP5Config
from repro.workloads import line_rate_trace

from .conftest import figure3_headers, heavy_hitter_headers


class TestChecker:
    def test_equivalent_run(self, heavy_hitter_program):
        trace = line_rate_trace(400, 4, heavy_hitter_headers, seed=0)
        report = check_equivalence(
            heavy_hitter_program, trace, MP5Config(num_pipelines=4)
        )
        assert report.equivalent
        assert report.register_equal
        assert report.packet_equal
        assert report.c1_violating_packets == 0
        report.raise_if_violated()  # no exception

    def test_figure3_equivalent(self, figure3_program):
        trace = line_rate_trace(300, 2, figure3_headers, seed=1)
        report = check_equivalence(figure3_program, trace, MP5Config(num_pipelines=2))
        assert report.equivalent

    def test_packet_state_checked(self, sequencer_program):
        trace = line_rate_trace(150, 2, lambda r, i: {"seq": 0}, seed=0)
        report = check_equivalence(sequencer_program, trace, MP5Config(num_pipelines=2))
        assert report.packet_equal

    def test_summary_rendering(self, heavy_hitter_program):
        trace = line_rate_trace(100, 2, heavy_hitter_headers, seed=0)
        report = check_equivalence(heavy_hitter_program, trace, MP5Config(num_pipelines=2))
        text = report.summary()
        assert "register state" in text
        assert "EQUAL" in text

    def test_mp5_stats_attached(self, heavy_hitter_program):
        trace = line_rate_trace(100, 2, heavy_hitter_headers, seed=0)
        report = check_equivalence(heavy_hitter_program, trace, MP5Config(num_pipelines=2))
        assert report.mp5_stats is not None
        assert report.mp5_stats.offered == 100

    def test_truncated_run_reports_divergence(self, sequencer_program):
        # Cutting the MP5 run short leaves register state behind the
        # reference: the checker must flag it rather than pass silently.
        trace = line_rate_trace(400, 4, lambda r, i: {"seq": 0}, seed=0)
        report = check_equivalence(
            sequencer_program, trace, MP5Config(num_pipelines=4), max_ticks=30
        )
        assert not report.register_equal
        with pytest.raises(EquivalenceError) as exc:
            report.raise_if_violated()
        assert exc.value.report is report

    def test_no_d4_ablation_violates_c1_but_checker_sees_it(self):
        from repro.baselines import no_phantom_config
        from repro.workloads import make_sensitivity_program, sensitivity_trace

        program = make_sensitivity_program(4, 32)
        trace = sensitivity_trace(800, 4, 4, 32, pattern="skewed", seed=0)
        report = check_equivalence(program, trace, no_phantom_config(num_pipelines=4))
        assert report.c1_violating_packets > 0

    def test_register_mismatch_details(self, sequencer_program):
        trace = line_rate_trace(300, 4, lambda r, i: {"seq": 0}, seed=0)
        report = check_equivalence(
            sequencer_program, trace, MP5Config(num_pipelines=4), max_ticks=20
        )
        assert "count" in report.register_mismatches
        index, _want, _got = report.register_mismatches["count"][0]
        assert index == 0
