"""Tests for workload generation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workloads import (
    BimodalPacketSizes,
    EmpiricalCDF,
    FlowWorkload,
    SkewedAccess,
    UniformAccess,
    clone_packets,
    line_rate_trace,
    make_sensitivity_program,
    reference_trace,
    sensitivity_trace,
    synthetic_source,
    variable_size_trace,
    web_search_flow_sizes,
    zipf_access,
)


class TestEmpiricalCDF:
    def test_samples_within_support(self):
        cdf = web_search_flow_sizes()
        rng = np.random.default_rng(0)
        for _ in range(200):
            value = cdf.sample(rng)
            assert 6 * 1024 <= value <= 30 * 1024 * 1024

    def test_heavy_tail_shape(self):
        cdf = web_search_flow_sizes()
        rng = np.random.default_rng(1)
        samples = [cdf.sample(rng) for _ in range(4000)]
        median = float(np.median(samples))
        mean = float(np.mean(samples))
        assert mean > 3 * median  # heavy-tailed: mean far above median

    def test_invalid_cdfs_rejected(self):
        with pytest.raises(ConfigError):
            EmpiricalCDF([(1, 0.0)])
        with pytest.raises(ConfigError):
            EmpiricalCDF([(1, 0.1), (2, 1.0)])  # must start at 0
        with pytest.raises(ConfigError):
            EmpiricalCDF([(1, 0.0), (2, 0.5)])  # must end at 1
        with pytest.raises(ConfigError):
            EmpiricalCDF([(1, 0.0), (2, 0.7), (3, 0.5), (4, 1.0)])


class TestPacketSizes:
    def test_bimodal_modes_only(self):
        sizes = BimodalPacketSizes()
        rng = np.random.default_rng(0)
        observed = {sizes.sample(rng) for _ in range(100)}
        assert observed <= {200, 1400}
        assert len(observed) == 2

    def test_mean_bytes(self):
        sizes = BimodalPacketSizes(small=200, large=1400, small_fraction=0.5)
        assert sizes.mean_bytes == 800

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigError):
            BimodalPacketSizes(small_fraction=1.5)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigError):
            BimodalPacketSizes(small=32)


class TestAccessPatterns:
    def test_uniform_covers_range(self):
        sampler = UniformAccess(16)
        rng = np.random.default_rng(0)
        seen = {sampler.sample(rng) for _ in range(500)}
        assert seen == set(range(16))

    def test_skewed_concentrates_on_hot_set(self):
        sampler = SkewedAccess(size=100, hot_fraction=0.3, hot_weight=0.95)
        rng = np.random.default_rng(0)
        samples = [sampler.sample(rng) for _ in range(2000)]
        hot = sum(1 for s in samples if s < sampler.hot_count)
        assert 0.9 < hot / len(samples) < 1.0

    def test_skewed_cold_indexes_possible(self):
        sampler = SkewedAccess(size=100, hot_fraction=0.3, hot_weight=0.5)
        rng = np.random.default_rng(0)
        samples = {sampler.sample(rng) for _ in range(2000)}
        assert any(s >= sampler.hot_count for s in samples)

    def test_zipf_skews_to_low_ranks(self):
        rng = np.random.default_rng(0)
        samples = zipf_access(100, 1.2, rng, 2000)
        assert (samples < 10).mean() > 0.5

    def test_invalid_patterns_rejected(self):
        with pytest.raises(ConfigError):
            UniformAccess(0)
        with pytest.raises(ConfigError):
            SkewedAccess(size=10, hot_fraction=0.0)
        with pytest.raises(ConfigError):
            SkewedAccess(size=10, hot_weight=1.5)


class TestTraces:
    def test_line_rate_spacing(self):
        trace = line_rate_trace(100, 4, lambda r, i: {"x": 0}, seed=0)
        gaps = [b.arrival - a.arrival for a, b in zip(trace, trace[1:])]
        assert all(abs(g - 0.25) < 1e-9 for g in gaps)  # 4 pkts per tick

    def test_packet_size_scales_gap(self):
        trace = line_rate_trace(
            10, 4, lambda r, i: {"x": 0}, packet_size=128, seed=0
        )
        assert trace[1].arrival - trace[0].arrival == pytest.approx(0.5)

    def test_utilization_scales_gap(self):
        trace = line_rate_trace(
            10, 4, lambda r, i: {"x": 0}, utilization=0.5, seed=0
        )
        assert trace[1].arrival - trace[0].arrival == pytest.approx(0.5)

    def test_ports_assigned_round_robin(self):
        trace = line_rate_trace(10, 2, lambda r, i: {"x": 0}, num_ports=4, seed=0)
        assert [p.port for p in trace[:5]] == [0, 1, 2, 3, 0]

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigError):
            line_rate_trace(0, 4, lambda r, i: {})
        with pytest.raises(ConfigError):
            line_rate_trace(10, 4, lambda r, i: {}, packet_size=32)
        with pytest.raises(ConfigError):
            line_rate_trace(10, 4, lambda r, i: {}, utilization=0.0)

    def test_variable_size_trace_sizes_bimodal(self):
        trace = variable_size_trace(200, 4, lambda r, i: {"x": 0}, seed=0)
        assert {p.size_bytes for p in trace} <= {200, 1400}

    def test_clone_is_deep_enough(self):
        trace = line_rate_trace(5, 2, lambda r, i: {"x": 1}, seed=0)
        copy = clone_packets(trace)
        copy[0].headers["x"] = 99
        assert trace[0].headers["x"] == 1

    def test_reference_trace_scales_time(self):
        trace = line_rate_trace(4, 4, lambda r, i: {"x": 0}, seed=0)
        ref = reference_trace(trace, 4)
        assert ref[1][0] - ref[0][0] == pytest.approx(1.0)


class TestFlowWorkload:
    def test_flow_fields_present(self):
        workload = FlowWorkload(num_pipelines=4, seed=0)
        packets = workload.generate(200)
        for pkt in packets:
            assert "sport" in pkt.headers
            assert "dport" in pkt.headers
            assert pkt.flow_id is not None

    def test_flows_reused_across_packets(self):
        workload = FlowWorkload(num_pipelines=4, active_flows=8, seed=0)
        packets = workload.generate(400)
        flows = {p.flow_id for p in packets}
        assert len(flows) < 400  # multi-packet flows exist

    def test_deterministic_given_seed(self):
        a = FlowWorkload(num_pipelines=4, seed=5).generate(50)
        b = FlowWorkload(num_pipelines=4, seed=5).generate(50)
        assert [p.headers for p in a] == [p.headers for p in b]

    def test_extra_fields_applied(self):
        workload = FlowWorkload(
            num_pipelines=4,
            seed=0,
            extra_fields=lambda rng, pkt: {"marker": 7},
        )
        packets = workload.generate(10)
        assert all(p.headers["marker"] == 7 for p in packets)

    def test_arrival_monotone(self):
        packets = FlowWorkload(num_pipelines=4, seed=0).generate(100)
        arrivals = [p.arrival for p in packets]
        assert arrivals == sorted(arrivals)


class TestSyntheticPrograms:
    def test_source_shape(self):
        source = synthetic_source(3, 64)
        assert source.count("int reg") == 3
        assert "reg2[p.idx2]" in source

    def test_zero_stateful_is_stateless(self):
        program = make_sensitivity_program(0, 64)
        assert program.is_stateless

    def test_program_stage_layout(self):
        program = make_sensitivity_program(4, 512)
        assert len(program.stateful_stage_indexes) == 4
        assert all(p.shardable for p in program.arrays.values())

    def test_trace_headers_in_range(self):
        trace = sensitivity_trace(50, 4, 2, 16, pattern="uniform", seed=0)
        for pkt in trace:
            assert 0 <= pkt.headers["idx0"] < 16
            assert 0 <= pkt.headers["idx1"] < 16

    def test_skewed_trace_pattern(self):
        trace = sensitivity_trace(1000, 4, 1, 100, pattern="skewed", seed=0)
        hot = sum(1 for p in trace if p.headers["idx0"] < 30)
        assert hot > 900

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ConfigError):
            sensitivity_trace(10, 4, 1, 16, pattern="magic")

    def test_invalid_source_params_rejected(self):
        with pytest.raises(ConfigError):
            synthetic_source(-1, 16)
        with pytest.raises(ConfigError):
            synthetic_source(2, 0)
