"""Epoch schedule construction and (parallel) service execution.

The batch engine's run splits into two exact phases, hinging on one
structural fact the scalar engines establish: **every access index is
resolved at the resolution stage** (stage 0 plus the stateless transit
stages before the first plan stage), which contains no stateful
instructions. Register *values* therefore never influence the timing
layer — injection ticks, FIFO group membership, pop chains, access and
in-flight counters, and every remap decision derived from them.

* **Phase A** (:class:`EpochStreamer`) — the sequential sweep over
  remap epochs, now *incremental*: :meth:`EpochStreamer.ingest`
  extends the injection recurrence as packets arrive, and
  :meth:`EpochStreamer.advance_epoch` processes one epoch cut as soon
  as the ingest watermark proves its arrivals are complete (every
  future packet has ``inj >= ceil(arrival) >= watermark > cut``). It
  injects packets, maintains the per-(plan, pipeline) FIFO groups and
  their pop chains (``pop[j] = max(pop[j-1] + 1, insert[j])``), drives
  the real :class:`~repro.mp5.sharding.ShardingRuntime` at every
  boundary, and records *who pops when, from which pipeline* — but
  performs no stateful service. :func:`build_epoch_schedule` is the
  batch entry point: one ingest, drain, and :meth:`finalize` into an
  :class:`EpochSchedule`, the run's task DAG — per-plan pop streams in
  epoch order, independent of feed chunking, the native tier, and the
  worker count.

* **Phase B** — replays the schedule against register state, plan by
  plan (:func:`execute_service`, the batch path) or epoch by epoch as
  Phase A emits them (:func:`execute_epoch_service`, the streaming
  path). Per-row order only matters *within* a register slot, and an
  epoch's pops all exceed the previous epoch's cut, so the per-epoch
  execution concatenates to exactly the batch service order. Each plan
  admits three executions that are exact by construction: the NumPy
  wave decomposition (PR 5 semantics, per-epoch chunk), a fused
  per-row kernel in service order (:mod:`repro.compiler.native` —
  Numba-jitted or plain Python), and, for ``wave``-category plans, a
  **residue-class partition**: rows with ``index % nparts == w`` touch
  register slots and SoA rows disjoint from every other part, so the
  parts execute on separate workers against one
  ``multiprocessing.shared_memory`` segment and the merged state is
  byte-identical at any worker count.

Workers come from the PR 1 pool (:mod:`repro.harness.parallel`) with an
initializer that compiles kernels once per worker; tasks name the
shared segment they read, so one pool survives across epochs and
dispatches. Any pool or shared-memory failure leaves the caller's
arrays untouched (batch path: restores the pre-plan snapshot) and
re-executes in process — silent, like every other engine fallback,
because the serial path is bit-for-bit the same reduction.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compiler.native import compile_native_stage, native_available
from ..compiler.tac import Const
from ..domino.builtins import hash2


def _parallel():
    """The pool module, imported lazily: ``repro.harness`` pulls in the
    workload package, which imports ``repro.mp5`` — importing it at
    module scope would close that cycle during interpreter startup."""
    from ..harness import parallel

    return parallel


_FAR = 1 << 62  # sentinel horizon: beyond any reachable tick

#: Minimum rows in a plan's stream before residue partitioning is worth
#: a worker round-trip (below this, pickling dwarfs the service work).
PARALLEL_MIN_ROWS = 4096


def _grown(arr: np.ndarray, n: int, fill=None) -> np.ndarray:
    """``arr`` with capacity >= ``n``, doubling to amortize feeds. The
    expansion region is set to ``fill`` when given, so cells past the
    written prefix always hold the array's initial value."""
    cap = arr.shape[0]
    if cap >= n:
        return arr
    new_cap = max(cap, 64)
    while new_cap < n:
        new_cap *= 2
    out = np.empty(new_cap, dtype=arr.dtype)
    out[:cap] = arr
    if fill is not None:
        out[cap:] = fill
    return out


class _Group:
    """One (plan, pipeline) FIFO group: members in packet-id order."""

    __slots__ = ("members", "count", "ptr", "last_pop")

    def __init__(self, capacity: int = 0):
        self.members = np.empty(capacity, dtype=np.int64)
        self.count = 0  # filled members (membership fixed at inject)
        self.ptr = 0  # members already popped
        self.last_pop = -1

    def push(self, rows: np.ndarray) -> None:
        need = self.count + rows.shape[0]
        if need > self.members.shape[0]:
            # Growth copies; popped slices handed out earlier keep the
            # old buffer alive and are never rewritten.
            self.members = _grown(self.members, need)
        self.members[self.count : need] = rows
        self.count = need


class _RegView:
    """Scalar-JIT-compatible view of an int64 register column: reads
    come back as Python ints so builtin calls never overflow int64."""

    __slots__ = ("arr",)

    def __init__(self, arr: np.ndarray):
        self.arr = arr

    def __len__(self) -> int:
        return self.arr.shape[0]

    def __getitem__(self, i):
        return int(self.arr[i])

    def __setitem__(self, i, value) -> None:
        self.arr[i] = value


class EpochSchedule:
    """Phase A's output: the timing of one run, service still pending.

    ``chunks[pi]`` holds plan ``pi``'s pop stream as per-epoch
    ``(rows, pops)`` pairs in epoch order; the popped pipeline of a row
    is ``dest[pi][row]`` (group membership is fixed at inject). The
    remaining arrays are the per-packet timeline the statistics
    reconstruction consumes.
    """

    __slots__ = (
        "inj",
        "entry_pipe",
        "acc_idx",
        "dest",
        "ins_tick",
        "pop_tick",
        "groups",
        "chunks",
        "egr_tick",
        "egr_pipe",
        "injected",
        "egr_assigned",
        "last_egress",
        "epochs",
        "cut_limit",
        "remap_records",
    )

    def plan_stream(self, pi: int) -> Tuple[np.ndarray, np.ndarray]:
        """Plan ``pi``'s whole-run pop stream, concatenated epoch order."""
        pieces = self.chunks[pi]
        if not pieces:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        if len(pieces) == 1:
            return pieces[0]
        rows = np.concatenate([c[0] for c in pieces])
        pops = np.concatenate([c[1] for c in pieces])
        return rows, pops

    def service_order(self, pi: int) -> np.ndarray:
        """Plan ``pi``'s rows sorted into global (tick, pipeline)
        service order — the scalar engines' serialization order. Keys
        are unique: each (plan, pipeline) group pops once per tick."""
        rows, pops = self.plan_stream(pi)
        if rows.size == 0:
            return rows
        return rows[np.lexsort((self.dest[pi][rows], pops))]

    def dag_signature(self) -> str:
        """Digest of the task DAG — everything Phase B consumes. Equal
        signatures mean equal service work regardless of worker count
        or kernel tier (the determinism contract's test hook)."""
        digest = hashlib.sha256()
        digest.update(np.int64(self.epochs).tobytes())
        digest.update(np.int64(self.injected).tobytes())
        for pi, pieces in enumerate(self.chunks):
            digest.update(np.int64(len(pieces)).tobytes())
            for rows, pops in pieces:
                digest.update(rows.tobytes())
                digest.update(pops.tobytes())
                digest.update(self.dest[pi][rows].tobytes())
            idx = self.acc_idx[pi]
            if idx is not None:
                digest.update(idx.tobytes())
        digest.update(self.egr_tick.tobytes())
        digest.update(self.egr_pipe.tobytes())
        return digest.hexdigest()

    def partition(
        self, pi: int, nparts: int
    ) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Split plan ``pi``'s stream into residue classes by access
        index: part ``w`` gets rows with ``index % nparts == w``.

        Parts touch disjoint register slots and disjoint SoA rows, so
        they commute — the parallel executor's unit of work. Each part
        is ``(rows, idxs, offsets)`` with rows concatenated in epoch
        order and ``offsets`` marking the epoch-chunk boundaries the
        NumPy wave decomposition preserves. Empty parts are dropped.
        """
        pieces = self.chunks[pi]
        idx_col = self.acc_idx[pi]
        parts_rows: List[List[np.ndarray]] = [[] for _ in range(nparts)]
        parts_idx: List[List[np.ndarray]] = [[] for _ in range(nparts)]
        for rows, _pops in pieces:
            idxs = idx_col[rows]
            residue = idxs % nparts
            for w in range(nparts):
                sel = residue == w
                if np.any(sel):
                    parts_rows[w].append(rows[sel])
                    parts_idx[w].append(idxs[sel])
        out = []
        for w in range(nparts):
            if not parts_rows[w]:
                continue
            lens = np.fromiter(
                (r.shape[0] for r in parts_rows[w]),
                dtype=np.int64,
                count=len(parts_rows[w]),
            )
            offsets = np.concatenate(([0], np.cumsum(lens)))
            out.append(
                (
                    np.concatenate(parts_rows[w]),
                    np.concatenate(parts_idx[w]),
                    offsets,
                )
            )
        return out


class EpochStreamer:
    """Incremental Phase A: the epoch sweep as a resumable state
    machine.

    The batch sweep's loop body is split at its two decision points:

    * **content** — compute the epoch's cut, inject every packet with
      ``inj <= cut`` and pop every FIFO chain through it. Mid-stream
      this requires the cut to be *closed*: ``cut < watermark`` proves
      no future packet can inject at or before it (monotone feeds give
      ``inj >= ceil(arrival) >= watermark``).
    * **decide** — at the boundary, re-create the scalar run loop's
      liveness test. ``injected > egr_assigned`` and
      ``last_egress >= boundary`` are exact once the content is
      processed; ``inj_ptr < n_fed`` is the one clause that depends on
      packets not yet fed, so a boundary that looks dead mid-stream
      *stalls* (no remap, no progress) until either a later feed
      revives it or the drain (``final=True``) confirms it.

    With remapping off there are no boundaries: the single closed-form
    cut is only provably complete at drain, so nothing advances
    mid-stream and memory-bounded streaming requires remapping on.

    The per-packet arrays grow by doubling; every value the batch sweep
    writes is written here by the same expressions in the same order,
    so :meth:`finalize`'s :class:`EpochSchedule` — and therefore the
    DAG signature — is bit-identical at any feed chunking.
    """

    def __init__(
        self, switch, packets: Sequence, H: Dict, E: Dict, R: Dict,
        max_ticks: Optional[int],
    ):
        self.switch = switch
        self.packets = packets  # shared list object; caller appends
        self.H = H  # shared dict objects; caller swaps grown columns in
        self.E = E
        self.R = R
        cfg = switch.config
        self.cfg = cfg
        self.stats = switch.stats
        self.k = cfg.num_pipelines
        self.depth = switch.depth
        self.vplans = switch._vplans
        self.nplans = len(self.vplans)
        self.kernels = switch._vkernels
        self.sharder = switch.sharder
        # Last executable tick: the run loop breaks before tick max_ticks.
        self.cut_limit = (max_ticks - 1) if max_ticks is not None else None
        self.period = cfg.remap_period
        self.remap_on = cfg.remap_algorithm != "none"

        self.n_fed = 0
        self.inj = np.empty(0, dtype=np.int64)
        self.entry_pipe = np.empty(0, dtype=np.int64)
        self.egr_tick = np.empty(0, dtype=np.int64)
        self.egr_pipe = np.empty(0, dtype=np.int64)
        self.acc_idx = [
            np.empty(0, dtype=np.int64) if p.has_index else None
            for p in self.vplans
        ]
        self.dest = [np.empty(0, dtype=np.int64) for _ in self.vplans]
        self.ins_tick = [np.empty(0, dtype=np.int64) for _ in self.vplans]
        self.pop_tick = [np.empty(0, dtype=np.int64) for _ in self.vplans]
        self.groups = [
            [_Group() for _ in range(self.k)] for _ in self.vplans
        ]
        self.chunks: List[List[Tuple[np.ndarray, np.ndarray]]] = [
            [] for _ in self.vplans
        ]
        self.remap_records: List[Tuple[int, int]] = []

        self.inj_ptr = 0
        self.injected = 0
        self.egr_assigned = 0
        self.last_egress = -1
        self.epochs = 0
        self.done = False
        #: Highest cut whose content has been processed (display only).
        self.executed_through = -1
        self._epoch_start = 0
        self._phase = "content"
        self._boundary: Optional[int] = None
        # Injection recurrence per residue class r = row % k:
        # inj[i] = i_local + max_{j<=i}(ceil(arrival_j) - j_local), a
        # running maximum that extends across feed batches.
        self._class_count = [0] * self.k
        self._class_run = [-_FAR] * self.k

    # -- ingest ---------------------------------------------------------

    @property
    def buffered(self) -> int:
        """Packets fed but not yet assigned an egress tick."""
        return self.n_fed - self.egr_assigned

    def ingest(self, arrival: np.ndarray) -> None:
        """Extend the injection schedule with one sorted feed batch.

        ``arrival`` is the batch's float64 arrival column, already in
        global (arrival, port, pkt_id) order — the caller enforces the
        monotone-feed contract. Only the timing recurrence runs here;
        injection itself happens when a cut that covers it is processed.
        """
        n = int(arrival.shape[0])
        if n == 0:
            return
        lo = self.n_fed
        hi = lo + n
        k = self.k
        self.inj = _grown(self.inj, hi)
        self.entry_pipe = _grown(self.entry_pipe, hi)
        self.egr_tick = _grown(self.egr_tick, hi, fill=-1)
        self.egr_pipe = _grown(self.egr_pipe, hi, fill=-1)
        for pi in range(self.nplans):
            if self.acc_idx[pi] is not None:
                self.acc_idx[pi] = _grown(self.acc_idx[pi], hi, fill=-1)
            self.dest[pi] = _grown(self.dest[pi], hi, fill=0)
            self.ins_tick[pi] = _grown(self.ins_tick[pi], hi, fill=-1)
            self.pop_tick[pi] = _grown(self.pop_tick[pi], hi, fill=-1)
        ceil_a = np.ceil(arrival).astype(np.int64)
        for r in range(min(k, hi)):
            start = lo + ((r - lo) % k)
            sel = np.arange(start, hi, k)
            if sel.shape[0] == 0:
                continue
            count = self._class_count[r]
            i_local = count + np.arange(sel.shape[0], dtype=np.int64)
            runmax = np.maximum.accumulate(ceil_a[sel - lo] - i_local)
            np.maximum(runmax, self._class_run[r], out=runmax)
            self.inj[sel] = i_local + runmax
            self._class_run[r] = int(runmax[-1])
            self._class_count[r] = count + sel.shape[0]
        self.entry_pipe[lo:hi] = np.arange(lo, hi, dtype=np.int64) % k
        self.n_fed = hi

    # -- the sweep ------------------------------------------------------

    def _process_inject(self, rows: np.ndarray) -> None:
        H, E, R = self.H, self.E, self.R
        cfg = self.cfg
        vplans = self.vplans
        sharder = self.sharder
        inj = self.inj
        cut_limit = self.cut_limit
        k = self.k
        # The resolution stage and pre-plan transit stages are
        # stateless by admission, so running them here — before any
        # service executes — reads and writes only the rows' own
        # columns, exactly as the interleaved engine did.
        kern0 = self.kernels[0]
        if kern0 is not None:
            kern0.fn(H, R, E, rows)
        for u in self.switch._transit_after_inject:
            self.kernels[u].fn(H, R, E, rows)
        t_rows = inj[rows]
        if not vplans:
            et = t_rows + (self.depth - 1)
            rows_e = rows
            if cut_limit is not None:
                keep = et <= cut_limit
                rows_e = rows[keep]
                et = et[keep]
            if rows_e.size:
                self.egr_tick[rows_e] = et
                self.egr_pipe[rows_e] = self.entry_pipe[rows_e]
                self.egr_assigned += rows_e.shape[0]
                self.last_egress = max(self.last_egress, int(et[-1]))
            return
        for pi, plan in enumerate(vplans):
            state = sharder.arrays[plan.base]
            if plan.is_flow:
                size = plan.size
                fkey = H[cfg.flow_order_field]
                iv = np.empty(rows.shape[0], dtype=np.int64)
                for pos, row in enumerate(rows.tolist()):
                    key = int(fkey[row])
                    iv[pos] = hash2(key, 0x5F0E) % size
                    pkt = self.packets[row]
                    if pkt.flow_id is None:
                        pkt.flow_id = key
            elif plan.has_index:
                op = plan.index_operand
                if isinstance(op, Const):
                    iv = np.full(
                        rows.shape[0], op.value % plan.size, dtype=np.int64
                    )
                else:
                    iv = E[op.name][rows] % plan.size
            else:
                iv = None
            if iv is not None:
                counts = np.bincount(iv, minlength=plan.size)
                state.access_counts += counts
                state.in_flight += counts.astype(state.in_flight.dtype)
                dv = state.index_to_pipeline[iv].astype(np.int64)
                self.acc_idx[pi][rows] = iv
            else:
                dv = np.full(
                    rows.shape[0],
                    int(state.index_to_pipeline[0]),
                    dtype=np.int64,
                )
            self.dest[pi][rows] = dv
            if k == 1:
                self.groups[pi][0].push(rows)
            else:
                for pipe in range(k):
                    sel = rows[dv == pipe]
                    if sel.size:
                        self.groups[pi][pipe].push(sel)
        self.ins_tick[0][rows] = t_rows + (vplans[0].stage - 1)

    def _process_cut(
        self, cut: int
    ) -> List[Tuple[int, np.ndarray, np.ndarray]]:
        """Inject and pop everything scheduled at or before ``cut``.
        Returns the epoch's service step: per-plan ``(pi, rows, pops)``
        entries in plan order — the unit :func:`execute_epoch_service`
        consumes."""
        vplans = self.vplans
        k = self.k
        cut_limit = self.cut_limit
        step: List[Tuple[int, np.ndarray, np.ndarray]] = []

        hi = int(
            np.searchsorted(self.inj[: self.n_fed], cut, side="right")
        )
        if hi > self.inj_ptr:
            rows = np.arange(self.inj_ptr, hi, dtype=np.int64)
            self.inj_ptr = hi
            self.injected += rows.shape[0]
            self._process_inject(rows)

        for pi, plan in enumerate(vplans):
            ipt = self.ins_tick[pi]
            popped = []
            for pipe in range(k):
                g = self.groups[pi][pipe]
                avail = g.count - g.ptr
                if avail <= 0:
                    continue
                max_pops = cut - g.last_pop
                if max_pops <= 0:
                    continue
                take = min(avail, max_pops)
                seg_rows = g.members[g.ptr : g.ptr + take]
                seg_ins = ipt[seg_rows]
                unknown = np.nonzero(seg_ins < 0)[0]
                if unknown.size:
                    take = int(unknown[0])
                    if take == 0:
                        continue
                    seg_rows = seg_rows[:take]
                    seg_ins = seg_ins[:take]
                j = np.arange(seg_rows.shape[0], dtype=np.int64)
                base = np.maximum(seg_ins, g.last_pop + 1)
                pops = j + np.maximum.accumulate(base - j)
                cnt = int(np.searchsorted(pops, cut, side="right"))
                if cnt == 0:
                    continue
                rows_p = seg_rows[:cnt]
                pops = pops[:cnt]
                g.ptr += cnt
                g.last_pop = int(pops[-1])
                self.pop_tick[pi][rows_p] = pops
                popped.append((rows_p, pops))
            if not popped:
                continue
            if len(popped) == 1:
                rows_p, pops = popped[0]
            else:
                rows_p = np.concatenate([c[0] for c in popped])
                pops = np.concatenate([c[1] for c in popped])
            self.chunks[pi].append((rows_p, pops))
            step.append((pi, rows_p, pops))
            if plan.has_index and not plan.is_flow:
                state = self.sharder.arrays[plan.base]
                state.in_flight -= np.bincount(
                    self.acc_idx[pi][rows_p], minlength=plan.size
                ).astype(state.in_flight.dtype)
            if pi + 1 < self.nplans:
                delta = vplans[pi + 1].stage - plan.stage
                self.ins_tick[pi + 1][rows_p] = pops + delta
            else:
                # The run loop breaks before tick max_ticks, so an
                # egress scheduled past the cutoff never executes: the
                # packet is stuck in the tail.
                et = pops + (self.depth - plan.stage)
                rows_e = rows_p
                if cut_limit is not None:
                    keep = et <= cut_limit
                    rows_e = rows_p[keep]
                    et = et[keep]
                if rows_e.size:
                    self.egr_tick[rows_e] = et
                    self.egr_pipe[rows_e] = self.dest[pi][rows_e]
                    self.egr_assigned += rows_e.shape[0]
                    self.last_egress = max(
                        self.last_egress, int(et.max())
                    )
        self.executed_through = cut
        return step

    def can_advance(self, watermark: Optional[int]) -> bool:
        """True iff :meth:`advance_epoch` with this watermark (and
        ``final=False``) would make progress — the daemon's
        work-available probe. Mirrors the advance gates exactly, so a
        True always buys state change and a False never spins."""
        if self.done:
            return False
        if self._phase == "decide":
            boundary = self._boundary
            if self.cut_limit is not None and boundary > self.cut_limit:
                return True  # one advance marks the sweep done
            return (
                self.inj_ptr < self.n_fed
                or self.injected > self.egr_assigned
                or self.last_egress >= boundary
            )
        if not self.remap_on:
            return False  # no boundaries: only the drain closes the cut
        cut = self._epoch_start + self.period
        if self.cut_limit is not None and self.cut_limit < cut:
            cut = self.cut_limit
        return watermark is not None and cut < watermark

    def advance_epoch(
        self, watermark: Optional[int] = None, final: bool = False
    ) -> Optional[List[Tuple[int, np.ndarray, np.ndarray]]]:
        """Run the sweep until one epoch's service step is produced, the
        sweep completes, or it must wait (watermark too low / stalled
        boundary). Returns the step, or None (check :attr:`done` to
        tell completion from a stall). ``final=True`` asserts no
        further packets will be fed — the drain."""
        while True:
            if self.done:
                return None
            if self._phase == "decide":
                boundary = self._boundary
                if (
                    self.cut_limit is not None
                    and boundary > self.cut_limit
                ):
                    self.done = True
                    return None
                # The scalar run loop is alive at the boundary tick iff
                # packets are still pending injection or in flight
                # there — only then does that tick's remap execute.
                alive = (
                    self.inj_ptr < self.n_fed
                    or self.injected > self.egr_assigned
                    or self.last_egress >= boundary
                )
                if alive:
                    moved = self.sharder.end_epoch(
                        self.cfg.remap_algorithm
                    )
                    self.stats.remap_moves += moved
                    self.remap_records.append((boundary, moved))
                    self._epoch_start = boundary
                    self.epochs += 1
                    self._phase = "content"
                    continue
                if final:
                    self.done = True
                    return None
                # Dead as far as fed packets go, but a later feed can
                # revive the boundary (the batch test is inj_ptr < N
                # over the *whole* trace): stall until feed or drain.
                return None

            boundary = (
                (self._epoch_start + self.period) if self.remap_on else None
            )
            cut = _FAR
            if boundary is not None:
                cut = boundary
            if self.cut_limit is not None and self.cut_limit < cut:
                cut = self.cut_limit
            if not final:
                # Mid-stream the cut must be closed: a future packet
                # has inj >= ceil(arrival) >= watermark, so cut <
                # watermark proves no arrival below it is missing.
                if boundary is None or watermark is None or cut >= watermark:
                    return None
            step = self._process_cut(cut)
            if not self.remap_on:
                self.done = True
                return step or None
            if self.cut_limit is not None and boundary > self.cut_limit:
                self.done = True
                return step or None
            self._phase = "decide"
            self._boundary = boundary
            if step:
                return step
            # Empty epoch: fall through to the boundary decision.

    def drain(self) -> None:
        """Run the sweep to completion, discarding service steps (the
        chunks stay recorded on the streamer for whole-run Phase B)."""
        while not self.done:
            self.advance_epoch(final=True)

    def finalize(self) -> EpochSchedule:
        """Snapshot the finished sweep as the batch-identical
        :class:`EpochSchedule` (capacity arrays trimmed to the fed
        prefix; chunk and group objects shared, not copied)."""
        n = self.n_fed
        sched = EpochSchedule()
        sched.cut_limit = self.cut_limit
        sched.remap_records = self.remap_records
        sched.inj = self.inj[:n]
        sched.entry_pipe = self.entry_pipe[:n]
        sched.acc_idx = [
            a[:n] if a is not None else None for a in self.acc_idx
        ]
        sched.dest = [d[:n] for d in self.dest]
        sched.ins_tick = [t[:n] for t in self.ins_tick]
        sched.pop_tick = [t[:n] for t in self.pop_tick]
        sched.groups = self.groups
        sched.chunks = self.chunks
        sched.egr_tick = self.egr_tick[:n]
        sched.egr_pipe = self.egr_pipe[:n]
        sched.injected = self.injected
        sched.egr_assigned = self.egr_assigned
        sched.last_egress = self.last_egress
        sched.epochs = self.epochs
        return sched


def build_epoch_schedule(
    switch, packets: Sequence, H: Dict, E: Dict, R: Dict,
    max_ticks: Optional[int],
) -> EpochSchedule:
    """Phase A, batch entry point: one ingest, drain, finalize.

    Mutates the sharding runtime (access counters, remaps) and — for
    injected rows only — the stateless columns written by the
    resolution and pre-plan transit kernels. ``switch.stats`` receives
    the remap-move count; everything else lands on the returned
    schedule.
    """
    N = len(packets)
    streamer = EpochStreamer(switch, packets, H, E, R, max_ticks)
    if N:
        arrival = getattr(switch, "_arrival_f", None)
        if arrival is None or arrival.shape[0] != N:
            arrival = np.fromiter(
                (float(p.arrival) for p in packets),
                dtype=np.float64,
                count=N,
            )
        streamer.ingest(arrival)
    streamer.drain()
    return streamer.finalize()


# ---------------------------------------------------------------------------
# Phase B: service execution
# ---------------------------------------------------------------------------


def resolve_native_mode(native: Optional[bool]) -> str:
    """``off`` (default / ``native=False``), ``njit`` (``native=True``
    with Numba importable) or ``python`` (``native=True`` without it:
    the fused kernels run as plain Python — same source, same results,
    visible in ``native_unavailable_reason()``)."""
    if not native:
        return "off"
    return "njit" if native_available() else "python"


def _native_kernel(switch, stage: int, track_reg: Optional[str], mode: str):
    """Fused kernel for one stage, or None when outside the native
    envelope. Cached on the program object like the vjit kernels."""
    if mode == "off":
        return None
    cache = getattr(switch.program, "_native_kernel_cache", None)
    if cache is None:
        cache = {}
        try:
            switch.program._native_kernel_cache = cache
        except AttributeError:
            pass
    key = (stage, track_reg, mode)
    if key not in cache:
        from ..compiler.native import NativeUnsupported

        try:
            cache[key] = compile_native_stage(
                switch._stage_instrs[stage],
                f"s{stage}",
                track_reg=track_reg,
                force_python=(mode == "python"),
            )
        except NativeUnsupported:
            cache[key] = None
    return cache[key]


def _native_cols(nkern, H: Dict, E: Dict, R: Dict) -> List[np.ndarray]:
    return (
        [H[f] for f in nkern.fields]
        + [E[t] for t in nkern.temps]
        + [R[r] for r in nkern.regs]
    )


def _wave_service(
    kern, H, R, E, base, conservative, rows_p, idxs, mask=None
) -> int:
    """One epoch chunk of a wave plan, PR 5 semantics: rows touching
    distinct indices execute together; same-index rows execute in
    successive waves in pop order (the chunk's concatenation order is
    pop order per pipeline, and one index maps to one pipeline within
    an epoch). When ``mask`` is given (trace reconstruction), the rows
    whose conservative access wasted a slot are flagged in it."""
    wasted = 0
    n = rows_p.shape[0]
    # Fast path: no index repeats in the chunk -> one wave.
    if n == 1 or int(np.bincount(idxs).max()) <= 1:
        if conservative:
            lane = np.zeros(n, dtype=bool)
            kern.fn(H, R, E, rows_p, {base: lane})
            if mask is not None:
                mask[rows_p[~lane]] = True
            return int(n - np.count_nonzero(lane))
        kern.fn(H, R, E, rows_p)
        return 0
    order = np.argsort(idxs, kind="stable")
    sorted_idx = idxs[order]
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    new_group[1:] = sorted_idx[1:] != sorted_idx[:-1]
    starts = np.maximum.accumulate(np.where(new_group, np.arange(n), 0))
    rank = np.arange(n) - starts
    waves = np.empty(n, dtype=np.int64)
    waves[order] = rank
    n_waves = int(rank.max()) + 1
    if conservative:
        for w in range(n_waves):
            sel = rows_p[waves == w]
            lane = np.zeros(sel.shape[0], dtype=bool)
            kern.fn(H, R, E, sel, {base: lane})
            if mask is not None:
                mask[sel[~lane]] = True
            wasted += int(sel.shape[0] - np.count_nonzero(lane))
    elif n_waves == 1:
        kern.fn(H, R, E, rows_p)
    else:
        for w in range(n_waves):
            kern.fn(H, R, E, rows_p[waves == w])
    return wasted


def _run_wave_partition(
    kern, nkern, H, R, E, base, conservative, rows, idxs, offsets
) -> int:
    """Service one residue part of a wave plan: the fused per-row loop
    when a native kernel is in force (rows are in per-index pop order,
    which is all the per-row loop needs), else the NumPy wave
    decomposition chunk by chunk."""
    if nkern is not None:
        return int(nkern.fn(rows, *_native_cols(nkern, H, E, R)))
    wasted = 0
    for lo, hi in zip(offsets[:-1], offsets[1:]):
        if hi > lo:
            wasted += _wave_service(
                kern, H, R, E, base, conservative, rows[lo:hi], idxs[lo:hi]
            )
    return wasted


# Per-worker state for the epoch pool: set once by the initializer,
# read by every task. Lives at module level so tasks pickle as plain
# (segment, plan, rows, idxs, offsets) tuples. The initializer no
# longer names a segment — tasks do — so one pool serves every
# dispatch of a run, including a streamed run's per-epoch dispatches.
_WORKER: Optional[dict] = None


def _epoch_worker_init(stage_instrs, metas, mode) -> None:
    """Pool initializer: stash the program description. Kernels compile
    lazily per plan on first use (and are cached), so a worker that
    only ever serves one plan compiles one stage; the shared segment is
    attached per task (and cached by name)."""
    global _WORKER
    _WORKER = {
        "instrs": stage_instrs,
        "metas": metas,
        "mode": mode,
        "kernels": {},
        "seg": None,
        "seg_name": None,
        "cols": None,
    }


def _worker_columns(seg_name, layout) -> Dict:
    """Attach (or reuse) the named segment and map its columns. A new
    name evicts the previous attachment — segments are per-dispatch in
    the streaming path, per-run in the batch path."""
    ctx = _WORKER
    if ctx["seg_name"] != seg_name:
        from multiprocessing import shared_memory

        if ctx["seg"] is not None:
            ctx["seg"].close()
        seg = shared_memory.SharedMemory(name=seg_name)
        ctx["seg"] = seg  # keep a reference: GC would detach the buffer
        ctx["seg_name"] = seg_name
        ctx["cols"] = {
            (kind, name): np.ndarray(
                (count,), dtype=np.int64, buffer=seg.buf, offset=offset
            )
            for kind, name, offset, count in layout
        }
    return ctx["cols"]


def _worker_plan(pi: int):
    """Compile-and-cache the kernels plan ``pi`` needs in this worker."""
    ctx = _WORKER
    got = ctx["kernels"].get(pi)
    if got is None:
        from ..compiler.native import NativeUnsupported
        from ..compiler.vjit import compile_vector_stage

        stage, base, conservative = ctx["metas"][pi]
        instrs = ctx["instrs"][stage]
        kern = compile_vector_stage(instrs, name=f"w{stage}")
        nkern = None
        if ctx["mode"] == "njit":
            try:
                nkern = compile_native_stage(
                    instrs,
                    f"w{stage}",
                    track_reg=base if conservative else None,
                )
            except NativeUnsupported:
                nkern = None
            if nkern is not None and not nkern.jitted:
                nkern = None  # plain-Python rows loop loses to waves
        got = (kern, nkern, base, conservative)
        ctx["kernels"][pi] = got
    return got


def _epoch_worker_run(task) -> int:
    seg_name, layout, pi, rows, idxs, offsets = task
    cols = _worker_columns(seg_name, layout)
    kern, nkern, base, conservative = _worker_plan(pi)
    H = {
        f: cols[("H", f)]
        for f in kern.fields_read | kern.fields_written
    }
    E = {t: cols[("E", t)] for t in set(kern.temps_in) | set(kern.temps_out)}
    R = {r: cols[("R", r)] for r in {i.reg for i in kern.stateful}}
    return _run_wave_partition(
        kern, nkern, H, R, E, base, conservative, rows, idxs, offsets
    )


def _share_columns(H: Dict, E: Dict, R: Dict):
    """Copy every SoA column into one shared-memory segment and return
    (segment, layout, H', E', R') with the dicts rebuilt as views."""
    from multiprocessing import shared_memory

    entries = (
        [("H", name, arr) for name, arr in sorted(H.items())]
        + [("E", name, arr) for name, arr in sorted(E.items())]
        + [("R", name, arr) for name, arr in sorted(R.items())]
    )
    total = sum(arr.shape[0] for _, _, arr in entries) * 8
    seg = shared_memory.SharedMemory(create=True, size=max(total, 8))
    _parallel().register_shared_segment(seg.name)
    layout = []
    views: Dict[Tuple[str, str], np.ndarray] = {}
    offset = 0
    for kind, name, arr in entries:
        count = arr.shape[0]
        view = np.ndarray((count,), dtype=np.int64, buffer=seg.buf, offset=offset)
        view[:] = arr
        layout.append((kind, name, offset, count))
        views[(kind, name)] = view
        offset += count * 8
    H2 = {name: views[("H", name)] for name in H}
    E2 = {name: views[("E", name)] for name in E}
    R2 = {name: views[("R", name)] for name in R}
    return seg, layout, H2, E2, R2


def _pool_initargs(switch, mode: str):
    """The epoch pool's initializer arguments: static per (switch,
    mode), so the pool survives across plans, epochs, and dispatches
    (``_get_pool`` respawns on any initargs change)."""
    metas = [(p.stage, p.base, p.conservative) for p in switch._vplans]
    return (switch._stage_instrs, metas, mode)


def execute_service(
    switch,
    schedule: EpochSchedule,
    H: Dict,
    E: Dict,
    R: Dict,
    native: Optional[bool] = None,
    epoch_jobs: Optional[int] = None,
    profiler=None,
    wasted_out: Optional[List[Optional[np.ndarray]]] = None,
) -> int:
    """Phase B, batch path: run every plan's deferred service, in plan
    order.

    Mutates ``H``/``E``/``R`` in place (via shared-memory staging when
    workers are used) and returns the wasted-slot count. The result is
    identical — and, once serialized, byte-identical — for every
    combination of ``native`` and ``epoch_jobs``, including every
    fallback path. ``profiler`` (a
    :class:`~repro.obs.profiler.PhaseProfiler`) receives per-stage
    kernel-tier timings and pool gauges; ``wasted_out`` is a per-plan
    list of bool row masks the trace reconstruction needs — plans with
    a mask run the mask-capable in-process paths (same results, per the
    exactness contract) and flag the rows whose conservative access
    wasted a slot.
    """
    from time import perf_counter

    vplans = switch._vplans
    mode = resolve_native_mode(native)
    jobs = _parallel().resolve_jobs(epoch_jobs)
    use_pool = (
        jobs > 1
        and not _parallel().pool_unavailable()
        and any(
            p.category == "wave"
            and sum(c[0].shape[0] for c in schedule.chunks[pi])
            >= PARALLEL_MIN_ROWS
            for pi, p in enumerate(vplans)
        )
    )
    seg = None
    originals = None
    shared = None
    if use_pool:
        try:
            originals = (H, E, R)
            seg, layout, H, E, R = _share_columns(H, E, R)
            shared = (seg.name, layout)
            if profiler is not None:
                profiler.record_pool(workers=jobs, shared_bytes=seg.size)
        except (OSError, ValueError):
            if seg is not None:
                _parallel().unregister_shared_segment(seg.name)
                seg.close()
                seg.unlink()
            seg = None
            H, E, R = originals
            originals = None
            use_pool = False
    wasted = 0
    try:
        for pi, plan in enumerate(vplans):
            rows_all, _pops = schedule.plan_stream(pi)
            if rows_all.size:
                mask = wasted_out[pi] if wasted_out is not None else None
                t0 = perf_counter() if profiler is not None else 0.0
                tier = None
                if plan.category == "wave":
                    got, tier = _service_wave_plan(
                        switch, schedule, pi, plan, H, E, R, mode,
                        jobs if use_pool else 1,
                        shared if use_pool else None,
                        mask=mask,
                        profiler=profiler,
                    )
                    wasted += got
                elif plan.category == "serial":
                    got, tier = _service_serial_plan(
                        switch, schedule, pi, plan, H, E, R, mode, mask=mask
                    )
                    wasted += got
                # 'none' (flow-order arrays, kernel-free stages): the
                # FIFO timing is the whole effect; nothing to execute.
                if profiler is not None and tier is not None:
                    profiler.record_kernel(
                        plan.stage, tier, perf_counter() - t0
                    )
                for u in switch._transit_after[pi]:
                    switch._vkernels[u].fn(H, R, E, rows_all)
    finally:
        if seg is not None:
            oH, oE, oR = originals
            for name, arr in oH.items():
                arr[:] = H[name]
            for name, arr in oE.items():
                arr[:] = E[name]
            for name, arr in oR.items():
                arr[:] = R[name]
            del H, E, R  # drop the views before freeing their buffer
            seg.close()
            seg.unlink()
            _parallel().unregister_shared_segment(seg.name)
    return wasted


def _service_wave_plan(
    switch, schedule, pi, plan, H, E, R, mode, jobs, shared,
    mask=None, profiler=None,
):
    kern = switch._vkernels[plan.stage]
    track = plan.base if plan.conservative else None
    # Per-row wasted-slot capture (trace reconstruction) needs the
    # chunked NumPy path, which knows which rows lost their lane; the
    # fused kernels and pool parts only count. Results are identical by
    # the exactness contract, so forcing the path changes nothing else.
    capture = mask is not None
    # A plain-Python per-row loop loses to the NumPy wave decomposition
    # for shardable plans; the python tier is reserved for the
    # serialized path, where it replaces a slower loop.
    nkern = (
        _native_kernel(switch, plan.stage, track, mode)
        if mode == "njit" and not capture
        else None
    )
    nparts = jobs if not capture else 1
    if nparts > 1:
        parts = schedule.partition(pi, nparts)
        big_enough = all(p[0].shape[0] >= 64 for p in parts)
        if len(parts) > 1 and big_enough:
            done = _dispatch_parts(
                switch, schedule, pi, plan, parts, H, E, R, kern,
                shared, mode,
            )
            if done is not None:
                if profiler is not None:
                    profiler.record_pool(tasks=len(parts))
                return done, "pool"
        # Partitioning didn't pay (or the pool broke and state was
        # restored): fall through to the in-process path.
    idx_col = schedule.acc_idx[pi]
    if nkern is not None:
        rows = schedule.service_order(pi)
        return int(nkern.fn(rows, *_native_cols(nkern, H, E, R))), "njit"
    wasted = 0
    for rows_p, _pops in schedule.chunks[pi]:
        wasted += _wave_service(
            kern, H, R, E, plan.base, plan.conservative, rows_p,
            idx_col[rows_p], mask=mask,
        )
    return wasted, "numpy"


def _dispatch_parts(
    switch, schedule, pi, plan, parts, H, E, R, kern, shared, mode
) -> Optional[int]:
    """Run a wave plan's residue parts on the pool. Returns the wasted
    count, or None after restoring state when the pool failed (the
    caller then re-executes in process; tasks are register-mutating and
    so never retried blindly)."""
    # Snapshot everything this plan's service can touch, so a pool that
    # breaks mid-plan (some parts applied, some not) can be rolled back.
    rows_all, _ = schedule.plan_stream(pi)
    snap_reg = {r: R[r].copy() for r in {i.reg for i in kern.stateful}}
    snap_E = {t: E[t][rows_all].copy() for t in kern.temps_out}
    snap_H = {f: H[f][rows_all].copy() for f in kern.fields_written}
    seg_name, layout = shared
    tasks = [
        (seg_name, layout, pi, rows, idxs, offsets)
        for rows, idxs, offsets in parts
    ]
    try:
        results = _parallel().pool_map_strict(
            _epoch_worker_run,
            tasks,
            jobs=len(parts),
            initializer=_epoch_worker_init,
            initargs=_pool_initargs(switch, mode),
            pool_key="epoch",
        )
        return int(sum(results))
    except _parallel().PoolBroken:
        for r, arr in snap_reg.items():
            R[r][:] = arr
        for t, arr in snap_E.items():
            E[t][rows_all] = arr
        for f, arr in snap_H.items():
            H[f][rows_all] = arr
        return None


def _service_serial_plan(switch, schedule, pi, plan, H, E, R, mode, mask=None):
    """Serialized rows of the batch path: execution in global (tick,
    pipeline) service order — see :func:`_serial_rows_service`."""
    return _serial_rows_service(
        switch, plan, schedule.service_order(pi), H, E, R, mode, mask=mask
    )


def _serial_rows_service(
    switch, plan, rows_sorted, H, E, R, mode, mask=None
):
    """Serialized rows: pinned arrays, co-staged (multi) arrays,
    constant or in-stage index expressions. Exact by construction —
    ``rows_sorted`` is already in (tick, pipeline) service order,
    executed either as one fused per-row kernel call or as the
    scalar-JIT dict loop. A ``mask`` (trace reconstruction) forces the
    dict loop, which knows *which* rows wasted their slot, not just how
    many."""
    stage = plan.stage
    kern = switch._vkernels[stage]
    track_wasted = plan.conservative and not plan.multi
    nkern = (
        _native_kernel(
            switch, stage, plan.base if track_wasted else None, mode
        )
        if mask is None
        else None
    )
    if nkern is not None:
        return int(nkern.fn(rows_sorted, *_native_cols(nkern, H, E, R))), "njit"
    fn = switch._vserial_fns[stage]
    regview = {name: _RegView(arr) for name, arr in R.items()}
    fields = sorted(kern.fields_read | kern.fields_written)
    written = sorted(kern.fields_written)
    temps_in = kern.temps_in
    temps_out = kern.temps_out
    wasted = 0
    for row in rows_sorted.tolist():
        headers = {f: int(H[f][row]) for f in fields}
        env = {t: int(E[t][row]) for t in temps_in}
        if track_wasted:
            hit: List[str] = []
            fn(headers, regview, env, lambda reg, i, kind: hit.append(reg))
            if plan.base not in hit:
                wasted += 1
                if mask is not None:
                    mask[row] = True
        else:
            fn(headers, regview, env, None)
        for f in written:
            H[f][row] = headers[f]
        for t in temps_out:
            E[t][row] = env[t]
    return wasted, "python"


# ---------------------------------------------------------------------------
# Phase B, streaming path: per-epoch service
# ---------------------------------------------------------------------------


def execute_epoch_service(
    switch,
    streamer: EpochStreamer,
    step: List[Tuple[int, np.ndarray, np.ndarray]],
    H: Dict,
    E: Dict,
    R: Dict,
    native: Optional[bool] = None,
    epoch_jobs: Optional[int] = None,
    profiler=None,
    wasted_out: Optional[List[Optional[np.ndarray]]] = None,
) -> int:
    """Service one epoch's step as :meth:`EpochStreamer.advance_epoch`
    emits it. Exactly the batch reduction, re-chunked: an epoch's pops
    all exceed the previous cut, so running plans in plan order within
    the step, epoch after epoch, visits every register slot in the
    batch path's service order. Returns the step's wasted-slot count.
    """
    from time import perf_counter

    vplans = switch._vplans
    mode = resolve_native_mode(native)
    jobs = _parallel().resolve_jobs(epoch_jobs)
    wasted = 0
    for pi, rows_p, pops in step:
        plan = vplans[pi]
        mask = wasted_out[pi] if wasted_out is not None else None
        t0 = perf_counter() if profiler is not None else 0.0
        tier = None
        if plan.category == "wave":
            got, tier = _service_wave_rows(
                switch, streamer, pi, plan, rows_p, pops, H, E, R,
                mode, jobs, mask=mask, profiler=profiler,
            )
            wasted += got
        elif plan.category == "serial":
            order = rows_p[np.lexsort((streamer.dest[pi][rows_p], pops))]
            got, tier = _serial_rows_service(
                switch, plan, order, H, E, R, mode, mask=mask
            )
            wasted += got
        # 'none' (flow-order arrays, kernel-free stages): the FIFO
        # timing is the whole effect; nothing to execute.
        if profiler is not None and tier is not None:
            profiler.record_kernel(plan.stage, tier, perf_counter() - t0)
        for u in switch._transit_after[pi]:
            switch._vkernels[u].fn(H, R, E, rows_p)
    return wasted


def _service_wave_rows(
    switch, streamer, pi, plan, rows_p, pops, H, E, R, mode, jobs,
    mask=None, profiler=None,
):
    """One epoch chunk of a wave plan, streaming path: pool-partition
    when the chunk alone is big enough, else fused kernel in the
    epoch-local service order, else the NumPy wave decomposition."""
    kern = switch._vkernels[plan.stage]
    track = plan.base if plan.conservative else None
    capture = mask is not None
    nkern = (
        _native_kernel(switch, plan.stage, track, mode)
        if mode == "njit" and not capture
        else None
    )
    idxs = streamer.acc_idx[pi][rows_p]
    if (
        not capture
        and jobs > 1
        and rows_p.shape[0] >= PARALLEL_MIN_ROWS
        and not _parallel().pool_unavailable()
    ):
        done = _dispatch_epoch_parts(
            switch, pi, plan, kern, rows_p, idxs, H, E, R, jobs, mode,
            profiler=profiler,
        )
        if done is not None:
            return done, "pool"
        # Partitioning didn't pay (or the pool/shared-memory setup
        # failed, leaving the caller's arrays untouched): fall through.
    if nkern is not None:
        # Epoch-local (tick, pipeline) order; chunks concatenate to the
        # global service order because pops rise across epochs.
        order = rows_p[np.lexsort((streamer.dest[pi][rows_p], pops))]
        return int(nkern.fn(order, *_native_cols(nkern, H, E, R))), "njit"
    wasted = _wave_service(
        kern, H, R, E, plan.base, plan.conservative, rows_p, idxs,
        mask=mask,
    )
    return wasted, "numpy"


def _dispatch_epoch_parts(
    switch, pi, plan, kern, rows_p, idxs, H, E, R, jobs, mode,
    profiler=None,
) -> Optional[int]:
    """Residue-partition one epoch chunk across the pool, against a
    *compact* shared segment: the chunk's own rows gathered into dense
    columns (tasks carry local row positions), plus the full register
    arrays (access indices are global). On success the written columns
    scatter back; on any failure the caller's arrays are untouched —
    workers only ever mutated the discarded segment copy."""
    residue = idxs % jobs
    parts = []
    for w in range(jobs):
        pos = np.nonzero(residue == w)[0].astype(np.int64)
        if pos.shape[0]:
            parts.append(pos)
    if len(parts) <= 1 or any(p.shape[0] < 64 for p in parts):
        return None
    fields = sorted(kern.fields_read | kern.fields_written)
    temps = sorted(set(kern.temps_in) | set(kern.temps_out))
    regs = sorted({i.reg for i in kern.stateful})
    Hc = {f: np.ascontiguousarray(H[f][rows_p]) for f in fields}
    Ec = {t: np.ascontiguousarray(E[t][rows_p]) for t in temps}
    Rc = {r: R[r] for r in regs}
    try:
        seg, layout, Hs, Es, Rs = _share_columns(Hc, Ec, Rc)
    except (OSError, ValueError):
        return None
    if profiler is not None:
        profiler.record_pool(
            workers=jobs, tasks=len(parts), shared_bytes=seg.size
        )
    tasks = [
        (
            seg.name,
            layout,
            pi,
            pos,
            idxs[pos],
            np.array([0, pos.shape[0]], dtype=np.int64),
        )
        for pos in parts
    ]
    wasted: Optional[int] = None
    try:
        results = _parallel().pool_map_strict(
            _epoch_worker_run,
            tasks,
            jobs=len(parts),
            initializer=_epoch_worker_init,
            initargs=_pool_initargs(switch, mode),
            pool_key="epoch",
        )
        wasted = int(sum(results))
        for f in kern.fields_written:
            H[f][rows_p] = Hs[f]
        for t in kern.temps_out:
            E[t][rows_p] = Es[t]
        for r in regs:
            R[r][:] = Rs[r]
    except _parallel().PoolBroken:
        wasted = None
    finally:
        del Hs, Es, Rs  # drop the views before freeing their buffer
        seg.close()
        seg.unlink()
        _parallel().unregister_shared_segment(seg.name)
    return wasted
