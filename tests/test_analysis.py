"""Tests for the analytical models, cross-validated against simulation."""

import numpy as np
import pytest

from repro.analysis import (
    array_throughput_bound,
    fundamental_limit,
    md1_mean_in_system,
    md1_mean_queue,
    md1_mean_wait,
    program_throughput_bound,
    scalar_state_limit,
)
from repro.compiler import compile_program
from repro.errors import ConfigError
from repro.mp5 import MP5Config, run_mp5
from repro.workloads import line_rate_trace, make_sensitivity_program, sensitivity_trace


class TestMD1Formulas:
    def test_zero_load_zero_queue(self):
        assert md1_mean_queue(0.0) == 0.0
        assert md1_mean_wait(0.0) == 0.0

    def test_queue_grows_convexly(self):
        q = [md1_mean_queue(r) for r in (0.2, 0.5, 0.8, 0.95)]
        assert q == sorted(q)
        assert q[3] > 5 * q[2] / 2  # convex blow-up near saturation

    def test_known_value(self):
        assert md1_mean_queue(0.5) == pytest.approx(0.25)
        assert md1_mean_wait(0.8) == pytest.approx(2.0)

    def test_in_system_adds_service(self):
        assert md1_mean_in_system(0.5) == pytest.approx(0.75)

    def test_unstable_load_rejected(self):
        with pytest.raises(ConfigError):
            md1_mean_queue(1.0)
        with pytest.raises(ConfigError):
            md1_mean_wait(-0.1)


class TestFundamentalBounds:
    def test_scalar_limit_matches_pinned_bound(self):
        assert scalar_state_limit(4) == array_throughput_bound(
            1, False, 4
        )

    def test_sequencer_bound_at_64b(self):
        program = compile_program("sequencer")
        assert fundamental_limit(program, 4) == pytest.approx(0.25)

    def test_sequencer_bound_realistic_packets(self):
        program = compile_program("sequencer")
        assert fundamental_limit(program, 16, mean_packet_bytes=740) == (
            pytest.approx(740 / 1024)
        )

    def test_stateless_program_unbounded(self):
        program = compile_program("stateless_rewrite")
        assert fundamental_limit(program, 8) == 1.0

    def test_large_shardable_array_unbounded(self):
        program = compile_program("heavy_hitter")
        assert fundamental_limit(program, 4) == 1.0

    def test_small_array_partial_bound(self):
        # size-2 shardable array on 4 pipelines: 2 servers for k load.
        assert array_throughput_bound(2, True, 4) == pytest.approx(0.5)

    def test_per_array_bounds_listed(self):
        program = compile_program("wfq")
        bounds = {b.array: b for b in program_throughput_bound(program, 4)}
        assert bounds["virtual_time"].serving_pipelines == 1
        assert bounds["virtual_time"].bound == pytest.approx(0.25)
        assert bounds["last_finish"].bound == 1.0

    def test_access_probability_relaxes_bound(self):
        program = compile_program("wfq")
        relaxed = program_throughput_bound(
            program, 4, access_probabilities={"virtual_time": 0.1}
        )
        bound = {b.array: b.bound for b in relaxed}["virtual_time"]
        assert bound == 1.0

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigError):
            array_throughput_bound(0, True, 4)
        with pytest.raises(ConfigError):
            array_throughput_bound(4, True, 4, utilization=0)
        with pytest.raises(ConfigError):
            array_throughput_bound(4, True, 4, access_probability=2)


class TestSimulatorAgreesWithTheory:
    def test_sequencer_hits_its_bound_exactly(self):
        program = compile_program("sequencer")
        trace = line_rate_trace(2000, 4, lambda r, i: {"seq": 0}, seed=0)
        stats, _ = run_mp5(program, trace, MP5Config(num_pipelines=4))
        limit = fundamental_limit(program, 4)
        assert stats.throughput_normalized() == pytest.approx(limit, abs=0.03)

    def test_small_register_hits_partial_bound(self):
        program = make_sensitivity_program(1, 2)
        trace = sensitivity_trace(2000, 4, 1, 2, pattern="uniform", seed=0)
        stats, _ = run_mp5(program, trace, MP5Config(num_pipelines=4))
        limit = fundamental_limit(program, 4)  # 0.5
        assert stats.throughput_normalized() == pytest.approx(limit, abs=0.06)

    def test_md1_predicts_moderate_load_queues(self):
        # One register array, uniform random indexes, 70% utilization:
        # arrivals into each pipeline's stateful stage are approximately
        # Poisson with rho=0.7, service is deterministic 1 tick. The
        # simulator's mean in-system occupancy should sit near the M/D/1
        # value (within generous modeling slack: arrivals are binomial,
        # not Poisson, which *reduces* queueing).
        rho = 0.7
        program = make_sensitivity_program(1, 4096)
        trace = sensitivity_trace(6000, 4, 1, 4096, pattern="uniform", seed=1)
        for pkt in trace:
            pkt.arrival = pkt.arrival / rho
        stats, _ = run_mp5(program, trace, MP5Config(num_pipelines=4))
        predicted = md1_mean_in_system(rho)
        # Use mean latency excess over the pipeline transit as the
        # in-system time at the single stateful stage (Little's law).
        measured_wait = stats.mean_latency - 16
        assert measured_wait >= 0
        assert measured_wait < 4 * predicted
        assert stats.throughput_normalized() > 0.99  # stable at rho<1
