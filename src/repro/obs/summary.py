"""Trace analysis: stall rankings and per-flow timelines.

``repro trace-summary <file>`` loads a trace (JSONL or Chrome format)
and prints:

* event-type counts,
* the **phantom-wait ranking** — per (pipeline, stage) lane, how long
  data packets sat queued behind their ordering position (``wait`` of
  every ``fifo_pop``),
* the **FIFO-block ranking** — per lane, how many head-of-line blocking
  episodes a phantom head caused and for how many ticks,
* drops by reason,
* per-flow timelines for the first few flows.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .events import (
    EVENT_DROP,
    EVENT_EGRESS,
    EVENT_FIFO_BLOCK,
    EVENT_FIFO_POP,
    EVENT_FIFO_UNBLOCK,
    EVENT_INGRESS,
)

Lane = Tuple[int, int]


def summarize_trace(events: Iterable[Dict]) -> Dict:
    """Aggregate an event stream into the summary structure."""
    type_counts: Dict[str, int] = {}
    waits: Dict[Lane, Dict[str, float]] = {}
    blocks: Dict[Lane, Dict[str, int]] = {}
    drops: Dict[str, int] = {}
    flow_of_pkt: Dict[int, Optional[int]] = {}
    pkt_events: Dict[int, List[Dict]] = {}
    last_tick = 0

    for event in events:
        etype = event["type"]
        tick = event["tick"]
        if tick > last_tick:
            last_tick = tick
        type_counts[etype] = type_counts.get(etype, 0) + 1
        pkt = event.get("pkt")
        if pkt is not None:
            pkt_events.setdefault(pkt, []).append(event)
        if etype == EVENT_INGRESS:
            flow_of_pkt[pkt] = event.get("flow")
        elif etype == EVENT_FIFO_POP:
            lane = (event["pipe"], event["stage"])
            entry = waits.setdefault(
                lane, {"pops": 0, "total_wait": 0, "max_wait": 0}
            )
            wait = event.get("wait", 0)
            entry["pops"] += 1
            entry["total_wait"] += wait
            if wait > entry["max_wait"]:
                entry["max_wait"] = wait
        elif etype == EVENT_FIFO_BLOCK:
            lane = (event["pipe"], event["stage"])
            blocks.setdefault(lane, {"episodes": 0, "blocked_ticks": 0})[
                "episodes"
            ] += 1
        elif etype == EVENT_FIFO_UNBLOCK:
            lane = (event["pipe"], event["stage"])
            blocks.setdefault(lane, {"episodes": 0, "blocked_ticks": 0})[
                "blocked_ticks"
            ] += event.get("blocked", 0)
        elif etype == EVENT_DROP:
            drops[event.get("reason", "?")] = (
                drops.get(event.get("reason", "?"), 0) + 1
            )

    flows: Dict[object, List[int]] = {}
    for pkt in sorted(pkt_events):
        flow = flow_of_pkt.get(pkt)
        key = flow if flow is not None else f"pkt {pkt}"
        flows.setdefault(key, []).append(pkt)

    return {
        "events": sum(type_counts.values()),
        "ticks": last_tick + 1,
        "type_counts": type_counts,
        "phantom_waits": waits,
        "fifo_blocks": blocks,
        "drops": drops,
        "flows": flows,
        "pkt_events": pkt_events,
    }


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    cells = [[str(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in cells), default=0))
        for i in range(len(headers))
    ]

    def line(row: Sequence[str]) -> str:
        return "  ".join(c.rjust(widths[i]) for i, c in enumerate(row))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def _brief(event: Dict) -> str:
    etype = event["type"]
    where = ""
    if event.get("pipe") is not None:
        where = f" p{event['pipe']}/s{event.get('stage', 0)}"
    extra = ""
    if etype == EVENT_FIFO_POP and event.get("wait"):
        extra = f" wait={event['wait']}"
    elif etype == EVENT_DROP:
        extra = f" ({event.get('reason', '?')})"
    elif etype == EVENT_EGRESS:
        extra = f" latency={event.get('latency')}"
    elif "array" in event:
        extra = f" {event['array']}"
        if event.get("index") is not None:
            extra += f"[{event['index']}]"
    return f"t{event['tick']} {etype}{where}{extra}"


def render_trace_summary(
    summary: Dict, top: int = 10, max_flows: int = 5
) -> str:
    """Render the summary the ``trace-summary`` subcommand prints."""
    parts: List[str] = [
        f"Trace summary: {summary['events']} events over "
        f"{summary['ticks']} ticks"
    ]

    counts = summary["type_counts"]
    parts.append("")
    parts.append("Event counts")
    parts.append(
        _table(
            ("event", "count"),
            sorted(counts.items(), key=lambda kv: kv[1], reverse=True),
        )
    )

    waits = summary["phantom_waits"]
    parts.append("")
    parts.append("Top phantom-wait stalls (ticks data packets spent queued)")
    if waits:
        ranked = sorted(
            waits.items(), key=lambda kv: kv[1]["total_wait"], reverse=True
        )[:top]
        parts.append(
            _table(
                ("lane", "pops", "total wait", "mean", "max"),
                [
                    (
                        f"p{lane[0]}/s{lane[1]}",
                        w["pops"],
                        w["total_wait"],
                        f"{w['total_wait'] / w['pops']:.2f}" if w["pops"] else "-",
                        w["max_wait"],
                    )
                    for lane, w in ranked
                ],
            )
        )
    else:
        parts.append("  (no queued packets)")

    blocks = summary["fifo_blocks"]
    parts.append("")
    parts.append("Top FIFO-block stalls (phantom head-of-line blocking)")
    if blocks:
        ranked = sorted(
            blocks.items(),
            key=lambda kv: (kv[1]["blocked_ticks"], kv[1]["episodes"]),
            reverse=True,
        )[:top]
        parts.append(
            _table(
                ("lane", "episodes", "blocked ticks"),
                [
                    (f"p{lane[0]}/s{lane[1]}", b["episodes"], b["blocked_ticks"])
                    for lane, b in ranked
                ],
            )
        )
    else:
        parts.append("  (no blocking observed)")

    if summary["drops"]:
        parts.append("")
        parts.append("Drops by reason")
        parts.append(
            _table(
                ("reason", "count"),
                sorted(
                    summary["drops"].items(),
                    key=lambda kv: kv[1],
                    reverse=True,
                ),
            )
        )

    parts.append("")
    parts.append(f"Per-flow timelines (first {max_flows} flows)")
    pkt_events = summary["pkt_events"]
    for flow, pkts in list(summary["flows"].items())[:max_flows]:
        parts.append(f"  flow {flow}:")
        for pkt in pkts[:4]:
            timeline = " -> ".join(_brief(e) for e in pkt_events[pkt])
            parts.append(f"    pkt {pkt}: {timeline}")
        if len(pkts) > 4:
            parts.append(f"    ... {len(pkts) - 4} more packets")
    return "\n".join(parts)


def render_epoch_section(profiler: Dict) -> str:
    """Render the per-epoch section ``trace-summary`` appends when a
    trace header carries a ``profiler`` block (vector-engine runs save
    one via ``run --engine vector --profile --trace``).

    Shows the epoch boundaries Phase A resolved with each boundary's
    remap outcome, the Phase A / Phase B / reconstruction wall-clock
    split, the per-stage kernel tier that serviced each stateful stage,
    and the epoch-pool gauges. Raises :class:`ValueError` on a
    malformed block so the CLI can exit 2 with a one-line diagnostic,
    matching the empty/truncated-trace handling.
    """
    if not isinstance(profiler, dict):
        raise ValueError("profiler block must be a JSON object")
    spans = profiler.get("spans", {})
    kernels = profiler.get("kernels", {})
    pool = profiler.get("pool", {})
    epochs = profiler.get("epochs", [])
    if not isinstance(spans, dict) or not all(
        isinstance(v, (int, float)) for v in spans.values()
    ):
        raise ValueError("profiler 'spans' must map section -> seconds")
    if not isinstance(kernels, dict) or not all(
        isinstance(v, dict) for v in kernels.values()
    ):
        raise ValueError("profiler 'kernels' must map stage -> entry")
    if not isinstance(pool, dict):
        raise ValueError("profiler 'pool' must be a JSON object")
    if not isinstance(epochs, list) or not all(
        isinstance(e, dict) and "start" in e and "end" in e for e in epochs
    ):
        raise ValueError("profiler 'epochs' must list {start, end} spans")

    parts: List[str] = [f"Vector epochs ({len(epochs)} resolved)"]
    if epochs:
        parts.append(
            _table(
                ("epoch", "span", "ticks", "remap moves"),
                [
                    (
                        e.get("epoch", i),
                        f"[{e['start']}, {e['end']})",
                        e["end"] - e["start"],
                        e.get("remap_moves", "-"),
                    )
                    for i, e in enumerate(epochs)
                ],
            )
        )
    else:
        parts.append("  (no epochs recorded)")
    if spans:
        total = sum(spans.values()) or 1.0
        parts.append("")
        parts.append("Phase split")
        parts.append(
            _table(
                ("section", "seconds", "share"),
                [
                    (name, f"{seconds:.4f}", f"{100 * seconds / total:5.1f}%")
                    for name, seconds in sorted(
                        spans.items(), key=lambda kv: kv[1], reverse=True
                    )
                ],
            )
        )
    if kernels:
        parts.append("")
        parts.append("Service kernel tiers")
        parts.append(
            _table(
                ("stage", "tier", "calls", "seconds"),
                [
                    (
                        stage,
                        entry.get("tier", "?"),
                        entry.get("calls", 0),
                        f"{entry.get('seconds', 0.0):.4f}",
                    )
                    for stage, entry in sorted(kernels.items())
                ],
            )
        )
    if pool:
        parts.append("")
        parts.append(
            "Epoch pool: "
            + " ".join(f"{key}={pool[key]}" for key in sorted(pool))
        )
    return "\n".join(parts)


def render_alerts_section(
    header: Dict, alerts: Sequence, max_alerts: int = 10
) -> str:
    """Render a saved alert log (see :class:`repro.obs.alerts.AlertLog`)
    as the ``Alerts`` section ``trace-summary --alerts`` appends."""
    verdict = header.get("verdict", "?")
    parts: List[str] = [
        f"Alerts ({len(alerts)} recorded, verdict: {verdict})"
    ]
    by_severity: Dict[str, int] = {}
    for alert in alerts:
        by_severity[alert.severity] = by_severity.get(alert.severity, 0) + 1
    if not alerts:
        parts.append("  (none)")
        return "\n".join(parts)
    parts.append(
        "  "
        + " ".join(
            f"{severity}={count}"
            for severity, count in sorted(by_severity.items())
        )
    )
    parts.append(
        _table(
            ("tick", "severity", "kind", "message"),
            [
                (alert.tick, alert.severity, alert.kind, alert.message)
                for alert in alerts[:max_alerts]
            ],
        )
    )
    if len(alerts) > max_alerts:
        parts.append(f"  ... {len(alerts) - max_alerts} more")
    return "\n".join(parts)
