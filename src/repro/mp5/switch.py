"""The MP5 multi-pipeline switch simulator (§3.2–§3.4).

Architecture per Figure 4: *k* identical feed-forward pipelines, a
crossbar between consecutive stages (D3), a physically separate phantom
channel (D4), and per-stage groups of k FIFOs. Every pipeline runs the
same compiled program (D1); register indexes are dynamically sharded
across pipelines (D2) under the Figure 6 heuristic.

Time model: one tick = one pipeline clock. Each pipeline starts at most
one packet per tick, so aggregate capacity is k packets/tick — the line
rate for minimum-size packets. Within a tick the engine:

1. delivers phantom packets scheduled for this tick;
2. injects arrivals (uniform spray across pipelines), executing the
   address-resolution stage: indexes/guards are evaluated preemptively,
   accesses planned, destination pipelines looked up in the
   index-to-pipeline map, phantoms emitted (in arrival order, preserving
   runtime Invariant 1);
3. moves every in-flight packet one hop: egress from the last stage,
   *insert* into the destination FIFO when the next stage holds one of
   the packet's planned accesses (steering across the crossbar), or a
   linear through-move otherwise — through (stateless-at-that-stage)
   packets take priority over queued stateful packets, which preserves
   runtime Invariant 2;
4. pops from each stateful stage whose service slot is free — a phantom
   at the logical FIFO head blocks the pop (order enforcement);
5. services every newly occupied slot (executes the stage's atom);
6. every ``remap_period`` ticks, runs the dynamic sharding remap and
   resets the access counters.

Fast path
---------

The engine tracks in-flight packets *sparsely*: ``_seated`` lists the
occupied (pipeline, stage) slots, so the movement and service phases are
O(live packets) instead of O(k × depth) dense slot scans. Movement
mutates the occupancy grid in place (per pipeline, higher stages first,
so a through-move never lands on a slot that has not vacated yet) —
no per-tick grid allocation. Queue-depth telemetry reads the FIFOs'
incrementally maintained counters (O(1) per FIFO per tick) instead of
sweeping every slot. These are pure engineering optimizations: the
dense executable specification lives in :mod:`repro.mp5.reference` and
``tests/test_fastpath_equivalence.py`` asserts tick-for-tick identical
statistics and register state between the two.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from ..compiler.codegen import CompiledProgram
from ..compiler.jit import compile_operand_reader
from ..compiler.tac import TacEvaluator
from ..domino.builtins import hash2
from ..errors import ConfigError
from .config import MP5Config
from .crossbar import CrossbarTelemetry
from .fifo import IdealOrderBuffer, StageFifoGroup
from .packet import DataPacket, PhantomPacket, StateAccess
from .sharding import ShardingRuntime
from .stats import SwitchStats

FLOW_ORDER_ARRAY = "__flow_order__"

TraceEntry = Union[DataPacket, Tuple[float, int, Dict[str, int]]]


class MP5Switch:
    """Simulates one MP5 switch running one compiled program.

    The cycle-level model of §3: k identical feed-forward pipelines
    (D1), crossbar steering between consecutive stages (D3), register
    state dynamically sharded across pipelines via the index-to-pipeline
    map (D2), and phantom packets queued in per-stage k-FIFO groups to
    enforce per-state arrival-order access — correctness condition C1
    (D4). This class is the *fast sparse* engine; its optimizations are
    differentially tested against :class:`~repro.mp5.reference.ReferenceSwitch`,
    the dense executable specification. A fault schedule
    (:mod:`repro.faults`) may be attached before the first tick to
    exercise the degradation paths.

    One instance simulates exactly one trace — register state and
    statistics are cumulative, so ``run`` refuses a second call; use
    :func:`run_mp5` to get a fresh switch per run.
    """

    def __init__(self, program: CompiledProgram, config: Optional[MP5Config] = None):
        self.program = program
        self.config = config or MP5Config()
        cfg = self.config

        self.depth = max(cfg.pipeline_depth, program.stage_count)
        self.registers: Dict[str, List[int]] = program.make_register_store()

        plans = program.arrays_in_stage_order()
        shard_specs = [(p.name, p.size, p.shardable, p.pin_key) for p in plans]
        self._flow_order_stage: Optional[int] = None
        if cfg.flow_order_field is not None:
            if program.stage_count >= self.depth:
                raise ConfigError(
                    "flow ordering needs a free final stage; increase "
                    "pipeline_depth beyond the program's stage count"
                )
            self._flow_order_stage = self.depth - 1
            shard_specs.append(
                (FLOW_ORDER_ARRAY, cfg.flow_order_size, True, FLOW_ORDER_ARRAY)
            )
            self.registers[FLOW_ORDER_ARRAY] = [0] * cfg.flow_order_size

        self.sharder = ShardingRuntime(
            shard_specs,
            cfg.num_pipelines,
            initial=cfg.initial_shard,
            rng=np.random.default_rng(cfg.seed),
        )

        if cfg.phantom_latency and plans:
            max_latency = min(p.stage for p in plans) - 1
            if cfg.phantom_latency > max_latency:
                raise ConfigError(
                    f"phantom_latency {cfg.phantom_latency} exceeds the slack "
                    f"before the first stateful stage ({max_latency}); phantoms "
                    f"would lose the race against their data packets"
                )

        # Stateful stage locations: per (pipeline, stage) a FIFO group.
        stateful_stages = {p.stage for p in plans}
        if self._flow_order_stage is not None:
            stateful_stages.add(self._flow_order_stage)
        buffer_cls = IdealOrderBuffer if cfg.ideal_queues else StageFifoGroup
        self.fifos: Dict[Tuple[int, int], object] = {
            (pipe, stage): buffer_cls(cfg.num_pipelines, cfg.fifo_capacity)
            for pipe in range(cfg.num_pipelines)
            for stage in stateful_stages
        }
        self.stateful_stages = stateful_stages

        # Per-pipeline service slots (None or the packet serviced this tick).
        self.occ: List[List[Optional[DataPacket]]] = [
            [None] * self.depth for _ in range(cfg.num_pipelines)
        ]
        # Prebound (fifo, occupancy row, stage, key) tuples for the pop
        # and telemetry phases: occupancy rows are mutated in place and
        # never replaced, so binding them once per run is safe.
        self._fifo_scan = [
            (fifo, self.occ[key[0]], key[1], key)
            for key, fifo in self.fifos.items()
        ]
        # Dense [pipe][stage] view of the same FIFOs so the movement and
        # phantom-delivery hot paths index two lists instead of hashing a
        # tuple key per move.
        self._fifo_grid: List[List[Optional[object]]] = [
            [None] * self.depth for _ in range(cfg.num_pipelines)
        ]
        for (pipe, stage), fifo in self.fifos.items():
            self._fifo_grid[pipe][stage] = fifo
        self._phantom_mail: Dict[int, List[Tuple[PhantomPacket, int]]] = {}
        self._fault_rng = (
            np.random.default_rng(cfg.seed + 0x5EED)
            if cfg.phantom_loss_rate > 0
            else None
        )
        self._spray_next = 0
        self.crossbar = (
            CrossbarTelemetry(cfg.num_pipelines) if cfg.record_crossbar else None
        )
        self.stats = SwitchStats()
        self.tick = 0
        self._live = 0  # packets injected and not yet egressed/dropped
        self._idle_teleports = 0  # idle stretches compressed by run()
        self._ran = False
        self._record_access_order = False
        # Streaming-run state (start()/feed()/pump()/finish()). run() is
        # a thin wrapper over these; the long-lived service drives them
        # directly to pause/resume between arrival batches.
        self._pending: Optional[Deque[DataPacket]] = None
        self._feed_seq = 0  # next arrival-ordered pkt_id to assign
        self._last_feed_key: Optional[Tuple[float, int]] = None
        self._max_ticks: Optional[int] = None
        self._idle_ok = False
        self._finished = False
        # Observability sinks (repro.obs). All default to None and every
        # hot-path hook hides behind a single attribute check, so a run
        # with nothing attached executes the same code it always did.
        self.obs = None  # event sink (recorder/monitor, possibly teed)
        self._recorder = None  # TraceRecorder (duck-typed emitters)
        self._monitor = None  # InvariantMonitor, checked per tick
        self._metrics = None  # MetricsRegistry, polled per window
        self._metrics_latency = None  # latency histogram shortcut
        self._profiler = None  # PhaseProfiler around _step's phases
        # Fault injector (repro.faults), gated like the obs sinks: None
        # keeps every hot path on its fault-free code.
        self._faults = None

        # Plans grouped by stage for resolution-time access planning.
        self._plans_by_stage: List[Tuple[int, List]] = []
        by_stage: Dict[int, List] = {}
        for plan in plans:
            by_stage.setdefault(plan.stage, []).append(plan)
        self._plans_by_stage = sorted(by_stage.items())

        self._stage_instrs = [
            stage.instrs if idx < program.stage_count else []
            for idx, stage in enumerate(program.stages)
        ] + [[] for _ in range(self.depth - program.stage_count)]
        if cfg.jit:
            compiled = program.jit_stage_functions()
            self._stage_fns = list(compiled) + [None] * (
                self.depth - len(compiled)
            )
        else:
            self._stage_fns = None

        # Fast-path state. ``_seated`` holds the occupied (pipe, stage)
        # slots with stage >= 1, sorted; ``_per_pipe`` is a reusable
        # per-pipeline worklist buffer for the movement phase. The
        # resolution plan compiles each stage group's guard/index operand
        # readers once (see jit.compile_operand_reader) so injection
        # builds no closures per packet.
        self._seated: List[Tuple[int, int]] = []
        self._per_pipe: List[List[int]] = [[] for _ in range(cfg.num_pipelines)]
        self._accessed_arrays: List[str] = []
        self._service_pkt_id = -1
        self._logger = self._log_access
        # Stages whose service actually executes something. A through-
        # moved packet by construction has no pending access at its seat
        # (movement queues it into a FIFO otherwise), so servicing it at
        # an instruction-free stage is a provable no-op and is skipped.
        self._stage_live = [bool(instrs) for instrs in self._stage_instrs]
        # First stage T such that every stage in [T, depth) is neither
        # stateful (no FIFO, so no pops, drops or ECN there) nor executes
        # instructions. A packet through-moving into this tail can only
        # advance one stage per tick until it egresses, so its egress
        # tick is fully determined on entry; movement schedules the
        # egress directly instead of stepping the packet through
        # depth - T no-op hops. Disabled while crossbar telemetry is on
        # (it records every per-hop move).
        tail = self.depth
        while (
            tail > 1
            and (tail - 1) not in stateful_stages
            and not self._stage_live[tail - 1]
        ):
            tail -= 1
        self._tail_start = tail
        self._egress_mail: Dict[int, List[DataPacket]] = {}
        env_by_name = cfg.jit
        # (stage, base_name, guard_read, index_read, size, conservative,
        #  access_label, is_multi)
        self._resolution_plans: List[Tuple] = []
        for stage, group in self._plans_by_stage:
            if len(group) == 1:
                plan = group[0]
                guard_read = (
                    compile_operand_reader(plan.guard_operand, env_by_name)
                    if plan.guard_operand is not None and plan.guard_resolvable
                    else None
                )
                index_read = (
                    compile_operand_reader(plan.index_operand, env_by_name)
                    if plan.index_operand is not None and plan.shardable
                    else None
                )
                self._resolution_plans.append(
                    (
                        stage,
                        plan.name,
                        guard_read,
                        index_read,
                        plan.size,
                        plan.conservative_phantom,
                        plan.name,
                        False,
                    )
                )
            else:
                # Co-staged (fused or budget-pinned) arrays share one
                # pipeline; one stage-level access/phantom covers them.
                self._resolution_plans.append(
                    (
                        stage,
                        group[0].name,
                        None,
                        None,
                        0,
                        any(p.conservative_phantom for p in group),
                        "+".join(p.name for p in group),
                        True,
                    )
                )

        # The service-time access callback only has observable effects at
        # stages with a conservative single-array access (wasted-slot
        # accounting consults the accessed-array scratch list there) — or
        # everywhere when the caller asked to record the access order.
        # All other stages run their compiled function callback-free.
        self._stage_needs_log = [False] * self.depth
        for plan_tuple in self._resolution_plans:
            if plan_tuple[5] and not plan_tuple[7]:  # conservative, single
                self._stage_needs_log[plan_tuple[0]] = True
        self._stage_logger: List[Optional[object]] = [
            self._log_access if need else None for need in self._stage_needs_log
        ]
        # Specialized resolution plan for the common shape — every array
        # single-staged, shardable, guard-free — so injection runs a
        # tight 5-tuple loop; anything else falls back to the generic
        # 8-tuple loop.
        simple: Optional[List[Tuple]] = []
        for plan_tuple in self._resolution_plans:
            (stage, base, guard_read, index_read, size, conservative, _label,
             multi) = plan_tuple
            if multi or guard_read is not None or index_read is None:
                simple = None
                break
            simple.append((stage, base, index_read, size, conservative))
        self._simple_plans = simple

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def attach_observability(
        self, recorder=None, metrics=None, profiler=None, monitor=None
    ) -> None:
        """Attach observability sinks (see :mod:`repro.obs`) to this run.

        ``recorder`` receives per-packet lifecycle events, ``metrics``
        is a registry polled at window boundaries for time series,
        ``profiler`` times the phases of every tick, and ``monitor`` is
        an :class:`~repro.obs.monitor.InvariantMonitor` checking
        invariants online (it consumes the same event stream as the
        recorder; with both attached the stream is teed). Must be
        called before :meth:`run`; any subset may be attached.
        """
        if self._ran:
            raise ConfigError(
                "attach_observability must be called before run(): the "
                "instrumentation hooks are bound at tick time"
            )
        if recorder is not None:
            self._recorder = recorder
        if profiler is not None:
            self._profiler = profiler
        if metrics is not None:
            self._metrics = metrics
            self._register_metric_sources(metrics)
        if monitor is not None:
            self._monitor = monitor
            monitor.bind(self)
        if self._recorder is not None and self._monitor is not None:
            from ..obs.monitor import TeeEmitter

            self.obs = TeeEmitter(self._recorder, self._monitor)
        else:
            # Explicit None test: an empty TraceRecorder is falsy (len 0).
            self.obs = (
                self._recorder if self._recorder is not None else self._monitor
            )

    def attach_faults(self, schedule) -> None:
        """Attach a :class:`repro.faults.FaultSchedule` to this run.

        Builds the per-run :class:`~repro.faults.FaultInjector`; like
        :meth:`attach_observability` this must happen before
        :meth:`run`. An empty schedule is accepted and leaves the
        engine on its fault-free paths (``self._faults`` stays None),
        so attaching one is byte-identical to not attaching at all.
        """
        if self._ran:
            raise ConfigError(
                "attach_faults must be called before run(): fault windows "
                "are applied at tick boundaries from the start of the run"
            )
        if schedule is None or schedule.empty:
            return
        from ..faults.injector import FaultInjector

        self._faults = FaultInjector(schedule, self.config.num_pipelines)

    def _register_metric_sources(self, metrics, latency: bool = True) -> None:
        """Publish the switch's components into the registry as pull
        samplers: their existing cumulative counters are read once per
        window, so publishing adds no per-packet cost. ``latency=False``
        registers everything except the per-egress latency histogram
        (used by the monitor's private registry, which must not steal
        the hot-path histogram shortcut from an attached registry)."""
        stats = self.stats
        for name in (
            "egressed",
            "dropped",
            "steering_moves",
            "remap_moves",
            "phantoms_generated",
            "phantoms_lost",
            "ecn_marked",
            "wasted_slots",
        ):
            metrics.add_sampler(
                name, (lambda s=stats, n=name: getattr(s, n)), cumulative=True
            )
        fifos = list(self.fifos.values())
        metrics.add_sampler(
            "queue_depth_max",
            lambda: max((f.data_occupancy() for f in fifos), default=0),
        )
        metrics.add_sampler(
            "queue_depth_total",
            lambda: sum(f.data_occupancy() for f in fifos),
        )
        metrics.add_sampler(
            "fifo_drops_full",
            lambda: sum(f.drops_full for f in fifos),
            cumulative=True,
        )
        metrics.add_sampler(
            "fifo_drops_no_phantom",
            lambda: sum(f.drops_no_phantom for f in fifos),
            cumulative=True,
        )
        for (pipe, stage), fifo in self.fifos.items():
            metrics.add_sampler(
                f"queue_depth.p{pipe}.s{stage}",
                (lambda f=fifo: f.data_occupancy()),
            )
        metrics.add_sampler(
            "sharder_moves", self.sharder.total_moves, cumulative=True
        )
        if self.crossbar is not None:
            metrics.add_sampler(
                "crossbar_crossings",
                lambda: self.crossbar.total_crossings,
                cumulative=True,
            )
        if latency:
            self._metrics_latency = metrics.histogram("latency")

    def run(
        self,
        trace: Iterable[TraceEntry],
        max_ticks: Optional[int] = None,
        record_access_order: bool = False,
    ) -> SwitchStats:
        """Drive a packet trace to completion and return run statistics.

        ``trace`` entries are :class:`DataPacket` objects or
        ``(arrival_tick, port, headers)`` tuples. Arrival ticks are in
        MP5 pipeline clocks; at minimum packet size the line rate is
        ``num_pipelines`` packets per tick.

        Equivalent to ``start(); feed(trace); pump(); finish()`` — the
        streaming primitives the long-lived service drives directly.
        """
        self.start(max_ticks=max_ticks, record_access_order=record_access_order)
        self.feed(trace)
        self.pump()
        return self.finish()

    # ------------------------------------------------------------------
    # Streaming run loop: start / feed / pump / finish
    # ------------------------------------------------------------------

    def start(
        self,
        max_ticks: Optional[int] = None,
        record_access_order: bool = False,
    ) -> None:
        """Begin a streaming run.

        After ``start()`` the switch accepts arrival batches through
        :meth:`feed` and advances through :meth:`pump`; :meth:`finish`
        closes the run and returns the stats. Observability sinks and
        fault schedules must already be attached — ``start`` freezes the
        instrumentation set exactly like ``run`` did.
        """
        if self._ran:
            raise ConfigError(
                "MP5Switch.run was called twice on one instance; tick, "
                "statistics and FIFO state are not reusable — construct a "
                "fresh switch per run"
            )
        self._ran = True
        self._record_access_order = record_access_order
        self._logger = (
            self._log_access_ordered if record_access_order else self._log_access
        )
        if record_access_order:
            self._stage_logger = [self._logger] * self.depth
        else:
            self._stage_logger = [
                self._logger if need else None for need in self._stage_needs_log
            ]
        self._pending = deque()
        self._feed_seq = 0
        self._last_feed_key = None
        self._max_ticks = max_ticks
        # Idle-tick compression: when no stage holds live work and the
        # next arrival is known, the intervening ticks are no-ops — jump
        # the tick counter instead of stepping them (generalizes the
        # tail teleport). Engaged only when nothing can observe the
        # skipped ticks: faults, the monitor, metrics windows, and the
        # profiler all see every tick, so any of them disables it.
        # Remap boundary ticks always execute — leftover access counters
        # can move indices on an otherwise idle tick.
        self._idle_ok = (
            self.config.idle_compression
            and self._faults is None
            and self._monitor is None
            and self._metrics is None
            and self._profiler is None
        )
        self._all_fifos = list(self.fifos.values())

    def feed(self, entries: Iterable[TraceEntry]) -> int:
        """Append a batch of arrivals to the pending queue.

        Entries follow the :meth:`run` trace format. Each batch is
        sorted internally, but batches must be monotone across calls:
        the earliest ``(arrival, port)`` of a batch may not precede the
        last packet already fed — packet ids are assigned in arrival
        order at feed time (the C1 reference order) and cannot be
        renumbered retroactively. Returns the number of packets added.
        """
        if self._pending is None or self._finished:
            raise ConfigError("feed() requires start() and precedes finish()")
        packets = [self._coerce(i, entry) for i, entry in enumerate(entries)]
        if not packets:
            return 0
        packets.sort(key=lambda p: (p.arrival, p.port, p.pkt_id))
        head = (packets[0].arrival, packets[0].port)
        if self._last_feed_key is not None and head < self._last_feed_key:
            raise ConfigError(
                "feed() batches must be monotone in (arrival, port): batch "
                f"starts at {head} but {self._last_feed_key} was already fed"
            )
        for pkt in packets:
            pkt.pkt_id = self._feed_seq  # arrival-ordered ids (C1 order)
            self._feed_seq += 1
        self._last_feed_key = (packets[-1].arrival, packets[-1].port)
        self.stats.offered += len(packets)
        self.stats.arrival_ticks.extend(p.arrival for p in packets)
        self._pending.extend(packets)
        return len(packets)

    def pump(
        self,
        max_steps: Optional[int] = None,
        until_tick: Optional[int] = None,
    ) -> int:
        """Advance the switch while it has work; returns steps executed.

        ``until_tick`` stops before executing that tick (exclusive upper
        bound) — the service gates on :attr:`ingest_watermark` so a tick
        only executes once no future :meth:`feed` can still deliver an
        arrival for it. ``max_steps`` bounds the loop (idle teleports
        count as one step) so a caller can interleave pumping with other
        work. With neither bound, pumps until fully drained.
        """
        if self._pending is None:
            raise ConfigError("pump() requires start()")
        pending = self._pending
        idle_ok = self._idle_ok
        max_ticks = self._max_ticks
        period = self.config.remap_period
        remap_on = self.config.remap_algorithm != "none"
        all_fifos = self._all_fifos
        steps = 0
        while pending or self._live > 0:
            if max_ticks is not None and self.tick >= max_ticks:
                break
            if until_tick is not None and self.tick >= until_tick:
                break
            if max_steps is not None and steps >= max_steps:
                break
            steps += 1
            if (
                idle_ok
                and self._live == 0
                and pending
                and not self._phantom_mail
                and not self._egress_mail
                and not (remap_on and self.tick > 0 and self.tick % period == 0)
                # Stale phantoms of dropped packets keep draining on
                # otherwise idle ticks — only truly empty queues skip.
                and all(f._total == 0 for f in all_fifos)
            ):
                arrival = pending[0].arrival
                target = int(arrival) if arrival == int(arrival) else int(arrival) + 1
                if remap_on:
                    boundary = (self.tick // period + 1) * period
                    if boundary < target:
                        target = boundary
                if max_ticks is not None and max_ticks < target:
                    target = max_ticks
                if until_tick is not None and until_tick < target:
                    target = until_tick
                if target > self.tick:
                    self.tick = target
                    self._idle_teleports += 1
                    continue
            self._step(pending)
        return steps

    def finish(self) -> SwitchStats:
        """Close a streaming run: final metrics roll, monitor end-of-run
        checks, and the tick count. Returns the run statistics."""
        if self._pending is None:
            raise ConfigError("finish() requires start()")
        if self._finished:
            raise ConfigError("finish() was already called on this switch")
        self._finished = True
        if self._metrics is not None:
            self._metrics.roll(self.tick)  # close the final partial window
        if self._monitor is not None:
            self._monitor.end_run(
                self.tick, self, drained=not self._pending and self._live == 0
            )
        self.stats.ticks = self.tick
        return self.stats

    @property
    def has_work(self) -> bool:
        """True while arrivals are pending or packets are in flight."""
        return bool(self._pending) or self._live > 0

    @property
    def ingest_watermark(self) -> int:
        """Smallest integer tick ≥ the last fed arrival.

        Ticks strictly below the watermark can never receive an arrival
        from a future (monotone) :meth:`feed` call, so
        ``pump(until_tick=switch.ingest_watermark)`` executes exactly
        the ticks whose inputs are already complete — the property that
        makes a served run byte-identical to an offline one regardless
        of how arrivals were batched.
        """
        if self._last_feed_key is None:
            return 0
        arrival = self._last_feed_key[0]
        return int(arrival) if arrival == int(arrival) else int(arrival) + 1

    def work_available(self, drain: bool) -> bool:
        """True iff a :meth:`pump` call would make progress right now —
        the serving loop's scheduling probe, uniform across engines.
        Mid-stream (``drain=False``) progress additionally requires the
        tick cursor to sit below the ingest watermark, since serving
        pumps with ``until_tick=ingest_watermark``."""
        if self._pending is None or self._finished:
            return False
        if not self.has_work:
            return False
        return drain or self.tick < self.ingest_watermark

    # ------------------------------------------------------------------
    # One tick
    # ------------------------------------------------------------------

    def _step(self, pending: Deque[DataPacket]) -> None:
        cfg = self.config
        tick = self.tick
        occ = self.occ
        stats = self.stats
        obs = self.obs
        prof = self._profiler
        # (0) Fault windows open/close and due emergency remaps run at
        # the tick boundary, before any packet moves — the state the
        # injector sees is the end of the previous tick, identical in
        # both engines.
        faults = self._faults
        if faults is not None:
            faults.begin_tick(tick, self)
            stalled = faults.stalled
            xfail = faults.crossbar_failed
        else:
            stalled = None
            xfail = None
        if prof is not None:
            prof.begin()

        # (1) Phantom deliveries scheduled for this tick.
        mail = self._phantom_mail.pop(tick, None)
        if mail:
            for phantom, fifo_id in mail:
                self._deliver_phantom(phantom, fifo_id)
        if prof is not None:
            prof.lap("phantom_delivery")

        # (2) Injections: spray arrivals across pipelines. Packets enter
        # strictly in arrival order (ties broken by port id, §2.2.1) so
        # that phantom generation order equals arrival order — the
        # property Invariant 1 turns into per-state FIFO order.
        per_pipe = self._per_pipe
        for stages in per_pipe:
            stages.clear()
        injected = 0
        affinity = cfg.spray_policy == "affinity"
        while (
            pending
            and pending[0].arrival <= tick
            and injected < cfg.num_pipelines
        ):
            pipe = (
                self._choose_entry_pipe(pending[0])
                if affinity
                else self._spray_next
            )
            # All stage-0 slots vacate every tick, but guard anyway.
            # A stalled pipeline (repro.faults) admits nothing at its
            # front, exactly like an occupied slot.
            probed = 0
            blocked = stalled is not None and pipe in stalled
            while (
                occ[pipe][0] is not None or blocked
            ) and probed < cfg.num_pipelines:
                pipe = (pipe + 1) % cfg.num_pipelines
                blocked = stalled is not None and pipe in stalled
                probed += 1
            if occ[pipe][0] is not None or blocked:
                break
            self._inject(pending.popleft(), pipe)
            self._spray_next = (pipe + 1) % cfg.num_pipelines
            injected += 1
            if occ[pipe][0] is not None:  # not dropped at injection
                per_pipe[pipe].append(0)
        if prof is not None:
            prof.lap("inject")

        # (3) Movement over the sparse worklist, in place on the
        # occupancy grid. Within a pipeline, higher stages move first so
        # a through-move never lands on a slot that has not vacated yet;
        # pipelines advance in ascending order, which preserves the
        # relative FIFO timestamp order of same-stage packets — the only
        # cross-packet ordering the movement phase can influence.
        for pipe, stage in self._seated:
            per_pipe[pipe].append(stage)  # stages >= 1, ascending
        last = self.depth - 1
        depth = self.depth
        crossbar = self.crossbar
        if crossbar is not None:
            crossbar.begin_tick()
        # Packets whose scheduled egress tick arrived. When the tail
        # fast path is active every egress goes through this mail, and
        # entries are enqueued in (tick, pipeline) order — exactly the
        # order the dense movement scan egresses them.
        ready = self._egress_mail.pop(tick, None)
        if ready:
            for pkt in ready:
                self._egress(pkt)
        # Tail teleport pre-schedules egress ticks, which a mid-flight
        # stall would falsify — with faults attached every packet steps
        # hop by hop (the fault-free equivalence of the two modes is
        # what the differential tests prove).
        tail_start = (
            self._tail_start if crossbar is None and faults is None else depth
        )
        egress_mail = self._egress_mail
        fifo_grid = self._fifo_grid
        enable_phantoms = cfg.enable_phantoms
        ecn = cfg.ecn_threshold
        through: List[Tuple[int, int]] = []
        frozen: Optional[List[Tuple[int, int]]] = None
        for pipe in range(cfg.num_pipelines):
            stages = per_pipe[pipe]
            if not stages:
                continue
            if stalled is not None and pipe in stalled:
                # The pipeline's packets freeze in place this tick: no
                # movement, no service. They stay seated (stage >= 1 —
                # injection at a stalled front is blocked above).
                if frozen is None:
                    frozen = []
                for stage in stages:
                    frozen.append((pipe, stage))
                continue
            row = occ[pipe]
            for i in range(len(stages) - 1, -1, -1):
                stage = stages[i]
                pkt = row[stage]
                row[stage] = None
                if stage == last:
                    self._egress(pkt)
                    continue
                nxt = stage + 1
                # Inline access_at_stage: the per-stage table always
                # exists once a packet is injected, and this lookup runs
                # once per in-flight packet per tick.
                access = pkt._by_stage.get(nxt)
                if access is None or access.completed:
                    if nxt >= tail_start:
                        # Instruction-free stateless tail: the packet
                        # egresses depth - nxt ticks from now, nothing
                        # can touch it in between.
                        when = tick + depth - nxt
                        lst = egress_mail.get(when)
                        if lst is None:
                            egress_mail[when] = [pkt]
                        else:
                            lst.append(pkt)
                        continue
                    if crossbar is not None:
                        crossbar.record(pipe, pipe, nxt)
                    row[nxt] = pkt
                    through.append((pipe, nxt))
                    continue
                dest = access.pipeline
                if xfail is not None and dest in xfail:
                    # The crossbar port into the destination pipeline is
                    # down (D3 failure): the steer never happens and the
                    # packet is lost — its phantom is expired by _drop.
                    self._drop(pkt, "crossbar_down")
                    continue
                if crossbar is not None:
                    crossbar.record(pipe, dest, nxt)
                if dest != pipe:
                    stats.steering_moves += 1
                if obs is not None:
                    obs.steer(tick, pkt.pkt_id, pipe, dest, nxt)
                fifo = fifo_grid[dest][nxt]
                if enable_phantoms:
                    if (
                        ecn is not None
                        and not pkt.ecn_marked
                        and fifo.data_occupancy() >= ecn
                    ):
                        # §3.4: mark packets once the queue crosses the
                        # threshold, giving senders early backpressure.
                        pkt.ecn_marked = True
                        stats.ecn_marked += 1
                        if obs is not None:
                            obs.ecn_mark(tick, pkt.pkt_id, dest, nxt)
                    if fifo.insert(pkt, tick):
                        if obs is not None:
                            obs.phantom_match(tick, pkt.pkt_id, dest, nxt)
                    else:
                        self._drop(pkt, "no_phantom")
                else:
                    if not fifo.push(pkt, pipe, tick):
                        self._drop(pkt, "fifo_full")

        if crossbar is not None:
            crossbar.end_tick()
        if prof is not None:
            prof.lap("move")

        # (4) Pops: fill free slots of stateful stages; through packets
        # keep priority unless a queued packet is starving.
        starvation = cfg.starvation_threshold
        preempted: Optional[set] = None
        popped: List[Tuple[int, int]] = []
        for fifo, row, stage, key in self._fifo_scan:
            if stalled is not None and key[0] in stalled:
                continue  # a stalled pipeline's stages do not pop
            slot = row[stage]
            if slot is not None:
                if starvation is not None:
                    age = fifo.head_data_age(tick)
                    if age is not None and age > starvation:
                        # Drop the stateless through packet in favor of the
                        # starving stateful one (§3.4) — stateless packets
                        # are dropped, never queued, so Invariant 2 holds.
                        self._drop(slot, "starvation_preemption")
                        stats.drops_starvation += 1
                        row[stage] = None
                        if preempted is None:
                            preempted = set()
                        preempted.add(key)
                    else:
                        continue
                else:
                    continue
            elif not fifo._total:
                continue
            pkt = fifo.pop()
            if pkt is not None:
                row[stage] = pkt
                popped.append(key)
                if obs is not None:
                    obs.fifo_pop(tick, pkt.pkt_id, key[0], key[1])
            elif obs is not None and fifo._data:
                # Data is queued but a phantom at the logical head blocks
                # the whole group (D4 head-of-line blocking).
                obs.fifo_block(tick, key[0], key[1])
        if prof is not None:
            prof.lap("pop")

        # (5) Service every newly occupied slot (stage 0 was serviced at
        # injection time — it runs the resolution logic), in (pipeline,
        # stage) order like the dense reference engine: within one tick
        # the service order is observable through the recorded state
        # access order.
        if preempted:
            through = [entry for entry in through if entry not in preempted]
        # Popped packets always need service (their access completes
        # here); through packets only at stages that execute instructions
        # — at instruction-free stages their service is a provable no-op
        # (no pending access by movement construction), so skipping it
        # leaves the serviced order and all observable effects unchanged.
        live = self._stage_live
        need = [entry for entry in through if live[entry[1]]]
        need.extend(popped)
        need.sort()
        for pipe, stage in need:
            self._service(occ[pipe][stage], stage, pipe)
        through.extend(popped)
        if frozen is not None:
            # Frozen packets were neither moved nor re-serviced; they
            # re-enter the worklist where they stand.
            through.extend(frozen)
        through.sort()
        self._seated = through
        if prof is not None:
            prof.lap("service")

        # (6) Background dynamic sharding.
        if (
            cfg.remap_algorithm != "none"
            and tick
            and tick % cfg.remap_period == 0
        ):
            moved = self.sharder.end_epoch(cfg.remap_algorithm)
            stats.remap_moves += moved
            if obs is not None:
                obs.remap(tick, moved)
        if prof is not None:
            prof.lap("remap")

        # Queue-depth telemetry (data packets only, matching §4.4's
        # "maximum number of packets queued in any pipeline stage"),
        # sampled at the tick boundary from the FIFOs' incremental
        # counters — no per-slot sweep.
        max_depth = stats.max_queue_depth
        peaks = stats.per_stage_peak_queue
        for fifo, _row, _stage, key in self._fifo_scan:
            queued = fifo._data
            if queued:
                if queued > max_depth:
                    max_depth = queued
                if queued > peaks.get(key, 0):
                    peaks[key] = queued
        stats.max_queue_depth = max_depth

        metrics = self._metrics
        if metrics is not None:
            metrics.maybe_roll(tick)
        monitor = self._monitor
        if monitor is not None:
            monitor.end_tick(tick, self)
        if prof is not None:
            prof.lap("telemetry")
            prof.end_tick()

        self.tick += 1

    # ------------------------------------------------------------------
    # Packet lifecycle
    # ------------------------------------------------------------------

    def _coerce(self, i: int, entry: TraceEntry) -> DataPacket:
        if isinstance(entry, DataPacket):
            return entry
        arrival, port, headers = entry
        return DataPacket(pkt_id=i, arrival=arrival, port=port, headers=dict(headers))

    def _run_stage0(self, headers, registers, env) -> None:
        """Execute the stage-0 (address resolution) program against the
        given state; operand values land in ``env`` for the precompiled
        readers in ``_resolution_plans``."""
        if self._stage_fns is not None:
            fn = self._stage_fns[0]
            if fn is not None:
                fn(headers, registers, env, None)
        else:
            TacEvaluator(headers, registers, env).run(self._stage_instrs[0])

    def _choose_entry_pipe(self, pkt: DataPacket) -> int:
        """Entry pipeline per the spray policy (§3.1 D1 or the affinity
        extension). Affinity peeks at the resolution result: the ingress
        can evaluate the same stateless logic before the demux."""
        if self.config.spray_policy != "affinity":
            return self._spray_next
        env = dict(pkt.env)
        self._run_stage0(dict(pkt.headers), self.registers, env)
        for (
            _stage,
            base,
            guard_read,
            index_read,
            size,
            _conservative,
            _label,
            multi,
        ) in self._resolution_plans:
            if multi:
                index = None
            else:
                if guard_read is not None and not guard_read(env):
                    continue
                index = index_read(env) % size if index_read is not None else None
            return self.sharder.lookup(base, index)
        return self._spray_next

    def _inject(self, pkt: DataPacket, pipe: int) -> None:
        """Address-resolution stage: plan accesses, emit phantoms."""
        cfg = self.config
        pkt.entry_pipeline = pipe
        pkt.entry_tick = self.tick
        self.occ[pipe][0] = pkt
        self._live += 1

        env = pkt.env
        self._run_stage0(pkt.headers, self.registers, env)

        accesses: List[StateAccess] = []
        note_resolved = self.sharder.note_resolved
        add_access = accesses.append
        simple = self._simple_plans
        if simple is not None:
            for stage, base, index_read, size, conservative in simple:
                index = index_read(env) % size
                dest = note_resolved(base, index)
                add_access(StateAccess(base, stage, dest, index, conservative))
        else:
            for (
                stage,
                base,
                guard_read,
                index_read,
                size,
                conservative,
                label,
                multi,
            ) in self._resolution_plans:
                if multi:
                    index = None
                else:
                    if guard_read is not None and not guard_read(env):
                        continue  # resolved: this packet never touches it
                    index = (
                        index_read(env) % size if index_read is not None else None
                    )
                dest = note_resolved(base, index)
                add_access(StateAccess(label, stage, dest, index, conservative))
        if self._flow_order_stage is not None:
            flow_key = pkt.headers.get(cfg.flow_order_field, 0)
            if pkt.flow_id is None:
                pkt.flow_id = flow_key
            index = hash2(flow_key, 0x5F0E) % cfg.flow_order_size
            dest = self.sharder.note_resolved(FLOW_ORDER_ARRAY, index)
            accesses.append(
                StateAccess(
                    array=FLOW_ORDER_ARRAY,
                    stage=self._flow_order_stage,
                    pipeline=dest,
                    index=index,
                )
            )
        pkt.accesses = accesses
        pkt.index_accesses()
        obs = self.obs
        if obs is not None:
            obs.ingress(self.tick, pkt.pkt_id, pipe, pkt.port, pkt.flow_id)

        if cfg.enable_phantoms:
            tick = self.tick
            latency = cfg.phantom_latency
            stats = self.stats
            if latency == 0 and self._fault_rng is None and self._faults is None:
                # Fault-free immediate delivery (the common case),
                # _deliver_phantom inlined.
                fifo_grid = self._fifo_grid
                for access in accesses:
                    phantom = PhantomPacket(
                        pkt.pkt_id,
                        access.array,
                        access.index,
                        access.pipeline,
                        access.stage,
                        tick,
                    )
                    stats.phantoms_generated += 1
                    if obs is not None:
                        obs.phantom_emit(
                            tick,
                            pkt.pkt_id,
                            access.pipeline,
                            access.stage,
                            access.array,
                            access.index,
                        )
                    fifo = fifo_grid[access.pipeline][access.stage]
                    if not fifo.push(phantom, pipe, tick):
                        stats.drops_fifo_full += 1
                        self._drop(pkt, "phantom_fifo_full")
                        self.occ[pipe][0] = None
                        return
                return
            faults = self._faults
            for access in accesses:
                phantom = PhantomPacket(
                    pkt.pkt_id,
                    access.array,
                    access.index,
                    access.pipeline,
                    access.stage,
                    tick,
                )
                stats.phantoms_generated += 1
                if obs is not None:
                    obs.phantom_emit(
                        tick,
                        pkt.pkt_id,
                        access.pipeline,
                        access.stage,
                        access.array,
                        access.index,
                    )
                delay = latency
                if faults is not None:
                    lost, extra = faults.phantom_fault(
                        pkt.pkt_id, access.pipeline, access.stage
                    )
                    if lost:
                        # Scheduled phantom-channel loss: same recovery
                        # path as the §3.5.1 random loss — the data
                        # packet will find no placeholder and drop.
                        stats.phantoms_lost += 1
                        if obs is not None:
                            obs.phantom_loss(
                                tick,
                                pkt.pkt_id,
                                access.pipeline,
                                access.stage,
                                access.array,
                            )
                        continue
                    delay += extra
                if delay == 0:
                    if not self._deliver_phantom(phantom, pipe):
                        self._drop(pkt, "phantom_fifo_full")
                        self.occ[pipe][0] = None
                        return
                else:
                    self._phantom_mail.setdefault(tick + delay, []).append(
                        (phantom, pipe)
                    )

    def _deliver_phantom(self, phantom: PhantomPacket, fifo_id: int) -> bool:
        faults = self._faults
        if faults is not None and faults.is_cancelled(phantom.pkt_id):
            # The data packet already dropped while this phantom sat
            # delayed in the channel; the drop-time expire_phantom missed
            # it (it was not queued yet), so discard it here — pushing it
            # would block the FIFO head forever.
            return True
        if (
            self._fault_rng is not None
            and self._fault_rng.random() < self.config.phantom_loss_rate
        ):
            # Fault injection (§3.5.1): the phantom never arrives, so the
            # data packet will find no placeholder and be dropped — the
            # exact packet-loss mode whose equivalence consequences the
            # paper analyzes. Counted separately from FIFO overflow: the
            # queue had room, the channel lost the packet.
            self.stats.phantoms_lost += 1
            if self.obs is not None:
                self.obs.phantom_loss(
                    self.tick,
                    phantom.pkt_id,
                    phantom.pipeline,
                    phantom.stage,
                    phantom.array,
                )
            return True  # generation succeeded; the channel lost it
        fifo = self._fifo_grid[phantom.pipeline][phantom.stage]
        if (
            faults is not None
            and phantom.created_tick < self.tick
            and fifo.stale_phantom(phantom.pkt_id)
        ):
            # Fault-delayed delivery behind a younger packet's phantom:
            # queueing it now would invert the per-state service order
            # among survivors (C1), so the channel counts it lost — the
            # data packet recovers via the no_phantom drop path.
            self.stats.phantoms_lost += 1
            if self.obs is not None:
                self.obs.phantom_loss(
                    self.tick,
                    phantom.pkt_id,
                    phantom.pipeline,
                    phantom.stage,
                    phantom.array,
                )
            return True
        ok = fifo.push(phantom, fifo_id, self.tick)
        if not ok:
            self.stats.drops_fifo_full += 1
        return ok

    # ------------------------------------------------------------------
    # Service-time access logging (bound methods, not per-packet
    # closures: the engine services every live packet every tick, so the
    # logger must be allocation-free).
    # ------------------------------------------------------------------

    def _log_access(self, reg, idx, kind) -> None:
        self._accessed_arrays.append(reg)

    def _log_access_ordered(self, reg, idx, kind) -> None:
        self._accessed_arrays.append(reg)
        order = self.stats.access_order.setdefault((reg, idx), [])
        pid = self._service_pkt_id
        if not order or order[-1] != pid:
            order.append(pid)

    def _service(self, pkt: DataPacket, stage: int, pipe: int = -1) -> None:
        """Execute stage ``stage`` for ``pkt`` (it occupies the slot now)."""
        instrs = self._stage_instrs[stage]
        if instrs:
            if self.obs is not None:
                self.obs.service(self.tick, pkt.pkt_id, pipe, stage)
            logger = self._stage_logger[stage]
            if logger is not None:
                self._accessed_arrays.clear()
                self._service_pkt_id = pkt.pkt_id
            if self._stage_fns is not None:
                fn = self._stage_fns[stage]
                if fn is not None:
                    fn(pkt.headers, self.registers, pkt.env, logger)
            else:
                evaluator = TacEvaluator(
                    pkt.headers, self.registers, pkt.env, on_access=logger
                )
                evaluator.run(instrs)

        # Inline access_at_stage; the linear fallback only triggers for
        # packets whose access table was never frozen (reference engine).
        table = pkt._by_stage
        if table is not None:
            access = table.get(stage)
            if access is not None and access.completed:
                access = None
        else:
            access = pkt.access_at_stage(stage)
        if access is not None:
            access.completed = True
            array = access.array
            if array != FLOW_ORDER_ARRAY and "+" not in array:
                self.sharder.note_completed(array, access.index)
                # A conservative access always has the stage logger wired
                # up (see _stage_needs_log), so the scratch list reflects
                # exactly this service call's register accesses.
                if access.conservative and (
                    not instrs or array not in self._accessed_arrays
                ):
                    # The preemptively generated phantom was for a branch
                    # not taken: one wasted slot (§3.3).
                    self.stats.wasted_slots += 1

    def _egress(self, pkt: DataPacket) -> None:
        pkt.egress_tick = self.tick
        self._live -= 1
        self.stats.egressed += 1
        self.stats.egress_ticks.append(self.tick)
        latency = self.tick - pkt.arrival
        self.stats.latencies.append(latency)
        if self.obs is not None:
            self.obs.egress(self.tick, pkt.pkt_id, latency)
        if self._metrics_latency is not None:
            self._metrics_latency.observe(latency)
        if pkt.flow_id is not None:
            self.stats.flow_egress.setdefault(pkt.flow_id, []).append(pkt.pkt_id)

    def _drop(self, pkt: DataPacket, reason: str) -> None:
        pkt.dropped = True
        pkt.drop_reason = reason
        self._live -= 1
        self.stats.dropped += 1
        if self.obs is not None:
            self.obs.drop(self.tick, pkt.pkt_id, reason)
        if reason == "no_phantom":
            self.stats.drops_no_phantom += 1
        elif reason == "crossbar_down":
            self.stats.drops_crossbar += 1
        reasons = self.stats.drops_by_reason
        reasons[reason] = reasons.get(reason, 0) + 1
        if self._faults is not None:
            self._faults.note_dropped(pkt.pkt_id)
        # Retire this packet's outstanding phantoms so they stop blocking
        # their FIFOs, and release the in-flight counters.
        for access in pkt.accesses:
            if access.completed:
                continue
            access.completed = True
            fifo = self.fifos.get((access.pipeline, access.stage))
            if fifo is not None:
                fifo.expire_phantom(pkt.pkt_id)
            if access.array != FLOW_ORDER_ARRAY and "+" not in access.array:
                self.sharder.note_completed(access.array, access.index)


def run_mp5(
    program: CompiledProgram,
    trace: Iterable[TraceEntry],
    config: Optional[MP5Config] = None,
    max_ticks: Optional[int] = None,
    record_access_order: bool = False,
    recorder=None,
    metrics=None,
    profiler=None,
    faults=None,
    monitor=None,
    native=None,
    epoch_jobs=None,
) -> Tuple[SwitchStats, Dict[str, List[int]]]:
    """Convenience: run a trace through a fresh switch; returns the run
    statistics and the final register state. ``recorder``, ``metrics``,
    ``profiler`` and ``monitor`` are optional :mod:`repro.obs` sinks;
    ``faults`` an optional :class:`repro.faults.FaultSchedule`.
    ``native``/``epoch_jobs`` are vector-engine performance knobs,
    accepted (and ignored) so every entry in ``ENGINES`` shares one
    call signature."""
    switch = MP5Switch(program, config)
    if (
        recorder is not None
        or metrics is not None
        or profiler is not None
        or monitor is not None
    ):
        switch.attach_observability(
            recorder=recorder, metrics=metrics, profiler=profiler,
            monitor=monitor,
        )
    if faults is not None:
        switch.attach_faults(faults)
    stats = switch.run(
        trace, max_ticks=max_ticks, record_access_order=record_access_order
    )
    registers = {
        name: values
        for name, values in switch.registers.items()
        if name != FLOW_ORDER_ARRAY
    }
    return stats, registers
