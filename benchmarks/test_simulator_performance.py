"""Engineering benchmarks: compiler and simulator performance.

Not a paper artifact — these time the toolchain itself (pytest-benchmark
with real repeated rounds) so performance regressions in the hot paths
are visible: program compilation, MP5 simulation throughput, and the
single-pipeline reference.
"""

from repro.banzai import run_reference
from repro.compiler import compile_program
from repro.mp5 import MP5Config, run_mp5
from repro.workloads import (
    clone_packets,
    line_rate_trace,
    reference_trace,
    make_sensitivity_program,
    sensitivity_trace,
)


def test_compile_flowlet(benchmark):
    compiled = benchmark(compile_program, "flowlet")
    assert compiled.stage_count > 1


def test_compile_synthetic_wide(benchmark):
    compiled = benchmark(lambda: make_sensitivity_program(10, 1024))
    assert len(compiled.arrays) == 10


def _mp5_run():
    program = _mp5_run.program
    trace = clone_packets(_mp5_run.trace)
    stats, _ = run_mp5(program, trace, MP5Config(num_pipelines=4))
    return stats


_mp5_run.program = make_sensitivity_program(4, 512)
_mp5_run.trace = sensitivity_trace(2000, 4, 4, 512, seed=0)


def test_mp5_simulation_throughput(benchmark):
    stats = benchmark.pedantic(_mp5_run, rounds=3, iterations=1)
    assert stats.egressed == 2000


def test_reference_pipeline_throughput(benchmark):
    program = compile_program("heavy_hitter")
    trace = line_rate_trace(
        2000, 4, lambda r, i: {"src_ip": int(r.integers(0, 512)), "hot": 0}, seed=0
    )
    ref = reference_trace(trace, 4)
    result = benchmark.pedantic(
        lambda: run_reference(program, ref), rounds=3, iterations=1
    )
    assert result.registers is not None
