"""Epoch-trace reconstruction: observability for the vector engine.

The scalar engines emit lifecycle events *while* simulating; the vector
engine (:mod:`repro.mp5.vector`) never visits individual ticks, so it
cannot. But its Phase A output — the :class:`~repro.mp5.epochs.EpochSchedule`
— already fixes the tick of every observable event in closed form:

* ``ingress`` / ``phantom_emit`` happen at the injection tick ``inj[r]``
  (phantoms are emitted at generation time even under
  ``phantom_latency``);
* ``steer`` / ``phantom_match`` happen when the data packet reaches the
  plan stage's FIFO, ``ins_tick[pi][r]``;
* ``fifo_pop`` / ``service`` happen at ``pop_tick[pi][r]`` (service only
  at stages that execute instructions — never the resolution stage,
  whose work runs at injection, and never the instruction-free
  flow-order stage);
* transit stages with instructions service a packet one stage per tick
  after injection (``inj + (u - 1)``) or after a pop
  (``pop[pi] + (u - stage[pi])``);
* ``egress`` happens at ``egr_tick[r]``; ``remap`` at the boundaries
  Phase A recorded in ``remap_records``;
* a ``fifo_block`` episode opens at the first tick the group head's
  phantom blocks queued data: ``max(prev_pop + 1, suffix_min(ins))`` —
  data presence implies the head's phantom has been delivered (global
  injection order plus the ``phantom_latency`` admission bound), so the
  blocked window never depends on the latency knob.

:func:`replay_observability` synthesizes that stream, sorts it into the
scalar engines' per-tick phase order, and *replays it through the real
sinks*: the :class:`~repro.obs.trace.TraceRecorder` emitters (so wait /
blocked derivations are the recorder's own), the
:class:`~repro.obs.monitor.InvariantMonitor` (online checks run against
a lightweight switch view whose live-count and stats advance with the
replayed events), and mirror samplers feeding any attached
:class:`~repro.obs.metrics.MetricsRegistry` the same per-window series
the scalar engines produce. The resulting trace ``canonical_form``,
alert stream, and metrics series are engine-independent — the three-way
differential contract of ``tests/test_vector_obs.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigError

_FAR = 1 << 62

# Cumulative SwitchStats counters mirrored into replayed registries, in
# the exact registration order of MP5Switch._register_metric_sources.
_STAT_COUNTERS = (
    "egressed",
    "dropped",
    "steering_moves",
    "remap_moves",
    "phantoms_generated",
    "phantoms_lost",
    "ecn_marked",
    "wasted_slots",
)


class _StatsView:
    """The slice of SwitchStats the monitor's online checks read,
    advanced event by event during replay (the real stats object is
    fully reconstructed before replay starts, so it would be read
    end-of-run values mid-stream)."""

    __slots__ = ("egressed", "dropped", "offered")

    def __init__(self, offered: int):
        self.egressed = 0
        self.dropped = 0
        self.offered = offered


class _SwitchView:
    """What ``InvariantMonitor.end_tick``/``end_run`` dereference.

    ``fifos`` and ``sharder`` are the real (inert) objects — the vector
    engine never mutates its inherited FIFOs, and the sharder holds its
    final state, so the fifo-sanity and shard-exclusivity passes run
    exactly as written and hold vacuously, matching the zero-alert
    outcome of a correct scalar run."""

    __slots__ = ("_live", "stats", "fifos", "sharder", "config", "_faults")

    def __init__(self, switch):
        self._live = 0
        self.stats = _StatsView(switch.stats.offered)
        self.fifos = switch.fifos
        self.sharder = switch.sharder
        self.config = switch.config
        self._faults = None


def _register_replay_sources(
    switch, registry, vals: Dict[str, int], lane_occ: Dict, latency: bool
):
    """Mirror of ``MP5Switch._register_metric_sources``: same sampler
    names in the same order, reading replay-driven aggregates instead of
    live engine objects (which hold end-of-run values throughout the
    replay). Returns the latency histogram when requested."""
    for name in _STAT_COUNTERS:
        registry.add_sampler(
            name, (lambda v=vals, n=name: v[n]), cumulative=True
        )
    registry.add_sampler(
        "queue_depth_max", lambda v=lane_occ: max(v.values(), default=0)
    )
    registry.add_sampler(
        "queue_depth_total", lambda v=lane_occ: sum(v.values())
    )
    # The vector envelope excludes bounded FIFOs and phantom loss, so
    # both drop sources are identically zero — like the scalar run.
    registry.add_sampler("fifo_drops_full", lambda: 0, cumulative=True)
    registry.add_sampler("fifo_drops_no_phantom", lambda: 0, cumulative=True)
    for key in switch.fifos:
        pipe, stage = key
        registry.add_sampler(
            f"queue_depth.p{pipe}.s{stage}",
            (lambda v=lane_occ, k=key: v[k]),
        )
    registry.add_sampler(
        "sharder_moves",
        (lambda v=vals: v["sharder_moves"]),
        cumulative=True,
    )
    # crossbar_crossings: record_crossbar is outside the vector envelope,
    # so the scalar run would not have registered it either.
    if latency:
        return registry.histogram("latency")
    return None


def _attach_monitor(monitor, view: _SwitchView, switch, vals, lane_occ):
    """Replay-time equivalent of ``InvariantMonitor.bind``: same
    one-run-per-monitor guard, same sampler registration (via the replay
    mirrors), shard-map snapshots from the sharder's final state (maps
    never change during replay, so the exclusivity pass is the same
    no-change comparison a correct scalar run converges to)."""
    if monitor._switch is not None:
        raise ConfigError(
            "an InvariantMonitor tracks one run; construct a fresh "
            "monitor per switch"
        )
    monitor._switch = view
    _register_replay_sources(
        switch, monitor.registry, vals, lane_occ, latency=False
    )
    for name, state in switch.sharder.arrays.items():
        monitor._shard_maps[name] = state.index_to_pipeline.copy()
        monitor._inflight_prev[name] = state.in_flight.copy()


# ---------------------------------------------------------------------------
# Event synthesis
# ---------------------------------------------------------------------------

# Within-tick dispatch priorities, mirroring the scalar _step phase
# order (inject -> move/steer/match/egress -> pop -> service -> remap).
# The priority doubles as the event kind in the synthesized tuples.
_P_INGRESS = 0
_P_PHANTOM_EMIT = 1
_P_STEER = 2
_P_PHANTOM_MATCH = 3
_P_EGRESS = 4
_P_FIFO_BLOCK = 5
_P_FIFO_POP = 6
_P_SERVICE = 7
_P_REMAP = 8


def synthesize_events(
    switch, packets, schedule, wasted_masks: Optional[List]
) -> List[Tuple]:
    """The run's full event stream as sortable tuples.

    Tuple layouts (every field a Python int unless noted):

    ========== ==========================================
    priority    payload after ``(tick, priority, ...)``
    ========== ==========================================
    ingress     pkt, pipe, port, flow (flow may be None)
    phantom     pkt, stage, pipe, array (str), index (or None)
    steer       pkt, stage, src, pipe
    match       pkt, stage, pipe
    egress      pkt, latency (arrival-typed)
    block       pipe, stage
    pop         pkt, pipe, stage, wasted (0/1)
    service     pkt, stage, pipe
    remap       moves
    ========== ==========================================

    Plain ``list.sort`` is safe: within one (tick, priority) class the
    leading integer fields always differ before any None/str/float field
    is compared (a packet visits each stage once; lanes are unique).
    """
    cfg = switch.config
    k = cfg.num_pipelines
    vplans = switch._vplans
    stats = switch.stats
    last_exec = stats.ticks - 1
    ninj = schedule.injected
    inj = schedule.inj.tolist()
    entry_pipe = schedule.entry_pipe
    dest = schedule.dest
    events: List[Tuple] = []
    add = events.append

    # Injection tick: ingress, one phantom per plan, and the services of
    # instruction-bearing stateless stages before the first plan stage.
    entry_l = entry_pipe.tolist()
    for r in range(ninj):
        pkt = packets[r]
        add((inj[r], _P_INGRESS, r, entry_l[r], pkt.port, pkt.flow_id))
    for pi, plan in enumerate(vplans):
        d = dest[pi].tolist()
        stage = plan.stage
        label = plan.label
        if plan.has_index and not plan.multi:
            idx = schedule.acc_idx[pi].tolist()
            for r in range(ninj):
                add((inj[r], _P_PHANTOM_EMIT, r, stage, d[r], label, idx[r]))
        else:
            for r in range(ninj):
                add((inj[r], _P_PHANTOM_EMIT, r, stage, d[r], label, None))
    for u in switch._transit_after_inject:
        off = u - 1
        for r in range(ninj):
            t = inj[r] + off
            if t <= last_exec:
                add((t, _P_SERVICE, r, u, entry_l[r]))

    # Per-plan FIFO lifecycle: steer+match at insert, pop (+service) at
    # the pop-chain tick, post-plan transit services one stage per tick.
    for pi, plan in enumerate(vplans):
        ins = schedule.ins_tick[pi].tolist()
        pop = schedule.pop_tick[pi].tolist()
        d = dest[pi].tolist()
        prev = entry_l if pi == 0 else dest[pi - 1].tolist()
        stage = plan.stage
        has_service = bool(switch._stage_instrs[stage])
        transits = switch._transit_after[pi]
        mask = wasted_masks[pi] if wasted_masks is not None else None
        for r in range(ninj):
            it = ins[r]
            if 0 <= it <= last_exec:
                add((it, _P_STEER, r, stage, prev[r], d[r]))
                add((it, _P_PHANTOM_MATCH, r, stage, d[r]))
            pt = pop[r]
            if 0 <= pt <= last_exec:
                wflag = 1 if (mask is not None and mask[r]) else 0
                add((pt, _P_FIFO_POP, r, d[r], stage, wflag))
                if has_service:
                    add((pt, _P_SERVICE, r, stage, d[r]))
                for u in transits:
                    t = pt + (u - stage)
                    if t <= last_exec:
                        add((t, _P_SERVICE, r, u, d[r]))

    # Head-of-line blocking episodes, per (plan, pipeline) FIFO group:
    # the head's pop waits until max(prev_pop + 1, its insert tick);
    # the episode opens at the first tick queued data coexists with the
    # head's still-absent data — the suffix-minimum of later members'
    # insert ticks, clamped by the pop cadence.
    for pi, plan in enumerate(vplans):
        stage = plan.stage
        ins_col = schedule.ins_tick[pi]
        pop_col = schedule.pop_tick[pi]
        for pipe in range(k):
            g = schedule.groups[pi][pipe]
            cnt = g.count
            if cnt == 0:
                continue
            members = g.members[:cnt]
            ins_m = np.where(
                ins_col[members] >= 0, ins_col[members], _FAR
            ).tolist()
            pop_m = pop_col[members].tolist()
            # suffix-min of strictly-later members' insert ticks
            suf = [0] * cnt
            running = _FAR
            for j in range(cnt - 1, -1, -1):
                suf[j] = running
                if ins_m[j] < running:
                    running = ins_m[j]
            prev_pop = -1
            for j in range(cnt):
                b = prev_pop + 1
                if suf[j] > b:
                    b = suf[j]
                pj = pop_m[j]
                if pj >= 0:
                    if b < pj:
                        add((b, _P_FIFO_BLOCK, pipe, stage))
                    prev_pop = pj
                else:
                    # Final head: its pop would have landed at pw but the
                    # run was cut; the episode still opens if data queued
                    # behind it within the executed ticks.
                    pw = ins_m[j] if ins_m[j] > prev_pop else prev_pop + 1
                    if b < pw and b <= last_exec:
                        add((b, _P_FIFO_BLOCK, pipe, stage))
                    break

    # Egress and remap boundaries.
    done = np.nonzero(schedule.egr_tick >= 0)[0]
    if done.size:
        egr = schedule.egr_tick[done].tolist()
        for t, r in zip(egr, done.tolist()):
            add((t, _P_EGRESS, r, t - packets[r].arrival))
    for boundary, moved in schedule.remap_records:
        add((int(boundary), _P_REMAP, int(moved)))

    events.sort()
    return events


# ---------------------------------------------------------------------------
# Replay driver
# ---------------------------------------------------------------------------


def replay_observability(
    switch,
    packets,
    schedule,
    wasted_masks: Optional[List],
    drained: bool,
    recorder=None,
    metrics=None,
    monitor=None,
) -> None:
    """Feed the attached sinks the run they never saw live.

    Dispatches the synthesized stream per tick in scalar phase order,
    calling ``metrics.maybe_roll`` and ``monitor.end_tick`` at each tick
    boundary and ``metrics.roll`` / ``monitor.end_run`` once the stream
    ends — the exact hook sequence of ``MP5Switch.run``. ``schedule``
    may be None for runs that never built one (empty trace, or
    ``max_ticks <= 0``); the sinks still see registration and the final
    roll, like a scalar run whose loop never stepped.
    """
    stats = switch.stats
    ticks = stats.ticks
    vals = {name: 0 for name in _STAT_COUNTERS}
    vals["sharder_moves"] = 0
    lane_occ = {key: 0 for key in switch.fifos}
    lat_hist = None
    if metrics is not None:
        lat_hist = _register_replay_sources(
            switch, metrics, vals, lane_occ, latency=True
        )
    view = None
    if monitor is not None:
        view = _SwitchView(switch)
        _attach_monitor(monitor, view, switch, vals, lane_occ)
    sinks = [s for s in (recorder, monitor) if s is not None]

    events = (
        synthesize_events(switch, packets, schedule, wasted_masks)
        if schedule is not None
        else []
    )
    i = 0
    n = len(events)
    for tick in range(ticks):
        while i < n and events[i][0] == tick:
            ev = events[i]
            i += 1
            kind = ev[1]
            if kind == _P_INGRESS:
                _t, _k, r, pipe, port, flow = ev
                for s in sinks:
                    s.ingress(tick, r, pipe, port, flow)
                if view is not None:
                    view._live += 1
            elif kind == _P_PHANTOM_EMIT:
                _t, _k, r, stage, pipe, array, index = ev
                for s in sinks:
                    s.phantom_emit(tick, r, pipe, stage, array, index)
                vals["phantoms_generated"] += 1
            elif kind == _P_STEER:
                _t, _k, r, stage, src, pipe = ev
                for s in sinks:
                    s.steer(tick, r, src, pipe, stage)
                if src != pipe:
                    vals["steering_moves"] += 1
            elif kind == _P_PHANTOM_MATCH:
                _t, _k, r, stage, pipe = ev
                for s in sinks:
                    s.phantom_match(tick, r, pipe, stage)
                lane_occ[(pipe, stage)] += 1
            elif kind == _P_EGRESS:
                _t, _k, r, latency = ev
                for s in sinks:
                    s.egress(tick, r, latency)
                vals["egressed"] += 1
                if lat_hist is not None:
                    lat_hist.observe(latency)
                if view is not None:
                    view._live -= 1
                    view.stats.egressed += 1
            elif kind == _P_FIFO_BLOCK:
                _t, _k, pipe, stage = ev
                for s in sinks:
                    s.fifo_block(tick, pipe, stage)
            elif kind == _P_FIFO_POP:
                _t, _k, r, pipe, stage, wflag = ev
                for s in sinks:
                    s.fifo_pop(tick, r, pipe, stage)
                lane_occ[(pipe, stage)] -= 1
                if wflag:
                    vals["wasted_slots"] += 1
            elif kind == _P_SERVICE:
                _t, _k, r, stage, pipe = ev
                for s in sinks:
                    s.service(tick, r, pipe, stage)
            else:  # _P_REMAP
                _t, _k, moves = ev
                for s in sinks:
                    s.remap(tick, moves)
                vals["remap_moves"] += moves
                vals["sharder_moves"] += moves
        if metrics is not None:
            metrics.maybe_roll(tick)
        if monitor is not None:
            monitor.end_tick(tick, view)
    if metrics is not None:
        metrics.roll(ticks)
    if monitor is not None:
        monitor.end_run(ticks, view, drained)
