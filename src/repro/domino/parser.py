"""Recursive-descent parser for the Domino language subset.

Grammar (informal)::

    program        := struct_decl (register_decl)* func_decl
    struct_decl    := 'struct' IDENT '{' ('int' IDENT ';')+ '}' ';'
    register_decl  := 'int' IDENT ('[' INT ']')? ('=' initializer)? ';'
    initializer    := INT | '{' INT (',' INT)* '}'
    func_decl      := 'void' IDENT '(' 'struct' IDENT IDENT ')' block
    block          := '{' stmt* '}'
    stmt           := if_stmt | local_decl | assign_stmt
    if_stmt        := 'if' '(' expr ')' block ('else' (block | if_stmt))?
    local_decl     := 'int' IDENT '=' expr ';'
    assign_stmt    := lvalue '=' expr ';'
    lvalue         := IDENT ('.' IDENT | '[' expr ']')?

Expressions use standard C precedence with the ternary operator at the
lowest level.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import DominoSyntaxError
from .ast_nodes import (
    Assign,
    BinaryExpr,
    CallExpr,
    Expr,
    If,
    IntLiteral,
    LocalDecl,
    LocalVar,
    PacketField,
    PacketStruct,
    Program,
    RegisterDecl,
    RegisterRef,
    Stmt,
    TernaryExpr,
    UnaryExpr,
)
from .lexer import tokenize
from .tokens import Token, TokenType

# Binary operator precedence, loosest first. The ternary operator binds
# looser than all of these and is handled separately.
_PRECEDENCE_LEVELS = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]

BUILTIN_FUNCTIONS = {"hash2", "hash3", "hash5", "min", "max"}


class Parser:
    """Parses a token stream into a :class:`Program` AST."""

    def __init__(self, tokens: List[Token], source_name: str = "<domino>"):
        self.tokens = tokens
        self.pos = 0
        self.source_name = source_name

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _check(self, token_type: TokenType) -> bool:
        return self._peek().type is token_type

    def _match(self, token_type: TokenType) -> Optional[Token]:
        if self._check(token_type):
            return self._advance()
        return None

    def _expect(self, token_type: TokenType, what: str = "") -> Token:
        token = self._peek()
        if token.type is not token_type:
            expected = what or token_type.value
            raise DominoSyntaxError(
                f"expected {expected!r}, found {token.text!r}",
                token.line,
                token.column,
            )
        return self._advance()

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def parse_program(self) -> Program:
        """Parse the full token stream into a :class:`Program`."""
        struct = self._parse_struct_decl()
        registers: List[RegisterDecl] = []
        while self._check(TokenType.KW_INT):
            registers.append(self._parse_register_decl())
        func_name, param_name, body = self._parse_func_decl()
        self._expect(TokenType.EOF, "end of program")
        return Program(
            packet_struct=struct,
            registers=registers,
            body=body,
            func_name=func_name,
            packet_param=param_name,
            source_name=self.source_name,
        )

    def _parse_struct_decl(self) -> PacketStruct:
        start = self._expect(TokenType.KW_STRUCT)
        name = self._expect(TokenType.IDENT, "struct name").text
        self._expect(TokenType.LBRACE)
        fields: List[str] = []
        while not self._check(TokenType.RBRACE):
            self._expect(TokenType.KW_INT, "'int' field type")
            field_tok = self._expect(TokenType.IDENT, "field name")
            if field_tok.text in fields:
                raise DominoSyntaxError(
                    f"duplicate packet field {field_tok.text!r}",
                    field_tok.line,
                    field_tok.column,
                )
            fields.append(field_tok.text)
            self._expect(TokenType.SEMICOLON)
        self._expect(TokenType.RBRACE)
        self._expect(TokenType.SEMICOLON)
        if not fields:
            raise DominoSyntaxError(
                "packet struct must declare at least one field",
                start.line,
                start.column,
            )
        return PacketStruct(name=name, fields=fields, line=start.line)

    def _parse_register_decl(self) -> RegisterDecl:
        start = self._expect(TokenType.KW_INT)
        name = self._expect(TokenType.IDENT, "register name").text
        size = 1
        is_scalar = True
        if self._match(TokenType.LBRACKET):
            size_tok = self._expect(TokenType.INT_LITERAL, "array size")
            size = size_tok.value
            if size <= 0:
                raise DominoSyntaxError(
                    f"register array size must be positive, got {size}",
                    size_tok.line,
                    size_tok.column,
                )
            is_scalar = False
            self._expect(TokenType.RBRACKET)

        initial: List[int] = [0] * size
        if self._match(TokenType.ASSIGN):
            if self._match(TokenType.LBRACE):
                values: List[int] = []
                values.append(self._parse_signed_int())
                while self._match(TokenType.COMMA):
                    values.append(self._parse_signed_int())
                self._expect(TokenType.RBRACE)
                if len(values) == 1:
                    # C-style {0} broadcast used throughout the paper.
                    initial = values * size
                elif len(values) == size:
                    initial = values
                else:
                    raise DominoSyntaxError(
                        f"register {name!r}: initializer has {len(values)} "
                        f"entries but array size is {size}",
                        start.line,
                        start.column,
                    )
            else:
                value = self._parse_signed_int()
                initial = [value] * size
        self._expect(TokenType.SEMICOLON)
        return RegisterDecl(
            name=name,
            size=size,
            initial=tuple(initial),
            is_scalar=is_scalar,
            line=start.line,
        )

    def _parse_signed_int(self) -> int:
        negative = bool(self._match(TokenType.MINUS))
        token = self._expect(TokenType.INT_LITERAL, "integer")
        return -token.value if negative else token.value

    def _parse_func_decl(self):
        self._expect(TokenType.KW_VOID, "'void'")
        func_name = self._expect(TokenType.IDENT, "function name").text
        self._expect(TokenType.LPAREN)
        self._expect(TokenType.KW_STRUCT, "'struct'")
        self._expect(TokenType.IDENT, "struct name")
        param_name = self._expect(TokenType.IDENT, "parameter name").text
        self._expect(TokenType.RPAREN)
        body = self._parse_block(param_name)
        return func_name, param_name, body

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _parse_block(self, param: str) -> List[Stmt]:
        self._expect(TokenType.LBRACE)
        statements: List[Stmt] = []
        while not self._check(TokenType.RBRACE):
            statements.append(self._parse_stmt(param))
        self._expect(TokenType.RBRACE)
        return statements

    def _parse_stmt(self, param: str) -> Stmt:
        if self._check(TokenType.KW_IF):
            return self._parse_if(param)
        if self._check(TokenType.KW_INT):
            return self._parse_local_decl(param)
        return self._parse_assign(param)

    def _parse_if(self, param: str) -> If:
        start = self._expect(TokenType.KW_IF)
        self._expect(TokenType.LPAREN)
        condition = self._parse_expr(param)
        self._expect(TokenType.RPAREN)
        then_body = self._parse_block(param)
        else_body: List[Stmt] = []
        if self._match(TokenType.KW_ELSE):
            if self._check(TokenType.KW_IF):
                else_body = [self._parse_if(param)]
            else:
                else_body = self._parse_block(param)
        return If(
            condition=condition,
            then_body=then_body,
            else_body=else_body,
            line=start.line,
            column=start.column,
        )

    def _parse_local_decl(self, param: str) -> LocalDecl:
        start = self._expect(TokenType.KW_INT)
        name = self._expect(TokenType.IDENT, "local variable name").text
        self._expect(TokenType.ASSIGN, "'=' (locals must be initialized)")
        value = self._parse_expr(param)
        self._expect(TokenType.SEMICOLON)
        return LocalDecl(name=name, value=value, line=start.line, column=start.column)

    def _parse_assign(self, param: str) -> Assign:
        target = self._parse_lvalue(param)
        eq = self._expect(TokenType.ASSIGN, "'='")
        value = self._parse_expr(param)
        self._expect(TokenType.SEMICOLON)
        return Assign(target=target, value=value, line=eq.line, column=eq.column)

    def _parse_lvalue(self, param: str) -> Expr:
        token = self._expect(TokenType.IDENT, "assignment target")
        if token.text == param and self._match(TokenType.DOT):
            field_tok = self._expect(TokenType.IDENT, "packet field")
            return PacketField(
                field_name=field_tok.text, line=token.line, column=token.column
            )
        if self._match(TokenType.LBRACKET):
            index = self._parse_expr(param)
            self._expect(TokenType.RBRACKET)
            return RegisterRef(
                register=token.text, index=index, line=token.line, column=token.column
            )
        # Bare identifier: a local variable or a scalar register; semantic
        # analysis disambiguates.
        return LocalVar(name=token.text, line=token.line, column=token.column)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _parse_expr(self, param: str) -> Expr:
        return self._parse_ternary(param)

    def _parse_ternary(self, param: str) -> Expr:
        condition = self._parse_binary(param, 0)
        if self._match(TokenType.QUESTION):
            if_true = self._parse_ternary(param)
            self._expect(TokenType.COLON)
            if_false = self._parse_ternary(param)
            return TernaryExpr(
                condition=condition,
                if_true=if_true,
                if_false=if_false,
                line=condition.line,
                column=condition.column,
            )
        return condition

    def _parse_binary(self, param: str, level: int) -> Expr:
        if level >= len(_PRECEDENCE_LEVELS):
            return self._parse_unary(param)
        ops = _PRECEDENCE_LEVELS[level]
        left = self._parse_binary(param, level + 1)
        while self._peek().text in ops and self._peek().type is not TokenType.IDENT:
            op_tok = self._advance()
            right = self._parse_binary(param, level + 1)
            left = BinaryExpr(
                op=op_tok.text,
                left=left,
                right=right,
                line=op_tok.line,
                column=op_tok.column,
            )
        return left

    def _parse_unary(self, param: str) -> Expr:
        token = self._peek()
        if token.type in (TokenType.NOT, TokenType.MINUS):
            self._advance()
            operand = self._parse_unary(param)
            return UnaryExpr(
                op=token.text, operand=operand, line=token.line, column=token.column
            )
        return self._parse_primary(param)

    def _parse_primary(self, param: str) -> Expr:
        token = self._peek()
        if token.type is TokenType.INT_LITERAL:
            self._advance()
            return IntLiteral(value=token.value, line=token.line, column=token.column)
        if token.type is TokenType.LPAREN:
            self._advance()
            inner = self._parse_expr(param)
            self._expect(TokenType.RPAREN)
            return inner
        if token.type is TokenType.IDENT:
            self._advance()
            # Packet field access: p.field
            if token.text == param and self._match(TokenType.DOT):
                field_tok = self._expect(TokenType.IDENT, "packet field")
                return PacketField(
                    field_name=field_tok.text, line=token.line, column=token.column
                )
            # Builtin call: hash2(a, b)
            if self._check(TokenType.LPAREN):
                if token.text not in BUILTIN_FUNCTIONS:
                    raise DominoSyntaxError(
                        f"unknown function {token.text!r} (builtins: "
                        f"{sorted(BUILTIN_FUNCTIONS)})",
                        token.line,
                        token.column,
                    )
                self._advance()
                args: List[Expr] = []
                if not self._check(TokenType.RPAREN):
                    args.append(self._parse_expr(param))
                    while self._match(TokenType.COMMA):
                        args.append(self._parse_expr(param))
                self._expect(TokenType.RPAREN)
                return CallExpr(
                    func=token.text, args=args, line=token.line, column=token.column
                )
            # Register array read: reg[idx]
            if self._match(TokenType.LBRACKET):
                index = self._parse_expr(param)
                self._expect(TokenType.RBRACKET)
                return RegisterRef(
                    register=token.text,
                    index=index,
                    line=token.line,
                    column=token.column,
                )
            # Bare identifier: local var or scalar register.
            return LocalVar(name=token.text, line=token.line, column=token.column)
        raise DominoSyntaxError(
            f"unexpected token {token.text!r} in expression", token.line, token.column
        )


def parse(source: str, source_name: str = "<domino>") -> Program:
    """Parse Domino source text into an AST :class:`Program`."""
    return Parser(tokenize(source), source_name).parse_program()
