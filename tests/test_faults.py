"""Fault injection and graceful degradation (:mod:`repro.faults`).

Three contract layers:

* **schedule layer** — validation, JSON round-trips, deterministic
  generation;
* **differential layer** — under every shipped schedule the fast and
  dense engines produce identical stats, registers, and canonical event
  streams, and the degraded contract (survivor C1 + drop accounting)
  holds;
* **determinism layer** — same schedule + seed gives byte-identical
  results across repeated runs and across serial vs parallel chaos
  sweeps.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.equivalence import check_degraded
from repro.errors import ConfigError
from repro.faults import (
    DegradationPolicy,
    FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
    generate_schedule,
)
from repro.harness import ChaosSettings, run_chaos_sweep, schedule_for
from repro.mp5 import MP5Config, MP5Switch, run_mp5, run_mp5_reference
from repro.obs import TraceRecorder, canonical_form
from repro.workloads.synthetic import make_sensitivity_program, sensitivity_trace

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples" / "faults").glob(
        "*.json"
    )
)


def _program():
    return make_sensitivity_program(
        num_stateful=3, register_size=16, num_stages=6
    )


def _config():
    return MP5Config(num_pipelines=4, fifo_capacity=8, remap_period=50)


def _trace(seed=11):
    return sensitivity_trace(300, 4, 3, 16, pattern="skewed", seed=seed)


def _run_engines(schedule):
    """Run both engines under ``schedule``; returns per-engine
    (stats, registers, canonical events)."""
    out = []
    for runner in (run_mp5, run_mp5_reference):
        recorder = TraceRecorder()
        stats, regs = runner(
            _program(),
            _trace(),
            _config(),
            max_ticks=5000,
            record_access_order=True,
            recorder=recorder,
            faults=schedule,
        )
        out.append((stats, regs, canonical_form(recorder.events)))
    return out


# ---------------------------------------------------------------------------
# Schedule layer
# ---------------------------------------------------------------------------


class TestSchedule:
    def test_round_trip(self, tmp_path):
        schedule = FaultSchedule(
            faults=[
                FaultEvent("pipeline_stall", start=5, duration=10, pipeline=0),
                FaultEvent(
                    "phantom_channel", start=1, duration=9, loss_rate=0.5
                ),
            ],
            degradation=DegradationPolicy(drain_ticks=2),
            seed=7,
        )
        path = tmp_path / "sched.json"
        schedule.save(path)
        assert FaultSchedule.load(path) == schedule

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigError):
            FaultSchedule(
                faults=[FaultEvent("meteor_strike", start=0, duration=1)]
            )

    def test_rejects_stall_without_pipeline(self):
        with pytest.raises(ConfigError):
            FaultSchedule(
                faults=[FaultEvent("pipeline_stall", start=0, duration=1)]
            )

    def test_rejects_out_of_range_pipeline(self):
        schedule = FaultSchedule(
            faults=[
                FaultEvent("crossbar_fail", start=0, duration=5, pipeline=9)
            ]
        )
        with pytest.raises(ConfigError):
            schedule.validate(num_pipelines=4)

    def test_rejects_unknown_json_fields(self):
        with pytest.raises(ConfigError):
            FaultEvent.from_dict(
                {"kind": "fifo_shrink", "start": 0, "duration": 1, "bogus": 2}
            )

    def test_rejects_bad_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ConfigError):
            FaultSchedule.load(path)

    def test_generate_is_seed_deterministic(self):
        a = generate_schedule(seed=3, events=5)
        b = generate_schedule(seed=3, events=5)
        c = generate_schedule(seed=4, events=5)
        assert a == b
        assert a != c
        a.validate(num_pipelines=4)

    def test_empty_schedule_is_not_attached(self):
        switch = MP5Switch(_program(), _config())
        switch.attach_faults(FaultSchedule(faults=[]))
        assert switch._faults is None

    def test_attach_after_run_rejected(self):
        switch = MP5Switch(_program(), _config())
        switch.run(_trace())
        with pytest.raises(ConfigError):
            switch.attach_faults(
                FaultSchedule(
                    faults=[
                        FaultEvent(
                            "fifo_shrink", start=0, duration=1, capacity=1
                        )
                    ]
                )
            )


# ---------------------------------------------------------------------------
# Differential layer: both engines agree under every shipped schedule
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("spec", EXAMPLES, ids=lambda p: p.stem)
def test_engines_agree_under_faults(spec):
    schedule = FaultSchedule.load(spec)
    (fast, fast_regs, fast_ev), (ref, ref_regs, ref_ev) = _run_engines(
        schedule
    )
    assert fast == ref
    assert fast_regs == ref_regs
    assert fast_ev == ref_ev


@pytest.mark.parametrize("spec", EXAMPLES, ids=lambda p: p.stem)
@pytest.mark.parametrize("engine", ("fast", "reference"))
def test_degraded_contract_holds(spec, engine):
    schedule = FaultSchedule.load(spec)
    report = check_degraded(
        _program(),
        list(_trace()),
        _config(),
        faults=schedule,
        max_ticks=5000,
        engine=engine,
    )
    assert report.contract_holds, report.summary()
    assert report.offered == 300
    assert report.unaccounted == 0  # every fault window ends; the run drains


def test_example_schedules_cover_all_kinds():
    kinds = set()
    for spec in EXAMPLES:
        kinds.update(f.kind for f in FaultSchedule.load(spec).faults)
    assert kinds == set(FAULT_KINDS)


# ---------------------------------------------------------------------------
# Fault semantics
# ---------------------------------------------------------------------------


def _stats_for(schedule):
    stats, _ = run_mp5(
        _program(), _trace(), _config(), max_ticks=5000, faults=schedule
    )
    return stats


class TestSemantics:
    def test_empty_schedule_identical_to_no_faults(self):
        baseline_rec, faulted_rec = TraceRecorder(), TraceRecorder()
        baseline, _ = run_mp5(
            _program(), _trace(), _config(), recorder=baseline_rec
        )
        faulted, _ = run_mp5(
            _program(),
            _trace(),
            _config(),
            recorder=faulted_rec,
            faults=FaultSchedule(faults=[]),
        )
        assert baseline == faulted
        assert baseline_rec.events == faulted_rec.events

    def test_stall_triggers_emergency_remap_without_drops(self):
        stats = _stats_for(
            FaultSchedule(
                faults=[
                    FaultEvent(
                        "pipeline_stall", start=20, duration=40, pipeline=1
                    )
                ]
            )
        )
        assert stats.emergency_remaps >= 1
        assert stats.emergency_remap_moves > 0
        # A stall delays packets but loses none by itself.
        assert stats.egressed + stats.dropped == stats.offered

    def test_stall_with_degrade_off_skips_remap(self):
        stats = _stats_for(
            FaultSchedule(
                faults=[
                    FaultEvent(
                        "pipeline_stall",
                        start=20,
                        duration=40,
                        pipeline=1,
                        degrade=False,
                    )
                ]
            )
        )
        assert stats.emergency_remaps == 0

    def test_crossbar_failure_drops_with_reason(self):
        stats = _stats_for(
            FaultSchedule(
                faults=[
                    FaultEvent(
                        "crossbar_fail", start=10, duration=60, pipeline=0
                    )
                ]
            )
        )
        assert stats.drops_crossbar > 0
        assert stats.drops_by_reason["crossbar_down"] == stats.drops_crossbar
        assert stats.egressed + stats.dropped == stats.offered

    def test_phantom_loss_exercises_recovery(self):
        stats = _stats_for(
            FaultSchedule(
                faults=[
                    FaultEvent(
                        "phantom_channel", start=5, duration=80, loss_rate=0.4
                    )
                ],
                seed=5,
            )
        )
        assert stats.phantoms_lost > 0
        # A lost phantom strands its data packet at insert: the §3.5.1
        # recovery path drops it with no_phantom rather than deadlocking.
        assert stats.drops_by_reason.get("no_phantom", 0) > 0

    def test_fifo_shrink_causes_drops(self):
        baseline = _stats_for(FaultSchedule(faults=[]))
        shrunk = _stats_for(
            FaultSchedule(
                faults=[
                    FaultEvent("fifo_shrink", start=5, duration=80, capacity=1)
                ]
            )
        )
        assert shrunk.drops_fifo_full > baseline.drops_fifo_full

    def test_slowdown_is_partial_stall(self):
        full = _stats_for(
            FaultSchedule(
                faults=[
                    FaultEvent(
                        "pipeline_stall", start=20, duration=60, pipeline=2
                    )
                ]
            )
        )
        partial = _stats_for(
            FaultSchedule(
                faults=[
                    FaultEvent(
                        "pipeline_stall",
                        start=20,
                        duration=60,
                        pipeline=2,
                        service_rate=0.5,
                    )
                ]
            )
        )
        assert partial.ticks <= full.ticks

    def test_fault_events_emitted(self):
        recorder = TraceRecorder()
        run_mp5(
            _program(),
            _trace(),
            _config(),
            recorder=recorder,
            faults=FaultSchedule(
                faults=[
                    FaultEvent(
                        "pipeline_stall", start=20, duration=30, pipeline=1
                    )
                ]
            ),
        )
        types = [e["type"] for e in recorder.events]
        assert "fault_start" in types
        assert "fault_end" in types
        assert "emergency_remap" in types


# ---------------------------------------------------------------------------
# Determinism layer
# ---------------------------------------------------------------------------


def _canonical_run(schedule) -> str:
    recorder = TraceRecorder()
    stats, regs = run_mp5(
        _program(),
        _trace(),
        _config(),
        max_ticks=5000,
        recorder=recorder,
        faults=schedule,
    )
    return json.dumps(
        {
            "summary": stats.summary(),
            "reasons": stats.drops_by_reason,
            "registers": regs,
            "events": recorder.events,
        },
        sort_keys=True,
    )


def test_same_schedule_and_seed_byte_identical():
    spec = FaultSchedule.load(EXAMPLES[0])
    assert _canonical_run(spec) == _canonical_run(spec)


def test_chaos_sweep_serial_parallel_identical():
    settings = ChaosSettings(
        num_packets=300, seeds=(0,), intensities=(1.0,)
    )
    assert run_chaos_sweep(settings, jobs=1) == run_chaos_sweep(
        settings, jobs=2
    )


def test_chaos_schedules_are_pure():
    settings = ChaosSettings()
    for kind in FAULT_KINDS:
        assert schedule_for(kind, 0.5, settings) == schedule_for(
            kind, 0.5, settings
        )
    assert schedule_for("none", 1.0, settings).empty
    assert schedule_for("pipeline_stall", 0.0, settings).empty


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestFaultsCli:
    def test_generate_validate_describe(self, tmp_path, capsys):
        out = tmp_path / "sched.json"
        assert (
            main(["faults", "generate", "--seed", "2", "--out", str(out)]) == 0
        )
        assert main(["faults", "validate", str(out)]) == 0
        assert main(["faults", "describe", str(out)]) == 0
        assert "fault(s)" in capsys.readouterr().out

    def test_run_with_faults(self, capsys):
        spec = str(EXAMPLES[0])
        assert (
            main(
                ["run", "heavy_hitter", "--packets", "400", "--faults", spec]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "faults:" in out
        assert "drops by reason" in out

    def test_chaos_smoke(self, tmp_path, capsys):
        out = tmp_path / "chaos.json"
        assert (
            main(
                [
                    "chaos",
                    "--packets",
                    "200",
                    "--seeds",
                    "1",
                    "--intensities",
                    "1.0",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        assert "Chaos sweep" in capsys.readouterr().out
        points = json.loads(out.read_text())
        assert points[0]["kind"] == "none"
        assert len(points) == 1 + len(FAULT_KINDS)
