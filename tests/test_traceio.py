"""Tests for trace/result serialization."""

import json

import pytest

from repro.compiler import compile_program
from repro.errors import ConfigError
from repro.mp5 import MP5Config, run_mp5
from repro.workloads import (
    FlowWorkload,
    line_rate_trace,
    load_stats,
    load_trace,
    packet_from_dict,
    packet_to_dict,
    save_stats,
    save_trace,
    stats_to_dict,
)


class TestTraceRoundTrip:
    def test_round_trip_preserves_everything(self, tmp_path):
        trace = line_rate_trace(
            50, 4, lambda r, i: {"a": int(r.integers(0, 99)), "b": i}, seed=3
        )
        path = tmp_path / "trace.jsonl"
        assert save_trace(trace, path) == 50
        loaded = load_trace(path)
        assert len(loaded) == 50
        for original, restored in zip(trace, loaded):
            assert restored.pkt_id == original.pkt_id
            assert restored.arrival == original.arrival
            assert restored.port == original.port
            assert restored.size_bytes == original.size_bytes
            assert restored.headers == original.headers

    def test_flow_ids_preserved(self, tmp_path):
        trace = FlowWorkload(num_pipelines=2, seed=1).generate(30)
        path = tmp_path / "flows.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert [p.flow_id for p in loaded] == [p.flow_id for p in trace]

    def test_loaded_trace_runs_identically(self, tmp_path):
        program = compile_program("heavy_hitter")
        trace = line_rate_trace(
            200, 4, lambda r, i: {"src_ip": int(r.integers(0, 64)), "hot": 0}, seed=4
        )
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        stats_a, regs_a = run_mp5(program, load_trace(path), MP5Config(num_pipelines=4))
        stats_b, regs_b = run_mp5(program, load_trace(path), MP5Config(num_pipelines=4))
        assert regs_a == regs_b
        assert stats_a.egress_ticks == stats_b.egress_ticks

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ConfigError, match="empty"):
            load_trace(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "pcap"}\n')
        with pytest.raises(ConfigError, match="not an mp5-trace"):
            load_trace(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "mp5-trace", "version": 99}\n')
        with pytest.raises(ConfigError, match="version"):
            load_trace(path)

    def test_malformed_record_rejected(self):
        with pytest.raises(ConfigError, match="malformed"):
            packet_from_dict({"id": 1})

    def test_dict_round_trip(self):
        trace = line_rate_trace(1, 2, lambda r, i: {"x": 7}, seed=0)
        restored = packet_from_dict(packet_to_dict(trace[0]))
        assert restored.headers == {"x": 7}


class TestStatsExport:
    def _stats(self):
        program = compile_program("sequencer")
        trace = line_rate_trace(100, 2, lambda r, i: {"seq": 0}, seed=0)
        stats, _ = run_mp5(program, trace, MP5Config(num_pipelines=2))
        return stats

    def test_stats_to_dict_keys(self):
        record = stats_to_dict(self._stats())
        assert record["offered"] == 100
        assert "throughput" in record
        assert "latencies" not in record

    def test_distributions_opt_in(self):
        record = stats_to_dict(self._stats(), include_distributions=True)
        assert len(record["latencies"]) == 100

    def test_save_and_load(self, tmp_path):
        path = tmp_path / "stats.json"
        save_stats(self._stats(), path)
        record = load_stats(path)
        assert record["egressed"] == 100
        # The file is plain JSON, readable by anything.
        assert json.loads(path.read_text())["offered"] == 100
