"""Abstract syntax tree for the Domino language subset.

A Domino program (as in Figure 3 of the paper) consists of:

* one ``struct Packet { int f; ... }`` declaration naming the header
  fields packets carry through the pipeline,
* zero or more global register declarations (``int r = 0;`` scalars or
  ``int r[N] = {...};`` arrays) holding switch state that persists across
  packets, and
* exactly one ``void func(struct Packet p) { ... }`` body describing the
  per-packet processing.

All expressions are integer-valued. Builtin calls (``hash2``/``hash3``/
``hash5``/``min``/``max``) appear as :class:`CallExpr`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


@dataclass
class Expr:
    """Base class for expressions. ``line``/``column`` point at source."""

    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass
class IntLiteral(Expr):
    value: int = 0

    def __str__(self) -> str:
        return str(self.value)


@dataclass
class PacketField(Expr):
    """Reference to a packet header field, e.g. ``p.src_ip``."""

    field_name: str = ""

    def __str__(self) -> str:
        return f"p.{self.field_name}"


@dataclass
class LocalVar(Expr):
    """Reference to a local variable declared inside ``func``."""

    name: str = ""

    def __str__(self) -> str:
        return self.name


@dataclass
class RegisterRef(Expr):
    """Read of a register: ``reg[idx]`` for arrays, ``reg`` for scalars.

    Scalar registers are normalized to arrays of size one with an
    implicit index of zero (``index`` is ``None`` for scalars until
    semantic analysis fills it in with ``IntLiteral(0)``).
    """

    register: str = ""
    index: Optional[Expr] = None

    def __str__(self) -> str:
        if self.index is None:
            return self.register
        return f"{self.register}[{self.index}]"


@dataclass
class UnaryExpr(Expr):
    op: str = ""
    operand: Expr = None  # type: ignore[assignment]

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass
class BinaryExpr(Expr):
    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass
class TernaryExpr(Expr):
    condition: Expr = None  # type: ignore[assignment]
    if_true: Expr = None  # type: ignore[assignment]
    if_false: Expr = None  # type: ignore[assignment]

    def __str__(self) -> str:
        return f"({self.condition} ? {self.if_true} : {self.if_false})"


@dataclass
class CallExpr(Expr):
    """A builtin function call such as ``hash2(p.src, p.dst)``."""

    func: str = ""
    args: List[Expr] = field(default_factory=list)

    def __str__(self) -> str:
        return f"{self.func}({', '.join(str(a) for a in self.args)})"


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass
class Assign(Stmt):
    """Assignment to a packet field, local variable, or register slot."""

    target: Expr = None  # type: ignore[assignment]  # PacketField | LocalVar | RegisterRef
    value: Expr = None  # type: ignore[assignment]

    def __str__(self) -> str:
        return f"{self.target} = {self.value};"


@dataclass
class LocalDecl(Stmt):
    """Declaration of a local variable: ``int tmp = <expr>;``."""

    name: str = ""
    value: Expr = None  # type: ignore[assignment]

    def __str__(self) -> str:
        return f"int {self.name} = {self.value};"


@dataclass
class If(Stmt):
    condition: Expr = None  # type: ignore[assignment]
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)

    def __str__(self) -> str:
        text = f"if ({self.condition}) {{ ... }}"
        if self.else_body:
            text += " else { ... }"
        return text


# ----------------------------------------------------------------------
# Top-level declarations
# ----------------------------------------------------------------------


@dataclass
class PacketStruct:
    """The ``struct Packet`` declaration: ordered header field names."""

    name: str
    fields: List[str]
    line: int = 0


@dataclass
class RegisterDecl:
    """A global register declaration.

    ``size == 1`` with ``is_scalar`` marks a scalar register (``int c = 0``).
    ``initial`` always has exactly ``size`` entries: a ``{0}`` initializer
    broadcasts per C array semantics used in the paper's examples.
    """

    name: str
    size: int
    initial: Tuple[int, ...]
    is_scalar: bool = False
    line: int = 0


@dataclass
class Program:
    """A complete parsed Domino program."""

    packet_struct: PacketStruct
    registers: List[RegisterDecl]
    body: List[Stmt]
    func_name: str = "func"
    packet_param: str = "p"
    source_name: str = "<domino>"

    def register_named(self, name: str) -> RegisterDecl:
        for reg in self.registers:
            if reg.name == name:
                return reg
        raise KeyError(name)

    @property
    def register_names(self) -> List[str]:
        return [reg.name for reg in self.registers]
