"""Chaos sweep: throughput and recovery time under fault injection.

For each fault kind in :data:`repro.faults.FAULT_KINDS` the sweep runs
the §4.3.3 default configuration under deterministically generated fault
schedules of increasing *intensity* (0 = no fault, 1 = the harshest
shipped setting) and reports, per (kind, intensity):

* steady-state normalized throughput (same metric as Figure 7),
* delivery ratio and drops by reason,
* **recovery ticks** — extra drain time versus the fault-free baseline
  for the same seeds, i.e. how long the switch needs to work off the
  backlog the fault created.

Every schedule is a pure function of (kind, intensity, settings), every
simulation of (schedule, seed); results are byte-identical at any
``--jobs`` count (see :mod:`repro.harness.parallel`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..faults import (
    DegradationPolicy,
    FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
    KIND_CROSSBAR,
    KIND_FIFO,
    KIND_PHANTOM,
    KIND_STALL,
)
from ..mp5.config import MP5Config
from ..mp5.switch import run_mp5
from ..obs.health import worst_verdict
from ..obs.monitor import InvariantMonitor
from ..workloads.synthetic import make_sensitivity_program, sensitivity_trace
from .parallel import parallel_map
from .report import format_table

BASELINE_KIND = "none"


@dataclass
class ChaosSettings:
    """Scale knobs for the chaos sweep (tests and ``--quick`` shrink
    them; the defaults finish in well under a minute)."""

    num_packets: int = 2000
    seeds: Sequence[int] = (0, 1, 2)
    pattern: str = "uniform"
    num_pipelines: int = 4
    num_stateful: int = 3
    register_size: int = 64
    num_stages: int = 8
    fifo_capacity: int = 16
    intensities: Sequence[float] = (0.25, 0.5, 1.0)
    kinds: Sequence[str] = FAULT_KINDS
    max_ticks_factor: int = 40  # safety cap: ticks <= factor * packets / k
    fault_seed: int = 0  # seeds the schedules' hash-based decisions


@dataclass
class ChaosPoint:
    """Aggregated result of one (fault kind, intensity) cell."""

    kind: str
    intensity: float
    throughput: float
    delivery_ratio: float
    recovery_ticks: float
    drops: float
    phantoms_lost: float
    remap_moves: float
    seeds: int
    # Online-monitor verdicts (worst across seeds; -1 = no critical alert).
    health: str = "ok"
    first_violation_tick: int = -1


def schedule_for(
    kind: str, intensity: float, settings: ChaosSettings
) -> FaultSchedule:
    """The deterministic fault schedule for one sweep cell.

    The fault window opens after one tenth of the estimated run and its
    severity scales linearly with ``intensity``; intensity 0 (or kind
    ``"none"``) is the empty schedule, the fault-free baseline.
    """
    if kind == BASELINE_KIND or intensity <= 0:
        return FaultSchedule(
            faults=[], degradation=DegradationPolicy(), seed=settings.fault_seed
        )
    horizon = max(20, settings.num_packets // max(settings.num_pipelines, 1))
    start = max(1, horizon // 10)
    duration = max(5, int(horizon * 0.5 * intensity))
    if kind == KIND_STALL:
        event = FaultEvent(
            KIND_STALL,
            start=start,
            duration=duration,
            pipeline=1,
            service_rate=max(0.0, 0.5 - 0.5 * intensity),
        )
    elif kind == KIND_PHANTOM:
        event = FaultEvent(
            KIND_PHANTOM,
            start=start,
            duration=duration,
            loss_rate=0.5 * intensity,
            delay=2,
            delay_rate=0.5 * intensity,
        )
    elif kind == KIND_CROSSBAR:
        event = FaultEvent(
            KIND_CROSSBAR, start=start, duration=duration, pipeline=1
        )
    elif kind == KIND_FIFO:
        capacity = max(1, int(settings.fifo_capacity * (1 - 0.75 * intensity)))
        event = FaultEvent(
            KIND_FIFO, start=start, duration=duration, capacity=capacity
        )
    else:
        raise ValueError(f"unknown fault kind {kind!r}")
    return FaultSchedule(
        faults=[event],
        degradation=DegradationPolicy(),
        seed=settings.fault_seed,
    )


def _chaos_run(task) -> Tuple[float, float, int, int, int, int, str, int]:
    """One (kind, intensity, seed) simulation.

    Module-level and tuple-driven so it can cross a process boundary
    (see :func:`repro.harness.sensitivity._seed_point`); the result is a
    pure function of the task regardless of which worker runs it. An
    :class:`InvariantMonitor` rides along and its health verdict and
    first critical-alert tick travel back as picklable scalars.
    """
    settings, kind, intensity, seed = task
    program = make_sensitivity_program(
        num_stateful=settings.num_stateful,
        register_size=settings.register_size,
        num_stages=settings.num_stages,
    )
    config = MP5Config(
        num_pipelines=settings.num_pipelines,
        pipeline_depth=settings.num_stages,
        fifo_capacity=settings.fifo_capacity,
    )
    trace = sensitivity_trace(
        settings.num_packets,
        settings.num_pipelines,
        settings.num_stateful,
        settings.register_size,
        pattern=settings.pattern,
        seed=seed,
    )
    max_ticks = settings.max_ticks_factor * max(
        1, settings.num_packets // max(settings.num_pipelines, 1)
    )
    schedule = schedule_for(kind, intensity, settings)
    monitor = InvariantMonitor()
    stats, _ = run_mp5(
        program, trace, config, max_ticks=max_ticks, faults=schedule,
        monitor=monitor,
    )
    health = monitor.health_report()
    first_tick = health.first_critical_tick
    return (
        stats.throughput_normalized(),
        stats.delivery_ratio,
        stats.ticks,
        stats.dropped,
        stats.phantoms_lost,
        stats.emergency_remap_moves,
        health.verdict,
        -1 if first_tick is None else first_tick,
    )


def run_chaos_sweep(
    settings: Optional[ChaosSettings] = None,
    jobs: Optional[int] = None,
) -> List[ChaosPoint]:
    """Run the full kinds x intensities grid plus the fault-free
    baseline; returns one :class:`ChaosPoint` per cell, baseline first.

    Tasks are enumerated baseline-first then kinds-major / intensities /
    seeds-minor, and :func:`parallel_map` returns results in task order,
    so the aggregation is identical at any job count.
    """
    settings = settings or ChaosSettings()
    seeds = list(settings.seeds)
    cells: List[Tuple[str, float]] = [(BASELINE_KIND, 0.0)]
    for kind in settings.kinds:
        for intensity in settings.intensities:
            cells.append((kind, float(intensity)))
    tasks = [
        (settings, kind, intensity, seed)
        for kind, intensity in cells
        for seed in seeds
    ]
    results = parallel_map(_chaos_run, tasks, jobs=jobs)

    def chunk(i: int) -> List[tuple]:
        return results[i * len(seeds) : (i + 1) * len(seeds)]

    baseline_ticks = float(np.mean([r[2] for r in chunk(0)]))
    points = []
    for i, (kind, intensity) in enumerate(cells):
        rows = chunk(i)
        first_ticks = [r[7] for r in rows if r[7] >= 0]
        points.append(
            ChaosPoint(
                kind=kind,
                intensity=intensity,
                throughput=float(np.mean([r[0] for r in rows])),
                delivery_ratio=float(np.mean([r[1] for r in rows])),
                recovery_ticks=float(
                    np.mean([r[2] for r in rows]) - baseline_ticks
                ),
                drops=float(np.mean([r[3] for r in rows])),
                phantoms_lost=float(np.mean([r[4] for r in rows])),
                remap_moves=float(np.mean([r[5] for r in rows])),
                seeds=len(seeds),
                health=worst_verdict(*[r[6] for r in rows]),
                first_violation_tick=min(first_ticks) if first_ticks else -1,
            )
        )
    return points


def render_chaos(points: List[ChaosPoint]) -> str:
    """Render the sweep as a table (throughput / delivery / recovery /
    online-monitor health)."""
    rows = [
        (
            p.kind,
            f"{p.intensity:.2f}",
            f"{p.throughput:.3f}",
            f"{p.delivery_ratio:.3f}",
            f"{p.recovery_ticks:+.1f}",
            f"{p.drops:.1f}",
            f"{p.remap_moves:.1f}",
            p.health,
            "-" if p.first_violation_tick < 0 else str(p.first_violation_tick),
        )
        for p in points
    ]
    return format_table(
        [
            "fault",
            "intensity",
            "throughput",
            "delivery",
            "recovery",
            "drops",
            "moves",
            "health",
            "first@",
        ],
        rows,
        title="Chaos sweep: degradation and recovery vs fault intensity",
    )
