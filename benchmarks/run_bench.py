"""Standalone performance harness: measure the simulator and the sweep
runner, write the numbers to ``benchmarks/BENCH_mp5.json``.

Two measurements:

* **engine** — the 2000-packet sensitivity workload of
  ``test_mp5_simulation_throughput`` (4 pipelines, 4 stateful stages,
  512-entry registers), best-of-N wall clock and the derived ticks/sec;
* **sweep** — ``run_all(scale="tiny")`` end to end, serial and with
  ``--jobs`` workers, after checking the two produce a byte-identical
  ``results.json``.

The ``seed_baseline`` block records the same engine workload measured
on the pre-fast-path engine (commit ``275ecc4``) **on this reference
host**; re-measure it locally (``git worktree add /tmp/seed 275ecc4``
and run this script there) before trusting the speedup on different
hardware.

A third measurement, **engine_traced**, re-runs the engine workload
with a :class:`repro.obs.TraceRecorder` and metrics registry attached,
so the observability overhead (both enabled and disabled) is tracked
next to the raw numbers. **engine_monitored** does the same with only
the :class:`repro.obs.InvariantMonitor` attached — the cost of the
online invariant checks.

Every completed run (including ``--quick``) also appends one line to
``benchmarks/BENCH_history.jsonl`` — git SHA, timestamp, and all
measurements — so perf is trackable across commits; CI uploads the
file as a workflow artifact.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [--rounds 15] [--jobs 4]
    # CI smoke: fewer rounds, no sweep, fail if the tracing-disabled
    # engine regressed >10% against the committed BENCH_mp5.json:
    PYTHONPATH=src python benchmarks/run_bench.py --quick --check-baseline
"""

from __future__ import annotations

import argparse
import json
import statistics
import subprocess
import tempfile
import time
from pathlib import Path

from repro.harness.runall import run_all
from repro.mp5 import MP5Config, run_mp5
from repro.obs import InvariantMonitor, MetricsRegistry, TraceRecorder
from repro.workloads import (
    clone_packets,
    make_sensitivity_program,
    sensitivity_trace,
)

# The engine workload of benchmarks/test_simulator_performance.py,
# timed on the seed engine (commit 275ecc4) on the reference host:
# best-of-15 0.1272 s, median 0.1459 s for the 2000-packet run.
SEED_BASELINE = {
    "commit": "275ecc4",
    "engine_seconds_min": 0.1272,
    "engine_seconds_median": 0.1459,
}


def bench_engine(
    rounds: int, observed: bool = False, monitored: bool = False
) -> dict:
    program = make_sensitivity_program(4, 512)
    trace = sensitivity_trace(2000, 4, 4, 512, seed=0)
    times = []
    ticks = None
    events = None
    alerts = None
    for _ in range(rounds):
        batch = clone_packets(trace)
        recorder = TraceRecorder() if observed else None
        metrics = MetricsRegistry(window=100) if observed else None
        monitor = InvariantMonitor() if monitored else None
        start = time.perf_counter()
        stats, _ = run_mp5(
            program,
            batch,
            MP5Config(num_pipelines=4),
            recorder=recorder,
            metrics=metrics,
            monitor=monitor,
        )
        times.append(time.perf_counter() - start)
        ticks = stats.ticks
        assert stats.egressed == 2000
        if observed:
            events = len(recorder.events)
        if monitored:
            alerts = len(monitor.alerts)
            assert monitor.health_report().verdict == "ok"
    best = min(times)
    median = statistics.median(times)
    report = {
        "workload": "sensitivity 2000 pkts, k=4, m=4, r=512",
        "rounds": rounds,
        "ticks": ticks,
        "seconds_min": round(best, 4),
        "seconds_median": round(median, 4),
        "ticks_per_sec": round(ticks / best),
        "speedup_vs_seed_min": round(
            SEED_BASELINE["engine_seconds_min"] / best, 2
        ),
        "speedup_vs_seed_median": round(
            SEED_BASELINE["engine_seconds_median"] / median, 2
        ),
    }
    if observed:
        report["events"] = events
    if monitored:
        report["alerts"] = alerts
    return report


def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=Path(__file__).resolve().parent,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def append_history(report: dict, quick: bool, path: Path) -> None:
    """Append one line per completed run: perf over time, by commit."""
    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git_sha": _git_sha(),
        "quick": quick,
        **report,
    }
    with path.open("a") as fh:
        fh.write(json.dumps(record) + "\n")


def check_baseline(engine: dict, baseline: dict, max_regression: float) -> int:
    """Compare the tracing-disabled engine time against the committed
    baseline; returns a nonzero exit code on regression."""
    if not baseline:
        print("no stored baseline; nothing to compare")
        return 0
    base_min = baseline["engine"]["seconds_min"]
    measured = engine["seconds_min"]
    ratio = measured / base_min
    verdict = "OK" if ratio <= 1 + max_regression else "REGRESSION"
    print(
        f"baseline check: measured {measured:.4f}s vs baseline "
        f"{base_min:.4f}s ({ratio:.2%} of baseline, limit "
        f"{1 + max_regression:.0%}) -> {verdict}"
    )
    return 0 if verdict == "OK" else 1


def bench_chaos_smoke(jobs: int) -> dict:
    """Tiny chaos sweep (repro.harness.chaos): checks the fault path
    stays healthy and job-count invariant, and times it."""
    from repro.harness import ChaosSettings, run_chaos_sweep

    settings = ChaosSettings(num_packets=300, seeds=(0,), intensities=(1.0,))
    start = time.perf_counter()
    serial = run_chaos_sweep(settings, jobs=1)
    serial_s = time.perf_counter() - start
    parallel = run_chaos_sweep(settings, jobs=jobs)
    baseline = next(p for p in serial if p.kind == "none")
    return {
        "workload": "chaos sweep, 300 pkts, 4 kinds x intensity 1.0",
        "serial_seconds": round(serial_s, 2),
        "jobs_invariant": serial == parallel,
        "baseline_throughput": round(baseline.throughput, 3),
        "faulted_throughput_min": round(
            min(p.throughput for p in serial if p.kind != "none"), 3
        ),
    }


def bench_sweep(jobs: int) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        serial_dir = Path(tmp) / "serial"
        par_dir = Path(tmp) / "parallel"
        start = time.perf_counter()
        run_all(out_dir=str(serial_dir), scale="tiny", jobs=1)
        serial_s = time.perf_counter() - start
        start = time.perf_counter()
        run_all(out_dir=str(par_dir), scale="tiny", jobs=jobs)
        parallel_s = time.perf_counter() - start
        identical = (serial_dir / "results.json").read_bytes() == (
            par_dir / "results.json"
        ).read_bytes()
    return {
        "workload": 'run_all(scale="tiny")',
        "jobs": jobs,
        "serial_seconds": round(serial_s, 2),
        "parallel_seconds": round(parallel_s, 2),
        "speedup": round(serial_s / parallel_s, 2),
        "results_json_identical": identical,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=15)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: 5 rounds, skip the sweep, don't rewrite the "
        "stored baseline file",
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="exit 1 if the tracing-disabled engine time regressed more "
        "than --max-regression vs the stored BENCH_mp5.json",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.10,
        help="allowed fractional slowdown for --check-baseline "
        "(default 0.10 = 10%%)",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent / "BENCH_mp5.json"),
    )
    parser.add_argument(
        "--history",
        default=str(Path(__file__).resolve().parent / "BENCH_history.jsonl"),
        help="append-only JSONL perf log, one record per completed run",
    )
    args = parser.parse_args()

    out_path = Path(args.out)
    stored_baseline = (
        json.loads(out_path.read_text()) if out_path.exists() else {}
    )
    rounds = 5 if args.quick else args.rounds
    engine = bench_engine(rounds)
    engine_traced = bench_engine(rounds, observed=True)
    engine_monitored = bench_engine(rounds, monitored=True)
    overhead = engine_traced["seconds_min"] / engine["seconds_min"] - 1
    monitor_overhead = engine_monitored["seconds_min"] / engine["seconds_min"] - 1
    chaos = bench_chaos_smoke(args.jobs)
    report = {
        "engine": engine,
        "engine_traced": dict(
            engine_traced, overhead_vs_untraced=round(overhead, 4)
        ),
        "engine_monitored": dict(
            engine_monitored, overhead_vs_unmonitored=round(monitor_overhead, 4)
        ),
        "chaos_smoke": chaos,
        "seed_baseline": SEED_BASELINE,
    }
    if not chaos["jobs_invariant"]:
        raise SystemExit("chaos sweep diverged between serial and parallel")
    if not args.quick:
        report["sweep"] = bench_sweep(args.jobs)
        if not report["sweep"]["results_json_identical"]:
            raise SystemExit("serial and parallel results.json diverged")
        out_path.write_text(json.dumps(report, indent=2) + "\n")
    append_history(report, args.quick, Path(args.history))
    print(json.dumps(report, indent=2))
    if args.check_baseline:
        return check_baseline(engine, stored_baseline, args.max_regression)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
