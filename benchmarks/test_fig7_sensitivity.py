"""Figure 7 (§4.3.3): throughput sensitivity to switch parameters.

Each test regenerates one panel (MP5 + the ideal baseline, averaged over
independent streams) and asserts the paper's shape:

* 7a — throughput decreases with pipeline count, but gently (the paper
  sees a 25% total drop from 1 to 16 pipelines);
* 7b — throughput decreases with stateful-stage count (~20% from 0 to 10);
* 7c — throughput rises with register size from the 1/k floor at size 1;
* 7d — throughput rises with packet size and hits line rate by 128 B;
* everywhere — MP5 stays close to the ideal design.
"""

import pytest

from repro.harness import (
    SweepSettings,
    render_sweep,
    sweep_packet_size,
    sweep_pipelines,
    sweep_register_size,
    sweep_stateful_stages,
)

from conftest import bench_params, run_once

SETTINGS = SweepSettings(**bench_params())

GAP_TOLERANCE = 0.12  # "MP5 closely matches the ideal" (§4.3.3)


def test_fig7a_pipelines(benchmark, show):
    points = run_once(benchmark, lambda: sweep_pipelines(SETTINGS))
    show(render_sweep(points, "7a"))
    tputs = [p.mp5_throughput for p in points]
    # Single pipeline processes at line rate; contention grows with k.
    assert tputs[0] > 0.99
    assert tputs[-1] < tputs[0]
    # The decrease is "not aggressive": <= ~30% from 1 to 16 pipelines.
    assert tputs[0] - tputs[-1] < 0.30
    # Broadly monotone non-increasing (allow small seed noise).
    for a, b in zip(tputs, tputs[1:]):
        assert b <= a + 0.03
    for p in points:
        assert p.gap_to_ideal < GAP_TOLERANCE


def test_fig7b_stateful_stages(benchmark, show):
    points = run_once(benchmark, lambda: sweep_stateful_stages(SETTINGS))
    show(render_sweep(points, "7b"))
    tputs = [p.mp5_throughput for p in points]
    assert tputs[0] > 0.99  # zero stateful stages = stateless = line rate
    assert tputs[-1] < tputs[0]
    assert tputs[0] - tputs[-1] < 0.30  # paper: ~20% drop 0 -> 10
    for a, b in zip(tputs, tputs[1:]):
        assert b <= a + 0.03
    for p in points:
        assert p.gap_to_ideal < GAP_TOLERANCE


def test_fig7c_register_size(benchmark, show):
    points = run_once(benchmark, lambda: sweep_register_size(SETTINGS))
    show(render_sweep(points, "7c"))
    tputs = {p.value: p.mp5_throughput for p in points}
    # Size 1: every packet contends for a single state -> 1/k floor.
    assert tputs[1] == pytest.approx(0.25, abs=0.04)
    # Throughput grows steadily with register size.
    assert tputs[16] > tputs[1]
    assert tputs[256] > tputs[16]
    assert tputs[4096] > 3 * tputs[1]


def test_fig7d_packet_size(benchmark, show):
    points = run_once(benchmark, lambda: sweep_packet_size(SETTINGS))
    show(render_sweep(points, "7d"))
    tputs = {p.value: p.mp5_throughput for p in points}
    # Larger packets widen the processing budget...
    assert tputs[1500] >= tputs[256] >= tputs[64] - 0.02
    # ...and "MP5 hits line rate with packet sizes as small as 128 bytes".
    assert tputs[128] > 0.99
    assert tputs[1500] > 0.99
