"""Stdlib-only HTTP/JSON control plane for the switch daemon.

A deliberately small HTTP/1.1 server over ``asyncio`` streams: one
request per connection (``Connection: close``), JSON bodies in and out.
No routing framework, no content negotiation — the endpoint table in
``docs/service.md`` is the contract, and :class:`ControlPlane` is a
dispatch dict over ``(method, path)`` plus one pattern route for
``/segments/<i>/results``.

Errors map onto status codes via :class:`~repro.service.daemon.
ServiceError` (client mistakes: 400/404/409/429) and
:class:`~repro.errors.ReproError` (400); anything else is a 500 with
the exception text — the daemon itself never dies on a bad request.
"""

from __future__ import annotations

import asyncio
import json
import re
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..errors import ReproError
from .daemon import ServiceError, SwitchService

__all__ = ["ControlPlane"]

MAX_BODY = 32 * 1024 * 1024  # JSON ingest batches can be sizeable
MAX_HEADER_LINES = 100

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

_SEGMENT_RESULTS = re.compile(r"/segments/(\d+)/results")


def _qint(query: Dict, key: str, default: int) -> int:
    try:
        return int(query.get(key, [default])[0])
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"query parameter {key!r} must be an integer") from exc


class ControlPlane:
    """Routes HTTP requests to :class:`SwitchService` operations."""

    def __init__(self, service: SwitchService):
        self.service = service

    async def handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        status, body, raw = 500, {"error": "internal error"}, None
        try:
            method, path, query, payload = await self._read_request(reader)
            status, body, raw = await self._dispatch(method, path, query, payload)
        except ServiceError as exc:
            status, body, raw = exc.status, {"error": str(exc)}, None
        except ReproError as exc:
            status, body, raw = 400, {"error": str(exc)}, None
        except (ConnectionError, asyncio.IncompleteReadError):
            writer.close()
            return
        except Exception as exc:  # keep the daemon alive on handler bugs
            status = 500
            body = {"error": f"{type(exc).__name__}: {exc}"}
            raw = None
        data = raw if raw is not None else json.dumps(body, sort_keys=True).encode()
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Status')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        try:
            writer.write(head.encode() + data)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def _read_request(self, reader) -> Tuple[str, str, Dict, Optional[Dict]]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            raise ServiceError(f"malformed request line {request_line!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        for _ in range(MAX_HEADER_LINES):
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise ServiceError("too many header lines")
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY:
            raise ServiceError("request body too large", status=413)
        payload = None
        if length:
            body = await reader.readexactly(length)
            try:
                payload = json.loads(body)
            except json.JSONDecodeError as exc:
                raise ServiceError(f"invalid JSON body: {exc}") from exc
        split = urlsplit(target)
        query = parse_qs(split.query)
        return method.upper(), split.path.rstrip("/") or "/", query, payload

    async def _dispatch(
        self, method: str, path: str, query: Dict, payload: Optional[Dict]
    ) -> Tuple[int, Dict, Optional[bytes]]:
        svc = self.service
        match = _SEGMENT_RESULTS.fullmatch(path)
        if match:
            if method != "GET":
                raise ServiceError("method not allowed", status=405)
            return 200, {}, svc.segment_results(int(match.group(1))).encode()

        key = (method, path)
        if key == ("GET", "/health"):
            return 200, svc.health(), None
        if key == ("GET", "/status"):
            return 200, svc.status(), None
        if key == ("GET", "/metrics"):
            return 200, svc.metrics_snapshot(_qint(query, "since", -1)), None
        if key == ("GET", "/alerts"):
            return 200, svc.alerts_window(_qint(query, "since", 0)), None
        if key == ("GET", "/segments"):
            return 200, svc.segments_view(), None
        if key == ("POST", "/program"):
            return 200, await svc.load_program(payload or {}), None
        if key == ("POST", "/faults"):
            return 200, await svc.attach_faults(payload or {}), None
        if key == ("DELETE", "/faults"):
            return 200, await svc.detach_faults(), None
        if key == ("POST", "/monitor"):
            enabled = bool((payload or {}).get("enabled", True))
            return 200, await svc.set_monitor(enabled), None
        if key == ("POST", "/config"):
            return 200, await svc.configure(payload or {}), None
        if key == ("POST", "/ingest"):
            return 200, svc.ingest((payload or {}).get("packets", [])), None
        if key == ("POST", "/replay"):
            return 200, await svc.replay(payload or {}), None
        if key == ("POST", "/pause"):
            return 200, await svc.pause(), None
        if key == ("POST", "/resume"):
            return 200, await svc.resume(), None
        if key == ("POST", "/drain"):
            record = await svc.quiesce()
            return 200, {"closed_segment": record}, None
        if key == ("POST", "/shutdown"):
            record = await svc.shutdown()
            return 200, {"stopped": True, "closed_segment": record}, None
        raise ServiceError(f"no route for {method} {path}", status=404)
