"""Tests for the Domino parser."""

import pytest

from repro.domino import (
    Assign,
    BinaryExpr,
    CallExpr,
    If,
    IntLiteral,
    LocalDecl,
    LocalVar,
    PacketField,
    RegisterRef,
    TernaryExpr,
    UnaryExpr,
    parse,
)
from repro.errors import DominoSyntaxError

MINIMAL = """
struct Packet { int a; };
void func(struct Packet p) { p.a = 1; }
"""


def wrap(body: str, regs: str = "", fields: str = "int a; int b;") -> str:
    return (
        f"struct Packet {{ {fields} }};\n{regs}\n"
        f"void func(struct Packet p) {{ {body} }}"
    )


class TestTopLevel:
    def test_minimal_program(self):
        program = parse(MINIMAL)
        assert program.packet_struct.name == "Packet"
        assert program.packet_struct.fields == ["a"]
        assert program.func_name == "func"
        assert program.packet_param == "p"

    def test_multiple_fields_in_order(self):
        program = parse(wrap("p.a = 1;", fields="int x; int y; int z;"))
        assert program.packet_struct.fields == ["x", "y", "z"]

    def test_duplicate_field_rejected(self):
        with pytest.raises(DominoSyntaxError, match="duplicate"):
            parse(wrap("p.a = 1;", fields="int a; int a;"))

    def test_empty_struct_rejected(self):
        with pytest.raises(DominoSyntaxError):
            parse("struct P { };\nvoid f(struct P p) { }")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(DominoSyntaxError):
            parse(MINIMAL + "\nint stray;")


class TestRegisterDecls:
    def test_scalar_register(self):
        program = parse(wrap("p.a = 1;", regs="int count = 7;"))
        reg = program.register_named("count")
        assert reg.is_scalar
        assert reg.size == 1
        assert reg.initial == (7,)

    def test_scalar_default_zero(self):
        program = parse(wrap("p.a = 1;", regs="int count;"))
        assert program.register_named("count").initial == (0,)

    def test_array_register_with_full_initializer(self):
        program = parse(wrap("p.a = 1;", regs="int r[4] = {2, 4, 8, 16};"))
        reg = program.register_named("r")
        assert not reg.is_scalar
        assert reg.initial == (2, 4, 8, 16)

    def test_array_broadcast_initializer(self):
        program = parse(wrap("p.a = 1;", regs="int r[3] = {5};"))
        assert program.register_named("r").initial == (5, 5, 5)

    def test_array_uninitialized_defaults_zero(self):
        program = parse(wrap("p.a = 1;", regs="int r[3];"))
        assert program.register_named("r").initial == (0, 0, 0)

    def test_negative_initializer(self):
        program = parse(wrap("p.a = 1;", regs="int r = -3;"))
        assert program.register_named("r").initial == (-3,)

    def test_wrong_initializer_length_rejected(self):
        with pytest.raises(DominoSyntaxError, match="initializer"):
            parse(wrap("p.a = 1;", regs="int r[4] = {1, 2};"))

    def test_zero_size_array_rejected(self):
        with pytest.raises(DominoSyntaxError, match="positive"):
            parse(wrap("p.a = 1;", regs="int r[0];"))

    def test_register_names_listed(self):
        program = parse(wrap("p.a = 1;", regs="int x; int y[2];"))
        assert program.register_names == ["x", "y"]


class TestStatements:
    def test_packet_field_assign(self):
        program = parse(wrap("p.a = p.b + 1;"))
        stmt = program.body[0]
        assert isinstance(stmt, Assign)
        assert isinstance(stmt.target, PacketField)
        assert stmt.target.field_name == "a"

    def test_register_array_assign(self):
        program = parse(wrap("r[p.a] = 1;", regs="int r[4];"))
        stmt = program.body[0]
        assert isinstance(stmt.target, RegisterRef)
        assert stmt.target.register == "r"

    def test_local_decl(self):
        program = parse(wrap("int tmp = p.a * 2; p.b = tmp;"))
        assert isinstance(program.body[0], LocalDecl)
        assert program.body[0].name == "tmp"

    def test_local_decl_requires_initializer(self):
        with pytest.raises(DominoSyntaxError, match="initialized"):
            parse(wrap("int tmp; p.a = 1;"))

    def test_if_without_else(self):
        program = parse(wrap("if (p.a > 0) { p.b = 1; }"))
        stmt = program.body[0]
        assert isinstance(stmt, If)
        assert stmt.else_body == []

    def test_if_with_else(self):
        program = parse(wrap("if (p.a > 0) { p.b = 1; } else { p.b = 2; }"))
        assert len(program.body[0].else_body) == 1

    def test_else_if_chain(self):
        program = parse(
            wrap("if (p.a == 1) { p.b = 1; } else if (p.a == 2) { p.b = 2; }")
        )
        nested = program.body[0].else_body[0]
        assert isinstance(nested, If)

    def test_missing_semicolon_rejected(self):
        with pytest.raises(DominoSyntaxError):
            parse(wrap("p.a = 1"))


class TestExpressions:
    def expr_of(self, source_expr, regs=""):
        program = parse(wrap(f"p.a = {source_expr};", regs=regs))
        return program.body[0].value

    def test_precedence_mul_over_add(self):
        expr = self.expr_of("1 + 2 * 3")
        assert isinstance(expr, BinaryExpr)
        assert expr.op == "+"
        assert isinstance(expr.right, BinaryExpr)
        assert expr.right.op == "*"

    def test_parentheses_override_precedence(self):
        expr = self.expr_of("(1 + 2) * 3")
        assert expr.op == "*"
        assert isinstance(expr.left, BinaryExpr)

    def test_comparison_precedence(self):
        expr = self.expr_of("p.a + 1 < p.b")
        assert expr.op == "<"

    def test_logical_and_or_precedence(self):
        expr = self.expr_of("p.a == 1 || p.b == 2 && p.a == 3")
        assert expr.op == "||"  # && binds tighter

    def test_ternary(self):
        expr = self.expr_of("p.a ? 1 : 2")
        assert isinstance(expr, TernaryExpr)

    def test_nested_ternary_right_associative(self):
        expr = self.expr_of("p.a ? 1 : p.b ? 2 : 3")
        assert isinstance(expr.if_false, TernaryExpr)

    def test_unary_not(self):
        expr = self.expr_of("!p.a")
        assert isinstance(expr, UnaryExpr)
        assert expr.op == "!"

    def test_unary_minus(self):
        expr = self.expr_of("-p.a")
        assert isinstance(expr, UnaryExpr)

    def test_builtin_call(self):
        expr = self.expr_of("hash2(p.a, p.b)")
        assert isinstance(expr, CallExpr)
        assert expr.func == "hash2"
        assert len(expr.args) == 2

    def test_unknown_function_rejected(self):
        with pytest.raises(DominoSyntaxError, match="unknown function"):
            self.expr_of("foo(p.a)")

    def test_register_read_in_expression(self):
        expr = self.expr_of("r[p.a] + 1", regs="int r[4];")
        assert isinstance(expr.left, RegisterRef)

    def test_bare_identifier_is_localvar_node(self):
        # Disambiguation (local vs scalar register) happens in semantics.
        expr = self.expr_of("count", regs="int count;")
        assert isinstance(expr, LocalVar)

    def test_modulo_chain(self):
        expr = self.expr_of("p.a % 4")
        assert expr.op == "%"
        assert isinstance(expr.right, IntLiteral)

    def test_shift_operators(self):
        expr = self.expr_of("p.a << 2")
        assert expr.op == "<<"

    def test_figure3_source_parses(self):
        from repro.domino import get_source

        program = parse(get_source("figure3"))
        assert program.register_names == ["reg1", "reg2", "reg3"]
        assert len(program.body) == 2
