"""Packet-lifecycle event schema for the MP5 observability layer.

Every event is a plain dict with at least ``type`` and ``tick``; packet
events carry ``pkt`` and the (pipeline, stage) lane they happened in.
Keeping records as dicts (instead of classes) makes JSONL export a
``json.dumps`` per line and lets the Chrome exporter round-trip them
losslessly through the ``args`` field.

Event types
-----------

========== ============================================================
type        meaning
========== ============================================================
ingress     packet entered the switch at a pipeline front (stage 0)
phantom_emit   a phantom was generated toward (pipe, stage) for an array
phantom_match  a data packet replaced its phantom in the stage FIFO
phantom_loss   fault injection lost the phantom in flight (§3.5.1)
steer       movement into a stateful stage (src pipeline recorded;
            src != pipe is a crossbar crossing)
fifo_block  a stage FIFO began a head-of-line blocking episode (a
            phantom at the logical head stalls every queued packet)
fifo_pop    a data packet won the pop; ``wait`` = ticks spent queued
fifo_unblock  the blocking episode ended; ``blocked`` = its length
service     a stage executed its atom for the packet
ecn         the packet was ECN-marked at a congested queue (§3.4)
remap       the background sharding remap ran; ``moves`` arrays changed
egress      the packet left the last stage; ``latency`` in ticks
drop        the packet was dropped; ``reason`` as in SwitchStats
fault_start a fault window opened (:mod:`repro.faults`); ``kind`` plus
            the targeted pipe/stage (null = switch-wide)
fault_end   the fault window closed
emergency_remap  the degradation protocol remapped a failed pipeline's
            indices; ``moved``/``deferred`` counts and the ``attempt``
            number of the drain/retry protocol
========== ============================================================
"""

from __future__ import annotations

from typing import Dict, Iterable, List

EVENT_INGRESS = "ingress"
EVENT_PHANTOM_EMIT = "phantom_emit"
EVENT_PHANTOM_MATCH = "phantom_match"
EVENT_PHANTOM_LOSS = "phantom_loss"
EVENT_STEER = "steer"
EVENT_FIFO_BLOCK = "fifo_block"
EVENT_FIFO_POP = "fifo_pop"
EVENT_FIFO_UNBLOCK = "fifo_unblock"
EVENT_SERVICE = "service"
EVENT_ECN = "ecn"
EVENT_REMAP = "remap"
EVENT_EGRESS = "egress"
EVENT_DROP = "drop"
EVENT_FAULT_START = "fault_start"
EVENT_FAULT_END = "fault_end"
EVENT_EMERGENCY_REMAP = "emergency_remap"

EVENT_TYPES = (
    EVENT_INGRESS,
    EVENT_PHANTOM_EMIT,
    EVENT_PHANTOM_MATCH,
    EVENT_PHANTOM_LOSS,
    EVENT_STEER,
    EVENT_FIFO_BLOCK,
    EVENT_FIFO_POP,
    EVENT_FIFO_UNBLOCK,
    EVENT_SERVICE,
    EVENT_ECN,
    EVENT_REMAP,
    EVENT_EGRESS,
    EVENT_DROP,
    EVENT_FAULT_START,
    EVENT_FAULT_END,
    EVENT_EMERGENCY_REMAP,
)


def events_by_tick(events: Iterable[Dict]) -> Dict[int, List[Dict]]:
    """Group an event stream by tick, preserving intra-tick order."""
    grouped: Dict[int, List[Dict]] = {}
    for event in events:
        grouped.setdefault(event["tick"], []).append(event)
    return grouped


def canonical_form(events: Iterable[Dict]) -> Dict[int, List[str]]:
    """Tick-grouped, intra-tick-order-free view of an event stream.

    The fast and reference engines visit packets in different orders
    *within* a tick (worklist vs dense scan), which is unobservable —
    the differential tests compare streams in this form.
    """
    return {
        tick: sorted(repr(sorted(e.items())) for e in group)
        for tick, group in events_by_tick(events).items()
    }
