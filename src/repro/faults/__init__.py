"""Deterministic fault injection and graceful degradation for MP5.

The paper evaluates a healthy switch; this package asks what survives
when the mechanisms themselves fail: pipeline stalls/slowdowns (D1's
identical pipelines stop being interchangeable), phantom-channel loss
and late delivery (stressing D4's ordering enforcement and the §3.5.1
`phantoms_lost` recovery path), crossbar port failures (D3 steering
down, making a pipeline's sharded indices unreachable), and mid-run
FIFO capacity shrinks.

Two layers:

* :mod:`repro.faults.schedule` — the declarative, JSON-serializable
  :class:`FaultSchedule` (what breaks, where, when, under which
  :class:`DegradationPolicy`);
* :mod:`repro.faults.injector` — the per-run :class:`FaultInjector`
  state machine both engines drive at each tick boundary.

The degraded contract (checked by
:func:`repro.equivalence.check_degraded`): C1 — per-state arrival-order
access — still holds for every packet that is *not* dropped, and every
drop is accounted by reason. Both engines under the same schedule
produce identical surviving-packet state and canonical event streams
(``tests/test_faults.py``).

Usage::

    from repro.faults import FaultEvent, FaultSchedule
    from repro.mp5 import MP5Config, run_mp5

    schedule = FaultSchedule(faults=[
        FaultEvent("pipeline_stall", start=40, duration=30, pipeline=1),
    ])
    stats, regs = run_mp5(program, trace, MP5Config(), faults=schedule)
    print(stats.drops_by_reason, stats.emergency_remap_moves)
"""

from .injector import FaultInjector
from .schedule import (
    FAULT_KINDS,
    KIND_CROSSBAR,
    KIND_FIFO,
    KIND_PHANTOM,
    KIND_STALL,
    DegradationPolicy,
    FaultEvent,
    FaultSchedule,
    generate_schedule,
)

__all__ = [
    "DegradationPolicy",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "KIND_CROSSBAR",
    "KIND_FIFO",
    "KIND_PHANTOM",
    "KIND_STALL",
    "generate_schedule",
]
