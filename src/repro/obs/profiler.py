"""Lightweight section timer for the fast-path phases of one tick.

The switch calls :meth:`PhaseProfiler.begin` at the top of ``_step`` and
:meth:`PhaseProfiler.lap` at each phase boundary; each lap accumulates
the wall-clock time since the previous one under the phase's name. When
no profiler is attached the engine skips the calls behind a single
attribute check, so profiling costs nothing disabled.

The vector engine has no per-tick loop to lap, so it reports through
the coarser channels instead: :meth:`record_span` for its Phase A
(timing sweep) / Phase B (service) / trace-reconstruction sections,
:meth:`record_kernel` for per-stage service timings tagged with the
kernel tier that ran (``njit`` / ``python`` / ``numpy`` / ``scalar`` /
``pool``), :meth:`record_pool` for epoch-pool worker and shared-memory
gauges, and :meth:`record_epoch` for the epoch boundaries Phase A
resolved. All four stay empty on the scalar engines, so their
``to_dict()`` output is unchanged.

``report()`` renders the breakdown the CLI prints under ``--profile``.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional


class PhaseProfiler:
    """Accumulates per-phase wall-clock time across ticks."""

    __slots__ = ("totals", "ticks", "_t0", "spans", "kernels", "pool", "epochs")

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}
        self.ticks = 0
        self._t0 = 0.0
        # Vector-engine channels (empty on the scalar engines).
        self.spans: Dict[str, float] = {}
        self.kernels: Dict[str, Dict] = {}
        self.pool: Dict[str, int] = {}
        self.epochs: List[Dict] = []

    def begin(self) -> None:
        self._t0 = perf_counter()

    def lap(self, phase: str) -> None:
        now = perf_counter()
        self.totals[phase] = self.totals.get(phase, 0.0) + (now - self._t0)
        self._t0 = now

    def end_tick(self) -> None:
        self.ticks += 1

    # ------------------------------------------------------------------
    # Vector-engine channels
    # ------------------------------------------------------------------

    def record_span(self, name: str, seconds: float) -> None:
        """Accumulate one named coarse section (phase_a/phase_b/...)."""
        self.spans[name] = self.spans.get(name, 0.0) + seconds

    def record_kernel(self, stage: int, tier: str, seconds: float) -> None:
        """Accumulate one stage's service time under the tier that ran."""
        entry = self.kernels.setdefault(
            f"s{stage}", {"tier": tier, "seconds": 0.0, "calls": 0}
        )
        entry["tier"] = tier
        entry["seconds"] += seconds
        entry["calls"] += 1

    def record_pool(
        self,
        workers: Optional[int] = None,
        shared_bytes: Optional[int] = None,
        tasks: Optional[int] = None,
    ) -> None:
        """Epoch-pool gauges: peak worker count and shared-memory
        segment size, cumulative task count."""
        if workers is not None:
            self.pool["workers"] = max(self.pool.get("workers", 0), workers)
        if shared_bytes is not None:
            self.pool["shared_bytes"] = max(
                self.pool.get("shared_bytes", 0), shared_bytes
            )
        if tasks is not None:
            self.pool["tasks"] = self.pool.get("tasks", 0) + tasks

    def record_epoch(
        self, index: int, start: int, end: int, remap_moves: Optional[int] = None
    ) -> None:
        """One Phase A epoch: ``[start, end)`` in ticks; ``remap_moves``
        is the boundary's remap outcome (None for the final span)."""
        entry = {"epoch": index, "start": start, "end": end}
        if remap_moves is not None:
            entry["remap_moves"] = remap_moves
        self.epochs.append(entry)

    # ------------------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        return sum(self.totals.values())

    def to_dict(self) -> Dict:
        out = {
            "ticks": self.ticks,
            "seconds": dict(self.totals),
            "total_seconds": self.total_seconds,
        }
        if self.spans:
            out["spans"] = dict(self.spans)
        if self.kernels:
            out["kernels"] = {k: dict(v) for k, v in self.kernels.items()}
        if self.pool:
            out["pool"] = dict(self.pool)
        if self.epochs:
            out["epochs"] = [dict(e) for e in self.epochs]
        return out

    def report(self) -> str:
        """Phase breakdown table, heaviest phase first."""
        total = self.total_seconds or 1.0
        ticks = self.ticks or 1
        headers = ("phase", "seconds", "share", "us/tick")
        rows = [
            (
                phase,
                f"{seconds:.4f}",
                f"{100 * seconds / total:5.1f}%",
                f"{1e6 * seconds / ticks:8.2f}",
            )
            for phase, seconds in sorted(
                self.totals.items(), key=lambda kv: kv[1], reverse=True
            )
        ]
        rows.append(
            (
                "total",
                f"{self.total_seconds:.4f}",
                "100.0%",
                f"{1e6 * self.total_seconds / ticks:8.2f}",
            )
        )
        widths = [
            max(len(headers[i]), max((len(r[i]) for r in rows), default=0))
            for i in range(len(headers))
        ]

        def line(cells) -> str:
            return "  ".join(c.rjust(widths[i]) for i, c in enumerate(cells))

        out: List[str] = [
            f"Fast-path phase breakdown over {self.ticks} ticks",
            line(headers),
            line(["-" * w for w in widths]),
        ]
        out.extend(line(row) for row in rows)
        for section in self._vector_sections():
            out.append("")
            out.append(section)
        return "\n".join(out)

    def _vector_sections(self) -> List[str]:
        """Vector-engine report sections (empty for scalar runs)."""
        sections: List[str] = []
        if self.spans:
            total = sum(self.spans.values()) or 1.0
            lines = ["Vector phase breakdown"]
            for name, seconds in sorted(
                self.spans.items(), key=lambda kv: kv[1], reverse=True
            ):
                lines.append(
                    f"  {name:<18} {seconds:.4f}s  "
                    f"{100 * seconds / total:5.1f}%"
                )
            sections.append("\n".join(lines))
        if self.kernels:
            lines = ["Service kernel tiers (per stage)"]
            for stage, entry in sorted(self.kernels.items()):
                lines.append(
                    f"  {stage:<6} tier={entry['tier']:<7} "
                    f"calls={entry['calls']:<4} {entry['seconds']:.4f}s"
                )
            sections.append("\n".join(lines))
        if self.pool:
            parts = " ".join(
                f"{key}={self.pool[key]}" for key in sorted(self.pool)
            )
            sections.append(f"Epoch pool: {parts}")
        if self.epochs:
            bounds = ", ".join(
                f"[{e['start']}, {e['end']})" for e in self.epochs[:8]
            )
            more = (
                f" ... {len(self.epochs) - 8} more"
                if len(self.epochs) > 8
                else ""
            )
            sections.append(
                f"Epochs: {len(self.epochs)} resolved — {bounds}{more}"
            )
        return sections
