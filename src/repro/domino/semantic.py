"""Semantic analysis for parsed Domino programs.

Responsibilities:

* disambiguate bare identifiers into local variables vs. scalar registers
  (the parser cannot tell them apart), rewriting the AST in place;
* verify every name is declared before use, packet fields exist in the
  struct, and locals are not redeclared or shadowed by registers;
* verify single-assignment discipline for locals (Domino locals are
  immutable bindings, matching the three-address-code lowering);
* collect, per register array, whether any *index* expression reads
  register state — the property §3.3 of the paper uses to decide whether
  preemptive address resolution is possible for that array.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from ..errors import DominoSemanticError
from .ast_nodes import (
    Assign,
    BinaryExpr,
    CallExpr,
    Expr,
    If,
    IntLiteral,
    LocalDecl,
    LocalVar,
    PacketField,
    Program,
    RegisterRef,
    Stmt,
    TernaryExpr,
    UnaryExpr,
)

_BUILTIN_ARITY = {"hash2": 2, "hash3": 3, "hash5": 5, "min": 2, "max": 2}


@dataclass
class SemanticInfo:
    """Facts gathered by analysis, consumed by the compiler."""

    packet_fields: Set[str] = field(default_factory=set)
    local_names: Set[str] = field(default_factory=set)
    # Register arrays whose index expression (somewhere in the program)
    # itself reads register state -> cannot be preemptively resolved.
    stateful_index_registers: Set[str] = field(default_factory=set)
    # Registers read or written anywhere in the program.
    registers_used: Set[str] = field(default_factory=set)
    # Packet fields written by the program (for equivalence checking).
    fields_written: Set[str] = field(default_factory=set)


class SemanticAnalyzer:
    """Checks a parsed :class:`Program` and normalizes its AST."""

    def __init__(self, program: Program):
        self.program = program
        self.register_names: Set[str] = set(program.register_names)
        self.packet_fields: Set[str] = set(program.packet_struct.fields)
        self.info = SemanticInfo(packet_fields=set(self.packet_fields))

    def analyze(self) -> SemanticInfo:
        """Check the whole program; returns the gathered facts."""
        if len(self.register_names) != len(self.program.registers):
            names = [r.name for r in self.program.registers]
            dupes = {n for n in names if names.count(n) > 1}
            raise DominoSemanticError(f"duplicate register declaration: {sorted(dupes)}")
        overlap = self.register_names & self.packet_fields
        # Register names and packet field names live in different syntactic
        # namespaces (p.f vs f) so overlap is legal; nothing to reject.
        del overlap
        declared_locals: Set[str] = set()
        self._check_block(self.program.body, declared_locals)
        self.info.local_names = declared_locals
        return self.info

    # ------------------------------------------------------------------
    # Statement checking
    # ------------------------------------------------------------------

    def _check_block(self, body: List[Stmt], locals_in_scope: Set[str]) -> None:
        for stmt in body:
            self._check_stmt(stmt, locals_in_scope)

    def _check_stmt(self, stmt: Stmt, locals_in_scope: Set[str]) -> None:
        if isinstance(stmt, LocalDecl):
            if stmt.name in locals_in_scope:
                raise DominoSemanticError(
                    f"local {stmt.name!r} redeclared", stmt.line, stmt.column
                )
            if stmt.name in self.register_names:
                raise DominoSemanticError(
                    f"local {stmt.name!r} shadows a register", stmt.line, stmt.column
                )
            stmt.value = self._check_expr(stmt.value, locals_in_scope)
            locals_in_scope.add(stmt.name)
        elif isinstance(stmt, Assign):
            stmt.target = self._check_lvalue(stmt.target, locals_in_scope)
            stmt.value = self._check_expr(stmt.value, locals_in_scope)
            if isinstance(stmt.target, PacketField):
                self.info.fields_written.add(stmt.target.field_name)
        elif isinstance(stmt, If):
            stmt.condition = self._check_expr(stmt.condition, locals_in_scope)
            # Locals declared inside a branch stay visible afterwards only
            # if declared in both branches; we keep it simple and forbid
            # branch-local declarations entirely, matching Domino's
            # flattening into predicated straight-line code.
            self._forbid_local_decls(stmt.then_body)
            self._forbid_local_decls(stmt.else_body)
            self._check_block(stmt.then_body, locals_in_scope)
            self._check_block(stmt.else_body, locals_in_scope)
        else:  # pragma: no cover - parser only produces the above
            raise DominoSemanticError(f"unknown statement {stmt!r}")

    def _forbid_local_decls(self, body: List[Stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, LocalDecl):
                raise DominoSemanticError(
                    "local declarations are not allowed inside if branches "
                    "(declare before the if)",
                    stmt.line,
                    stmt.column,
                )

    def _check_lvalue(self, target: Expr, locals_in_scope: Set[str]) -> Expr:
        if isinstance(target, PacketField):
            if target.field_name not in self.packet_fields:
                raise DominoSemanticError(
                    f"unknown packet field {target.field_name!r}",
                    target.line,
                    target.column,
                )
            return target
        if isinstance(target, RegisterRef):
            return self._check_register_ref(target, locals_in_scope)
        if isinstance(target, LocalVar):
            if target.name in self.register_names:
                # Bare scalar register write: count = count + 1.
                reg = self.program.register_named(target.name)
                if not reg.is_scalar:
                    raise DominoSemanticError(
                        f"register array {target.name!r} written without index",
                        target.line,
                        target.column,
                    )
                self.info.registers_used.add(target.name)
                return RegisterRef(
                    register=target.name,
                    index=IntLiteral(value=0),
                    line=target.line,
                    column=target.column,
                )
            if target.name not in locals_in_scope:
                raise DominoSemanticError(
                    f"assignment to undeclared name {target.name!r}",
                    target.line,
                    target.column,
                )
            return target
        raise DominoSemanticError(f"invalid assignment target {target}")

    # ------------------------------------------------------------------
    # Expression checking / normalization
    # ------------------------------------------------------------------

    def _check_expr(self, expr: Expr, locals_in_scope: Set[str]) -> Expr:
        if isinstance(expr, IntLiteral):
            return expr
        if isinstance(expr, PacketField):
            if expr.field_name not in self.packet_fields:
                raise DominoSemanticError(
                    f"unknown packet field {expr.field_name!r}", expr.line, expr.column
                )
            return expr
        if isinstance(expr, LocalVar):
            if expr.name in self.register_names:
                reg = self.program.register_named(expr.name)
                if not reg.is_scalar:
                    raise DominoSemanticError(
                        f"register array {expr.name!r} read without index",
                        expr.line,
                        expr.column,
                    )
                self.info.registers_used.add(expr.name)
                return RegisterRef(
                    register=expr.name,
                    index=IntLiteral(value=0),
                    line=expr.line,
                    column=expr.column,
                )
            if expr.name not in locals_in_scope:
                raise DominoSemanticError(
                    f"use of undeclared name {expr.name!r}", expr.line, expr.column
                )
            return expr
        if isinstance(expr, RegisterRef):
            return self._check_register_ref(expr, locals_in_scope)
        if isinstance(expr, UnaryExpr):
            expr.operand = self._check_expr(expr.operand, locals_in_scope)
            return expr
        if isinstance(expr, BinaryExpr):
            expr.left = self._check_expr(expr.left, locals_in_scope)
            expr.right = self._check_expr(expr.right, locals_in_scope)
            if expr.op in ("/", "%") and isinstance(expr.right, IntLiteral):
                if expr.right.value == 0:
                    raise DominoSemanticError(
                        "division by constant zero", expr.line, expr.column
                    )
            return expr
        if isinstance(expr, TernaryExpr):
            expr.condition = self._check_expr(expr.condition, locals_in_scope)
            expr.if_true = self._check_expr(expr.if_true, locals_in_scope)
            expr.if_false = self._check_expr(expr.if_false, locals_in_scope)
            return expr
        if isinstance(expr, CallExpr):
            arity = _BUILTIN_ARITY.get(expr.func)
            if arity is None:
                raise DominoSemanticError(
                    f"unknown builtin {expr.func!r}", expr.line, expr.column
                )
            if len(expr.args) != arity:
                raise DominoSemanticError(
                    f"builtin {expr.func!r} takes {arity} arguments, got "
                    f"{len(expr.args)}",
                    expr.line,
                    expr.column,
                )
            expr.args = [self._check_expr(a, locals_in_scope) for a in expr.args]
            return expr
        raise DominoSemanticError(f"unknown expression {expr!r}")

    def _check_register_ref(self, ref: RegisterRef, locals_in_scope: Set[str]) -> Expr:
        if ref.register not in self.register_names:
            raise DominoSemanticError(
                f"unknown register {ref.register!r}", ref.line, ref.column
            )
        self.info.registers_used.add(ref.register)
        if ref.index is None:
            ref.index = IntLiteral(value=0)
        ref.index = self._check_expr(ref.index, locals_in_scope)
        if expr_reads_register(ref.index):
            self.info.stateful_index_registers.add(ref.register)
        return ref


def expr_reads_register(expr: Expr) -> bool:
    """True if evaluating ``expr`` requires reading any register state."""
    if isinstance(expr, RegisterRef):
        return True
    if isinstance(expr, UnaryExpr):
        return expr_reads_register(expr.operand)
    if isinstance(expr, BinaryExpr):
        return expr_reads_register(expr.left) or expr_reads_register(expr.right)
    if isinstance(expr, TernaryExpr):
        return (
            expr_reads_register(expr.condition)
            or expr_reads_register(expr.if_true)
            or expr_reads_register(expr.if_false)
        )
    if isinstance(expr, CallExpr):
        return any(expr_reads_register(a) for a in expr.args)
    return False


def analyze(program: Program) -> SemanticInfo:
    """Run semantic analysis on ``program``, normalizing its AST in place."""
    return SemanticAnalyzer(program).analyze()
