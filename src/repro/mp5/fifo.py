"""Per-stage FIFOs implementing MP5's three queue operations (§3.2).

Each stateful stage input has *k* FIFOs, one per source pipeline, so that
up to *k* packets can enter the stage in the same clock cycle without
contention. Physically each FIFO is a ring buffer; logically the k FIFOs
behave as a single FIFO offering:

* ``push(pkt, fifo_id)``  — append (data or phantom) to a ring buffer's
  tail, timestamping it; full buffer => drop. Phantom positions are
  recorded in a directory keyed by packet id.
* ``insert(pkt, fifo_id)`` — replace the packet's phantom, *in place*,
  with the data packet (the data packet inherits the phantom's position
  and timestamp, i.e. its order). Missing directory entry => drop.
* ``pop()`` — look at the k ring-buffer heads, take the entry with the
  smallest timestamp. A phantom head blocks the pop entirely: packets
  that arrived later must wait for the placeholder's data packet — this
  is the D4 ordering enforcement (and the head-of-line blocking noted as
  practical limitation (2) in §3.5.2).

An :class:`IdealOrderBuffer` variant keeps one virtual FIFO per register
index, removing head-of-line blocking across indexes; it is the queue
model of the "ideal MP5" baseline in §4.3.3.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple, Union

from ..errors import ConfigError
from .packet import DataPacket, PhantomPacket

_seq_counter = itertools.count()

Timestamp = Tuple[int, int]  # (tick, global sequence) — unique and ordered


@dataclass
class Slot:
    """One ring-buffer entry. ``payload`` flips from phantom to data when
    ``insert`` replaces the placeholder."""

    timestamp: Timestamp
    payload: Union[DataPacket, PhantomPacket]
    consumed: bool = False

    @property
    def is_phantom(self) -> bool:
        return isinstance(self.payload, PhantomPacket)


class StageFifoGroup:
    """The k ring buffers at one (pipeline, stage) input."""

    def __init__(self, num_pipelines: int, capacity: Optional[int] = None):
        if num_pipelines < 1:
            raise ConfigError("need at least one pipeline FIFO")
        if capacity is not None and capacity < 1:
            raise ConfigError("FIFO capacity must be positive (or None)")
        self.num_pipelines = num_pipelines
        self.capacity = capacity
        self.buffers: List[Deque[Slot]] = [deque() for _ in range(num_pipelines)]
        # Directory: packet id -> slot holding its phantom. The paper's
        # directory is indexed by packet id; one outstanding phantom per
        # (packet, stage) holds because a packet accesses at most one
        # array per stage after the MP5 transform.
        self.directory: Dict[int, Slot] = {}
        self.drops_full = 0
        self.drops_no_phantom = 0
        self.peak_occupancy = 0

    # ------------------------------------------------------------------

    def _stamp(self, tick: int) -> Timestamp:
        return (tick, next(_seq_counter))

    def _note_occupancy(self) -> None:
        total = sum(len(b) for b in self.buffers)
        if total > self.peak_occupancy:
            self.peak_occupancy = total

    def occupancy(self) -> int:
        return sum(len(b) for b in self.buffers)

    def data_occupancy(self) -> int:
        return sum(
            1 for b in self.buffers for s in b if not s.is_phantom and not s.consumed
        )

    # ------------------------------------------------------------------
    # The three §3.2 operations
    # ------------------------------------------------------------------

    def push(
        self, pkt: Union[DataPacket, PhantomPacket], fifo_id: int, tick: int
    ) -> bool:
        """Append to the tail of ring buffer ``fifo_id``. Returns False
        (packet dropped) when the buffer is full."""
        buffer = self.buffers[fifo_id]
        if self.capacity is not None and len(buffer) >= self.capacity:
            self.drops_full += 1
            return False
        slot = Slot(timestamp=self._stamp(tick), payload=pkt)
        buffer.append(slot)
        if isinstance(pkt, PhantomPacket):
            self.directory[pkt.pkt_id] = slot
        self._note_occupancy()
        return True

    def insert(self, pkt: DataPacket, tick: int) -> bool:
        """Replace the packet's phantom with the data packet, in place.

        Returns False when no phantom is present (it was dropped on a
        full FIFO), in which case the data packet must be dropped too.
        """
        slot = self.directory.pop(pkt.pkt_id, None)
        if slot is None or slot.consumed:
            self.drops_no_phantom += 1
            return False
        slot.payload = pkt
        return True

    def pop(self) -> Optional[DataPacket]:
        """Remove and return the oldest head if it is a data packet.

        A phantom at the oldest head blocks the whole logical FIFO (no
        action taken), enforcing arrival-order state access.
        """
        self._drop_consumed_heads()
        best: Optional[Deque[Slot]] = None
        best_slot: Optional[Slot] = None
        for buffer in self.buffers:
            if not buffer:
                continue
            head = buffer[0]
            if best_slot is None or head.timestamp < best_slot.timestamp:
                best_slot = head
                best = buffer
        if best_slot is None:
            return None
        if best_slot.is_phantom:
            return None  # blocked: placeholder awaits its data packet
        best.popleft()
        return best_slot.payload  # type: ignore[return-value]

    # ------------------------------------------------------------------

    def _drop_consumed_heads(self) -> None:
        for buffer in self.buffers:
            while buffer and buffer[0].consumed:
                buffer.popleft()

    def head_data_age(self, tick: int) -> Optional[int]:
        """Age (in ticks) of the oldest head if it is a data packet."""
        self._drop_consumed_heads()
        best_slot: Optional[Slot] = None
        for buffer in self.buffers:
            if buffer and (
                best_slot is None or buffer[0].timestamp < best_slot.timestamp
            ):
                best_slot = buffer[0]
        if best_slot is None or best_slot.is_phantom:
            return None
        return tick - best_slot.timestamp[0]

    def expire_phantom(self, pkt_id: int) -> bool:
        """Retire a phantom whose data packet will never come (used when a
        data packet is dropped upstream). Marks the slot consumed so it
        no longer blocks the queue."""
        slot = self.directory.pop(pkt_id, None)
        if slot is None:
            return False
        slot.consumed = True
        return True


class IdealOrderBuffer:
    """Queue model of the ideal MP5 baseline: one virtual FIFO per
    register index, so a blocked index never blocks others.

    Exposes the same push/insert/pop surface as :class:`StageFifoGroup`
    (capacity is unbounded — the ideal design has no practical limits).
    """

    def __init__(self, num_pipelines: int, capacity: Optional[int] = None):
        self.num_pipelines = num_pipelines
        self.capacity = capacity  # accepted for interface parity; unused
        self.queues: Dict[Tuple[str, Optional[int]], Deque[Slot]] = {}
        self.directory: Dict[int, Tuple[Slot, Tuple[str, Optional[int]]]] = {}
        self.drops_full = 0
        self.drops_no_phantom = 0
        self.peak_occupancy = 0

    def _stamp(self, tick: int) -> Timestamp:
        return (tick, next(_seq_counter))

    def _note_occupancy(self) -> None:
        total = sum(len(q) for q in self.queues.values())
        if total > self.peak_occupancy:
            self.peak_occupancy = total

    def occupancy(self) -> int:
        return sum(len(q) for q in self.queues.values())

    def data_occupancy(self) -> int:
        return sum(
            1
            for q in self.queues.values()
            for s in q
            if not s.is_phantom and not s.consumed
        )

    def push(
        self, pkt: Union[DataPacket, PhantomPacket], fifo_id: int, tick: int
    ) -> bool:
        if not isinstance(pkt, PhantomPacket):
            raise ConfigError("IdealOrderBuffer queues via phantoms only")
        key = (pkt.array, pkt.index)
        slot = Slot(timestamp=self._stamp(tick), payload=pkt)
        self.queues.setdefault(key, deque()).append(slot)
        self.directory[pkt.pkt_id] = (slot, key)
        self._note_occupancy()
        return True

    def insert(self, pkt: DataPacket, tick: int) -> bool:
        entry = self.directory.pop(pkt.pkt_id, None)
        if entry is None or entry[0].consumed:
            self.drops_no_phantom += 1
            return False
        entry[0].payload = pkt
        return True

    def pop(self) -> Optional[DataPacket]:
        best_key = None
        best_slot: Optional[Slot] = None
        for key, queue in self.queues.items():
            while queue and queue[0].consumed:
                queue.popleft()
            if not queue:
                continue
            head = queue[0]
            if head.is_phantom:
                continue  # this index waits; others may proceed
            if best_slot is None or head.timestamp < best_slot.timestamp:
                best_slot = head
                best_key = key
        if best_slot is None:
            return None
        self.queues[best_key].popleft()
        return best_slot.payload  # type: ignore[return-value]

    def head_data_age(self, tick: int) -> Optional[int]:
        ages = []
        for queue in self.queues.values():
            if queue and not queue[0].is_phantom and not queue[0].consumed:
                ages.append(tick - queue[0].timestamp[0])
        return max(ages) if ages else None

    def expire_phantom(self, pkt_id: int) -> bool:
        entry = self.directory.pop(pkt_id, None)
        if entry is None:
            return False
        entry[0].consumed = True
        return True
