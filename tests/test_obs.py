"""Tests for the observability subsystem (repro.obs).

Covers the trace recorder and its two export formats, the metrics
registry, the phase profiler, the trace summarizer, and the engine
integration (events recorded during real simulation runs, attachment
rules, and the disabled-by-default invariant).
"""

import json

import pytest

from repro.errors import ConfigError
from repro.mp5 import MP5Config, MP5Switch, run_mp5
from repro.obs import (
    EVENT_TYPES,
    MetricsRegistry,
    PhaseProfiler,
    TraceRecorder,
    canonical_form,
    chrome_trace,
    events_by_tick,
    events_from_chrome,
    load_trace,
    read_jsonl,
    render_trace_summary,
    summarize_trace,
    write_chrome,
    write_jsonl,
)
from repro.workloads.synthetic import make_sensitivity_program, sensitivity_trace


def _recorded_run(num_packets=300, **config_kwargs):
    program = make_sensitivity_program(num_stateful=4, register_size=64)
    recorder = TraceRecorder()
    stats, _ = run_mp5(
        program,
        sensitivity_trace(num_packets, 4, 4, 64, seed=0),
        MP5Config(num_pipelines=4, **config_kwargs),
        recorder=recorder,
    )
    return recorder, stats


class TestTraceRecorder:
    def test_emitters_build_typed_records(self):
        rec = TraceRecorder()
        rec.ingress(0, 1, 2, 7, 42)
        rec.phantom_emit(0, 1, 2, 3, "reg", 5)
        rec.phantom_match(1, 1, 2, 3)
        rec.fifo_pop(4, 1, 2, 3)
        rec.egress(9, 1, 9.0)
        types = [e["type"] for e in rec.events]
        assert types == [
            "ingress", "phantom_emit", "phantom_match", "fifo_pop", "egress",
        ]
        for event in rec.events:
            assert event["type"] in EVENT_TYPES

    def test_pop_wait_measured_from_match(self):
        rec = TraceRecorder()
        rec.phantom_match(3, 9, 0, 1)
        rec.fifo_pop(10, 9, 0, 1)
        assert rec.events[-1]["wait"] == 7

    def test_pop_without_match_has_zero_wait(self):
        rec = TraceRecorder()
        rec.fifo_pop(10, 9, 0, 1)
        assert rec.events[-1]["wait"] == 0

    def test_block_episodes_deduplicated(self):
        rec = TraceRecorder()
        rec.fifo_block(5, 0, 1)
        rec.fifo_block(6, 0, 1)  # same episode: no second record
        rec.fifo_block(6, 1, 1)  # different lane: its own episode
        rec.fifo_pop(9, 3, 0, 1)
        types = [e["type"] for e in rec.events]
        assert types == ["fifo_block", "fifo_block", "fifo_pop", "fifo_unblock"]
        unblock = rec.events[-1]
        assert unblock["blocked"] == 4  # ticks 5..9

    def test_len_counts_events(self):
        rec = TraceRecorder()
        assert len(rec) == 0
        rec.remap(100, 2)
        assert len(rec) == 1


class TestEventHelpers:
    def test_events_by_tick_groups(self):
        rec = TraceRecorder()
        rec.ingress(0, 0, 0, 0, None)
        rec.ingress(0, 1, 1, 1, None)
        rec.egress(5, 0, 5.0)
        grouped = events_by_tick(rec.events)
        assert sorted(grouped) == [0, 5]
        assert len(grouped[0]) == 2

    def test_canonical_form_ignores_within_tick_order(self):
        a, b = TraceRecorder(), TraceRecorder()
        a.ingress(0, 0, 0, 0, None)
        a.ingress(0, 1, 1, 1, None)
        b.ingress(0, 1, 1, 1, None)
        b.ingress(0, 0, 0, 0, None)
        assert canonical_form(a.events) == canonical_form(b.events)

    def test_canonical_form_distinguishes_across_ticks(self):
        a, b = TraceRecorder(), TraceRecorder()
        a.egress(1, 0, 1.0)
        b.egress(2, 0, 2.0)
        assert canonical_form(a.events) != canonical_form(b.events)


class TestExports:
    def test_jsonl_round_trip(self, tmp_path):
        rec, _ = _recorded_run(num_packets=100)
        path = tmp_path / "run.jsonl"
        write_jsonl(rec.events, path, meta={"program": "synthetic"})
        header, events = read_jsonl(path)
        assert header["format"] == "mp5-trace-events"
        assert header["program"] == "synthetic"
        assert events == rec.events

    def test_jsonl_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"hello": 1}\n')
        with pytest.raises(ValueError):
            read_jsonl(path)

    def test_chrome_trace_structure(self):
        rec, _ = _recorded_run(num_packets=100)
        doc = chrome_trace(rec.events)
        records = doc["traceEvents"]
        meta = [r for r in records if r["ph"] == "M"]
        data = [r for r in records if r["ph"] != "M"]
        assert len(data) == len(rec.events)
        # One process per pipeline (plus the laneless switch process),
        # one named thread lane per (pipeline, stage) seen in the trace.
        process_names = {
            r["args"]["name"] for r in meta if r["name"] == "process_name"
        }
        assert "pipeline 0" in process_names and "switch" in process_names
        thread_names = {
            (r["pid"], r["args"]["name"])
            for r in meta
            if r["name"] == "thread_name"
        }
        assert (1, "stage 0") in thread_names
        # Service events render as duration slices, instants elsewhere.
        assert {r["ph"] for r in data} <= {"X", "i"}
        assert any(r["ph"] == "X" for r in data)

    def test_chrome_trace_one_lane_per_pipeline_stage(self):
        rec, _ = _recorded_run(num_packets=200)
        doc = chrome_trace(rec.events)
        data = [r for r in doc["traceEvents"] if r["ph"] != "M"]
        laned = {(r["pid"], r["tid"]) for r in data if r["pid"] != 0}
        expected = {
            (e["pipe"] + 1, e["stage"])
            for e in rec.events
            if e.get("pipe") is not None
        }
        assert laned == expected

    def test_chrome_round_trip(self, tmp_path):
        rec, _ = _recorded_run(num_packets=100)
        path = tmp_path / "run.trace.json"
        write_chrome(rec.events, path)
        doc = json.loads(path.read_text())
        assert events_from_chrome(doc) == rec.events

    def test_load_trace_detects_both_formats(self, tmp_path):
        rec, _ = _recorded_run(num_packets=100)
        jsonl, chrome = tmp_path / "t.jsonl", tmp_path / "t.json"
        write_jsonl(rec.events, jsonl)
        write_chrome(rec.events, chrome)
        _, from_jsonl = load_trace(jsonl)
        _, from_chrome = load_trace(chrome)
        assert from_jsonl == rec.events
        assert from_chrome == rec.events

    def test_load_trace_rejects_unknown(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text('{"random": true}')
        with pytest.raises(ValueError):
            load_trace(path)


class TestMetricsRegistry:
    def test_counter_series_records_deltas(self):
        reg = MetricsRegistry(window=10)
        c = reg.counter("egressed")
        c.inc(4)
        reg.roll(10)
        c.inc(6)
        reg.roll(20)
        assert reg.series["egressed"] == [[10, 4], [20, 6]]
        assert reg.totals()["egressed"] == 10

    def test_gauge_series_records_levels(self):
        reg = MetricsRegistry(window=10)
        g = reg.gauge("depth")
        g.set(3)
        reg.roll(10)
        g.set(1)
        reg.roll(20)
        assert reg.series["depth"] == [[10, 3], [20, 1]]

    def test_cumulative_sampler_deltas(self):
        reg = MetricsRegistry(window=10)
        state = {"total": 0}
        reg.add_sampler("moves", lambda: state["total"], cumulative=True)
        state["total"] = 7
        reg.roll(10)
        state["total"] = 9
        reg.roll(20)
        assert reg.series["moves"] == [[10, 7], [20, 2]]

    def test_raw_sampler(self):
        reg = MetricsRegistry(window=10)
        state = {"depth": 5}
        reg.add_sampler("queue", lambda: state["depth"])
        reg.roll(10)
        state["depth"] = 2
        reg.roll(20)
        assert reg.series["queue"] == [[10, 5], [20, 2]]

    def test_histogram_window_summaries(self):
        reg = MetricsRegistry(window=10)
        h = reg.histogram("latency")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        reg.roll(10)
        reg.roll(20)  # empty window: no summary point
        (point,) = reg.histogram_series["latency"]
        assert point["count"] == 3
        assert point["min"] == 1.0 and point["max"] == 3.0
        assert point["mean"] == pytest.approx(2.0)
        assert point["tick"] == 10
        assert h.mean == pytest.approx(2.0)

    def test_maybe_roll_only_at_boundaries(self):
        reg = MetricsRegistry(window=10)
        reg.counter("x")
        for tick in range(25):
            reg.maybe_roll(tick)
        assert [t for t, _ in reg.series["x"]] == [10, 20]

    def test_roll_idempotent_per_tick(self):
        reg = MetricsRegistry(window=10)
        reg.counter("x").inc()
        reg.roll(10)
        reg.roll(10)
        assert len(reg.series["x"]) == 1

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            MetricsRegistry(window=0)

    def test_save_and_to_dict(self, tmp_path):
        reg = MetricsRegistry(window=5)
        reg.counter("n").inc(2)
        reg.roll(5)
        path = tmp_path / "metrics.json"
        reg.save(path)
        doc = json.loads(path.read_text())
        assert doc["window"] == 5
        assert doc["series"]["n"] == [[5, 2]]
        assert doc["totals"]["n"] == 2


class TestPhaseProfiler:
    def test_laps_accumulate(self):
        prof = PhaseProfiler()
        prof.begin()
        prof.lap("a")
        prof.lap("b")
        prof.end_tick()
        prof.begin()
        prof.lap("a")
        prof.lap("b")
        prof.end_tick()
        assert prof.ticks == 2
        assert set(prof.totals) == {"a", "b"}
        assert prof.total_seconds >= 0.0

    def test_report_lists_phases(self):
        prof = PhaseProfiler()
        prof.begin()
        prof.lap("move")
        prof.end_tick()
        report = prof.report()
        assert "move" in report
        assert "total" in report
        assert "1 ticks" in report

    def test_to_dict(self):
        prof = PhaseProfiler()
        prof.begin()
        prof.lap("x")
        prof.end_tick()
        doc = prof.to_dict()
        assert doc["ticks"] == 1
        assert "x" in doc["seconds"]


class TestTraceSummary:
    def test_summarize_counts_and_rankings(self):
        rec, stats = _recorded_run(num_packets=300)
        summary = summarize_trace(rec.events)
        assert summary["events"] == len(rec.events)
        assert summary["type_counts"]["ingress"] == stats.offered
        assert summary["type_counts"]["egress"] == stats.egressed
        assert summary["phantom_waits"]  # stateful stages saw pops
        total_pops = sum(w["pops"] for w in summary["phantom_waits"].values())
        assert total_pops == summary["type_counts"]["fifo_pop"]

    def test_render_mentions_stall_sections(self):
        rec, _ = _recorded_run(num_packets=300)
        text = render_trace_summary(summarize_trace(rec.events))
        assert "Top phantom-wait stalls" in text
        assert "Top FIFO-block stalls" in text
        assert "Per-flow timelines" in text

    def test_drop_ranking(self):
        rec = TraceRecorder()
        rec.drop(3, 0, "no_phantom")
        rec.drop(4, 1, "no_phantom")
        rec.drop(5, 2, "fifo_full")
        summary = summarize_trace(rec.events)
        assert summary["drops"] == {"no_phantom": 2, "fifo_full": 1}
        assert "Drops by reason" in render_trace_summary(summary)


class TestEngineIntegration:
    def test_run_records_rich_event_stream(self):
        rec, stats = _recorded_run(num_packets=300)
        types = {e["type"] for e in rec.events}
        # The acceptance bar: a realistic run exercises at least 8
        # distinct lifecycle event types.
        assert len(types) >= 8
        assert {
            "ingress", "phantom_emit", "phantom_match", "steer",
            "fifo_pop", "service", "egress", "remap",
        } <= types
        egresses = [e for e in rec.events if e["type"] == "egress"]
        assert len(egresses) == stats.egressed

    def test_drop_events_match_stats(self):
        rec, stats = _recorded_run(num_packets=400, fifo_capacity=2)
        drops = [e for e in rec.events if e["type"] == "drop"]
        assert len(drops) == stats.dropped

    def test_metrics_attached_to_run(self):
        program = make_sensitivity_program(num_stateful=4, register_size=64)
        metrics = MetricsRegistry(window=50)
        stats, _ = run_mp5(
            program,
            sensitivity_trace(300, 4, 4, 64, seed=0),
            MP5Config(num_pipelines=4),
            metrics=metrics,
        )
        assert metrics.totals()["egressed"] == stats.egressed
        assert len(metrics.series["egressed"]) >= 2  # several windows
        assert metrics.histograms["latency"].total_count == stats.egressed
        # Per-lane queue-depth samplers exist for every stateful lane.
        assert any(name.startswith("queue_depth.p") for name in metrics.series)

    def test_profiler_attached_to_run(self):
        program = make_sensitivity_program(num_stateful=2, register_size=16)
        profiler = PhaseProfiler()
        stats, _ = run_mp5(
            program,
            sensitivity_trace(100, 2, 2, 16, seed=0),
            MP5Config(num_pipelines=2),
            profiler=profiler,
        )
        assert profiler.ticks == stats.ticks
        assert "move" in profiler.totals and "service" in profiler.totals

    def test_attach_after_run_rejected(self):
        program = make_sensitivity_program(num_stateful=2, register_size=16)
        switch = MP5Switch(program, MP5Config(num_pipelines=2))
        switch.run(sensitivity_trace(50, 2, 2, 16, seed=0))
        with pytest.raises(ConfigError):
            switch.attach_observability(recorder=TraceRecorder())

    def test_disabled_by_default(self):
        program = make_sensitivity_program(num_stateful=2, register_size=16)
        switch = MP5Switch(program, MP5Config(num_pipelines=2))
        assert switch.obs is None
        assert switch._metrics is None
        assert switch._profiler is None
        switch.run(sensitivity_trace(50, 2, 2, 16, seed=0))
        assert switch.obs is None
