"""Banzai atom templates: classifying what circuit a stateful atom needs.

Banzai (Packet Transactions, SIGCOMM 2016) models action units as
*atoms*: small digital circuits with bounded capability, drawn from a
template hierarchy of increasing power. A program is implementable on a
machine only if every one of its stateful clusters fits one of the
machine's atom templates. The hierarchy (simplified to the levels the
Domino paper evaluates):

=============  ==========================================================
template       capability
=============  ==========================================================
READ           read the state, never write it
WRITE          write a packet-derived value, never read it back (blind)
RAW            read-add-write: ``s = s op f(pkt)`` with one ALU op
PRED_RAW       RAW guarded by a packet-based predicate
IF_ELSE_RAW    two RAW alternatives selected by a predicate
SUB            RAW where the update may also *compare* against the state
NESTED         arbitrary single-state update DAG (bounded depth)
PAIRED         updates two state variables in one atom (fused clusters)
=============  ==========================================================

The classifier inspects a cluster's TAC instructions and returns the
weakest sufficient template; code generation can then check it against
the target's most powerful template (``BanzaiTarget.atom_template``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from ..compiler.tac import OpKind, TacInstr, Temp
from ..errors import ResourceError


class AtomTemplate(enum.IntEnum):
    """Template hierarchy, ordered by capability (higher = stronger)."""

    READ = 0
    WRITE = 1
    RAW = 2
    PRED_RAW = 3
    IF_ELSE_RAW = 4
    SUB = 5
    NESTED = 6
    PAIRED = 7

    @property
    def display_name(self) -> str:
        return self.name.lower()


# The templates shipped by name, for target configuration.
TEMPLATE_BY_NAME: Dict[str, AtomTemplate] = {
    t.name.lower(): t for t in AtomTemplate
}


@dataclass(frozen=True)
class AtomRequirement:
    """Outcome of classifying one stateful cluster."""

    arrays: tuple
    template: AtomTemplate
    alu_ops: int  # arithmetic/logic instructions inside the atom
    depth: int  # longest dependence chain inside the atom

    def fits(self, available: AtomTemplate) -> bool:
        return self.template <= available


def _cluster_depth(instrs: Sequence[TacInstr]) -> int:
    depth: Dict[Temp, int] = {}
    longest = 0
    for instr in instrs:
        input_depth = 0
        for used in instr.uses():
            input_depth = max(input_depth, depth.get(used, 0))
        level = input_depth + (
            1 if instr.kind in (OpKind.BINARY, OpKind.UNARY, OpKind.CALL, OpKind.SELECT) else 0
        )
        if instr.dest is not None:
            depth[instr.dest] = level
        longest = max(longest, level)
    return longest


def classify_cluster(instrs: Sequence[TacInstr]) -> AtomRequirement:
    """Classify the stateful cluster formed by ``instrs``.

    ``instrs`` must be the instruction list of one pipeline stage (the
    scheduler guarantees a stage holds complete clusters); stateless
    stages raise, since they need no stateful atom at all.
    """
    arrays: List[str] = []
    reads: Set[str] = set()
    writes: Set[str] = set()
    has_guard = False
    selects = 0
    alu_ops = 0
    compares_state = False

    state_tainted: Set[Temp] = set()
    for instr in instrs:
        if instr.kind is OpKind.REG_READ:
            reads.add(instr.reg)
            if instr.reg not in arrays:
                arrays.append(instr.reg)
            if instr.guard is not None:
                has_guard = True
            state_tainted.add(instr.dest)
        elif instr.kind is OpKind.REG_WRITE:
            writes.add(instr.reg)
            if instr.reg not in arrays:
                arrays.append(instr.reg)
            if instr.guard is not None:
                has_guard = True
        elif instr.kind in (OpKind.BINARY, OpKind.UNARY, OpKind.CALL):
            alu_ops += 1
            tainted = any(
                isinstance(a, Temp) and a in state_tainted for a in instr.args
            )
            if tainted and instr.dest is not None:
                state_tainted.add(instr.dest)
            if (
                instr.kind is OpKind.BINARY
                and instr.op in ("==", "!=", "<", "<=", ">", ">=")
                and tainted
            ):
                compares_state = True
        elif instr.kind is OpKind.SELECT:
            selects += 1
            tainted = any(
                isinstance(a, Temp) and a in state_tainted for a in instr.args
            )
            if tainted and instr.dest is not None:
                state_tainted.add(instr.dest)

    if not arrays:
        raise ResourceError("stage holds no stateful cluster to classify")

    if len(arrays) > 1:
        template = AtomTemplate.PAIRED
    elif not writes:
        template = AtomTemplate.READ
    elif not reads:
        template = AtomTemplate.WRITE
    elif compares_state:
        # Comparing the state value (e.g. conditional reset, min/max
        # tracking) needs the subtract-and-compare family.
        template = AtomTemplate.SUB if selects <= 1 else AtomTemplate.NESTED
    elif selects == 0:
        template = AtomTemplate.RAW
    elif selects == 1 or (has_guard and selects == 0):
        template = AtomTemplate.PRED_RAW
    elif selects == 2:
        template = AtomTemplate.IF_ELSE_RAW
    else:
        template = AtomTemplate.NESTED

    return AtomRequirement(
        arrays=tuple(arrays),
        template=template,
        alu_ops=alu_ops,
        depth=_cluster_depth(instrs),
    )


def classify_program(stages) -> List[AtomRequirement]:
    """Classify every stateful stage of a compiled program or PVSM.

    Accepts any sequence of objects with ``instrs`` and ``arrays``
    attributes (``StageProgram`` or ``PvsmStage``).
    """
    requirements = []
    for stage in stages:
        if getattr(stage, "arrays", None):
            requirements.append(classify_cluster(stage.instrs))
    return requirements


def check_atom_feasibility(
    stages, available: AtomTemplate, program_name: str = "<program>"
) -> List[AtomRequirement]:
    """Raise :class:`ResourceError` if any stage needs a stronger atom
    than the machine provides; returns the requirements otherwise."""
    requirements = classify_program(stages)
    for requirement in requirements:
        if not requirement.fits(available):
            raise ResourceError(
                f"program {program_name!r}: arrays {requirement.arrays} need a "
                f"{requirement.template.display_name!r} atom but the target "
                f"provides only {available.display_name!r}"
            )
    return requirements
