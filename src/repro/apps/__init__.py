"""Real stateful applications (§4.4): programs + workload bindings."""

from .base import Application
from .catalog import (
    ALL_APPS,
    CONGA,
    FIGURE8_APPS,
    FIREWALL,
    FLOWLET,
    HEAVY_HITTER,
    SEQUENCER,
    WFQ,
    get_application,
)

__all__ = [
    "ALL_APPS",
    "Application",
    "CONGA",
    "FIGURE8_APPS",
    "FIREWALL",
    "FLOWLET",
    "HEAVY_HITTER",
    "SEQUENCER",
    "WFQ",
    "get_application",
]
