"""§4.3.2 microbenchmark — D2: dynamically sharded shared memory.

Dynamic vs static (compile-time random) sharding over independent input
streams. Paper: 1.1-3.3x higher throughput on the skewed pattern and
1-1.5x even on uniform (short-timescale skew still arises from arrival
order).
"""

import numpy as np

from repro.harness import MicrobenchSettings, run_d2

from conftest import micro_params, run_once


def test_d2_dynamic_vs_static_sharding(benchmark, show):
    settings = MicrobenchSettings(**micro_params())
    results = run_once(benchmark, lambda: run_d2(settings))
    by_pattern = {r.pattern: r for r in results}

    lines = ["D2: dynamic/static throughput ratio per stream"]
    for pattern, result in by_pattern.items():
        lines.append(
            f"  {pattern:8s} min={result.min_ratio:.2f} "
            f"max={result.max_ratio:.2f} "
            f"mean={float(np.mean(result.ratios)):.2f}"
        )
    show("\n".join(lines))

    skewed = by_pattern["skewed"]
    uniform = by_pattern["uniform"]
    # Dynamic sharding wins on skewed access (paper band: 1.1-3.3x).
    assert skewed.max_ratio > 1.1
    assert float(np.mean(skewed.ratios)) > 1.05
    # It never loses badly anywhere, and helps a little even on uniform
    # (paper band: 1-1.5x).
    assert uniform.min_ratio > 0.95
    assert uniform.max_ratio < 1.6
    # The skewed advantage exceeds the uniform one on average.
    assert float(np.mean(skewed.ratios)) >= float(np.mean(uniform.ratios)) - 0.02
