"""Process-parallel execution of independent simulation tasks.

Every harness sweep (Figure 7, Figure 8, ``run_all``) is a list of
fully independent simulations: one (parameter value, seed) pair per
task, with no shared mutable state. :func:`parallel_map` fans such a
task list out over a :class:`~concurrent.futures.ProcessPoolExecutor`
and returns results **in task order**, so callers aggregate exactly as
the serial loop would and the rendered artifacts (``results.json``
included) are byte-identical at any job count.

Determinism contract for task functions:

* the task tuple carries everything that varies — in particular the RNG
  seed — so a task's result depends only on its arguments, never on
  which worker ran it or in what order;
* task functions and their arguments must be picklable (module-level
  functions, plain data).

``jobs`` semantics, shared by every harness entry point:

* ``None`` or ``1`` — serial, in-process (the default; zero overhead,
  bit-for-bit the historical behavior);
* ``0`` — one worker per CPU (:func:`default_jobs`);
* ``n > 1`` — ``n`` worker processes.

Beyond sweep fan-out, the epoch-parallel executor
(:mod:`repro.mp5.epochs`) runs workers *inside* a single simulation.
Those workers attach a shared-memory SoA segment once at startup rather
than pickling state per task, so :func:`parallel_map` accepts an
optional ``initializer``/``initargs`` pair (forwarded to the pool
constructor) plus a ``pool_key`` namespacing the cached pool: sweeps
keep their plain long-lived pool while the engine keeps its own
initialized one, and neither evicts the other. Segments are registered
with :func:`register_shared_segment` so :func:`shutdown_pool` (and the
atexit hook) can unlink anything a crashed run leaked.

If a pool cannot be created or breaks mid-run (sandboxed environments
forbidding ``fork``, worker OOM-kills), the sweep transparently falls
back to the serial path rather than failing the reproduction run. A
pool that never managed to run anything marks the environment as
pool-hostile, so a multi-sweep reproduction pays the doomed spawn
attempt once, not once per figure panel; a pool that breaks after
having delivered results is assumed transient and re-created for the
next sweep (``shutdown_pool`` resets both states).
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, TypeVar

T = TypeVar("T")
R = TypeVar("R")


class _PoolState:
    """One cached executor plus the signature it was built with."""

    __slots__ = ("pool", "signature", "proven")

    def __init__(self, pool: ProcessPoolExecutor, signature: tuple):
        self.pool = pool
        self.signature = signature
        # True once this pool has completed a map: a failure on a proven
        # pool is transient (worker OOM-kill) and worth retrying next
        # sweep; a failure before any success means the environment
        # cannot spawn workers at all.
        self.proven = False


# Lazily-created pools, one per ``pool_key``, reused across sweeps so
# workers pay the interpreter + import startup cost once per
# reproduction run, not once per figure panel. ``None`` is the default
# sweep pool; the epoch executor uses its own key so its initializer
# (shared-memory attach) never leaks into sweep workers.
_pools: Dict[Optional[str], _PoolState] = {}
# Memoized "this environment cannot run a pool": later sweep families
# skip straight to the serial path. Cleared by shutdown_pool().
_pool_unavailable: bool = False

# Shared-memory segment names owned by this process. shutdown_pool()
# unlinks whatever is still registered, so a run that died between
# creating a segment and its normal cleanup does not leak /dev/shm
# space for the rest of the session.
_shared_segments: Set[str] = set()


def default_jobs() -> int:
    """Worker count used for ``jobs=0``: one per available CPU."""
    return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` argument to an effective worker count."""
    if jobs is None:
        return 1
    if jobs == 0:
        return default_jobs()
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def register_shared_segment(name: str) -> None:
    """Record a ``multiprocessing.shared_memory`` segment this process
    created, so teardown can unlink it even after a crash."""
    _shared_segments.add(name)


def unregister_shared_segment(name: str) -> None:
    """Forget a segment after its owner unlinked it normally."""
    _shared_segments.discard(name)


def _unlink_leaked_segments() -> None:
    if not _shared_segments:
        return
    from multiprocessing import shared_memory

    for name in sorted(_shared_segments):
        try:
            seg = shared_memory.SharedMemory(name=name)
            seg.close()
            seg.unlink()
        except FileNotFoundError:
            pass  # already gone: normal cleanup won the race
        except OSError:
            pass
    _shared_segments.clear()


def _get_pool(
    jobs: int,
    initializer: Optional[Callable] = None,
    initargs: tuple = (),
    pool_key: Optional[str] = None,
) -> ProcessPoolExecutor:
    signature = (jobs, initializer, initargs)
    state = _pools.get(pool_key)
    if state is not None and state.signature != signature:
        state.pool.shutdown(wait=False)
        state = None
    if state is None:
        pool = ProcessPoolExecutor(
            max_workers=jobs, initializer=initializer, initargs=initargs
        )
        state = _PoolState(pool, signature)
        _pools[pool_key] = state
    return state.pool


def shutdown_pool() -> None:
    """Tear down every cached worker pool and unlink any leaked
    shared-memory segments (idempotent; pools are re-created lazily).

    Also clears the memoized pool-unavailable verdict, so a caller that
    knows the environment changed can force a fresh spawn attempt.
    """
    global _pool_unavailable
    for state in _pools.values():
        state.pool.shutdown(wait=True)
    _pools.clear()
    _pool_unavailable = False
    _unlink_leaked_segments()


def _discard_pool(pool_key: Optional[str]) -> None:
    """Drop a broken pool without waiting on its (dead) workers.

    A pool that broke before ever finishing a map means the environment
    cannot spawn workers (sandbox forbidding ``fork``); memoize that so
    subsequent sweep families go straight to the serial path instead of
    repeating the doomed spawn attempt once per family.
    """
    global _pool_unavailable
    state = _pools.pop(pool_key, None)
    if state is None:
        # The executor constructor itself raised: the pool never even
        # entered the cache, the strongest possible "cannot spawn".
        _pool_unavailable = True
        return
    if not state.proven:
        _pool_unavailable = True
    state.pool.shutdown(wait=False)


atexit.register(shutdown_pool)


class PoolBroken(Exception):
    """Raised by :func:`pool_map_strict` when the pool cannot run or
    breaks mid-map. Deliberately not a RuntimeError subclass, so the
    sweep path's broad except never swallows it."""


def pool_map_strict(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    jobs: int,
    initializer: Optional[Callable] = None,
    initargs: tuple = (),
    pool_key: Optional[str] = None,
) -> List[R]:
    """Like :func:`parallel_map`, but with **no serial fallback**: any
    pool failure raises :class:`PoolBroken` after discarding the pool.

    For callers whose tasks mutate shared state (the epoch executor):
    silently re-running the whole task list after a mid-map break would
    re-apply non-idempotent register updates, so the caller must roll
    back and decide — :func:`parallel_map`'s retry is only correct for
    pure tasks.
    """
    if _pool_unavailable:
        raise PoolBroken("environment cannot spawn workers")
    try:
        pool = _get_pool(jobs, initializer, initargs, pool_key)
        results = list(pool.map(fn, tasks))
        _pools[pool_key].proven = True
        return results
    except (BrokenProcessPool, OSError, PermissionError, RuntimeError) as exc:
        _discard_pool(pool_key)
        raise PoolBroken(str(exc)) from exc


def pool_unavailable() -> bool:
    """True when this environment has proven unable to spawn workers."""
    return _pool_unavailable


def parallel_map(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    jobs: Optional[int] = None,
    initializer: Optional[Callable] = None,
    initargs: tuple = (),
    pool_key: Optional[str] = None,
) -> List[R]:
    """Apply ``fn`` to every task, returning results in task order.

    Runs serially for ``jobs`` in (None, 1) or when there is at most one
    task; otherwise distributes over the cached process pool for
    ``pool_key``. ``initializer``/``initargs`` run once per worker at
    spawn (shared-memory attach, kernel compilation); changing them — or
    ``jobs`` — recreates that pool. Any pool failure (creation or
    mid-run) falls back to recomputing the whole task list serially —
    correct because tasks are pure functions of their arguments.

    Callers whose tasks are **not** pure (epoch executor: tasks mutate a
    shared segment) must not rely on that retry; they pre-check
    :func:`pool_unavailable` and keep their own serial path.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1 or _pool_unavailable:
        return [fn(task) for task in tasks]
    # Chunk so each worker round-trip amortizes pickling over several
    # tasks; cap at 4 waves per worker to keep the tail balanced.
    chunksize = max(1, len(tasks) // (jobs * 4))
    try:
        pool = _get_pool(jobs, initializer, initargs, pool_key)
        results = list(pool.map(fn, tasks, chunksize=chunksize))
        _pools[pool_key].proven = True
        return results
    except (BrokenProcessPool, OSError, PermissionError, RuntimeError):
        _discard_pool(pool_key)
        return [fn(task) for task in tasks]
