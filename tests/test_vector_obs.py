"""Observability parity: the vector engine's reconstructed streams.

The vector engine never steps ticks, so it cannot emit lifecycle
events live. Instead :mod:`repro.obs.reconstruct` synthesizes the
event stream from the epoch schedule after the closed-form run and
replays it through whatever sinks were attached. The contract this
module pins down:

* the reconstructed trace's :func:`canonical_form` equals both scalar
  engines' live traces (sensitivity workload, every app, flow
  ordering, max_ticks cuts),
* the metrics registry rolls identical windowed series and histograms,
* the invariant monitor sees the same alert stream (zero on fault-free
  runs) and health verdict at every ``native``/``epoch_jobs`` setting,
* attaching sinks never changes the results (stats + registers), and
* the profiler's vector channels (phase spans, kernel tiers, epochs)
  populate and surface through ``trace-summary``.
"""

import json

import pytest

from repro.apps import ALL_APPS
from repro.cli import main
from repro.errors import ConfigError
from repro.harness.runall import SCALES, _observability_run
from repro.mp5 import (
    MP5Config,
    VectorSwitch,
    run_mp5,
    run_mp5_reference,
    run_mp5_vector,
)
from repro.obs import (
    InvariantMonitor,
    MetricsRegistry,
    PhaseProfiler,
    TraceRecorder,
    canonical_form,
)
from repro.workloads.synthetic import make_sensitivity_program, sensitivity_trace


def _run_observed(
    runner,
    program,
    trace,
    config,
    max_ticks=None,
    profile=False,
    **engine_kw,
):
    recorder = TraceRecorder()
    metrics = MetricsRegistry(window=50)
    monitor = InvariantMonitor()
    profiler = PhaseProfiler() if profile else None
    stats, regs = runner(
        program,
        trace,
        config,
        max_ticks=max_ticks,
        recorder=recorder,
        metrics=metrics,
        monitor=monitor,
        profiler=profiler,
        **engine_kw,
    )
    return {
        "stats": stats,
        "regs": regs,
        "trace": canonical_form(recorder.events),
        "events": len(recorder.events),
        "metrics": metrics.to_dict(),
        "alerts": [a.to_dict() for a in monitor.alerts],
        "health": monitor.health_report().to_dict(),
        "profiler": profiler,
    }


def _sensitivity_inputs(n=250, k=4, **cfg_kw):
    program = make_sensitivity_program(num_stateful=4, register_size=64)
    config = MP5Config(num_pipelines=k, **cfg_kw)
    return program, (lambda: sensitivity_trace(n, k, 4, 64, seed=0)), config


def _assert_parity(vec, ref, dense=None):
    assert vec["stats"] == ref["stats"]
    assert vec["regs"] == ref["regs"]
    assert vec["trace"] == ref["trace"]
    assert vec["metrics"] == ref["metrics"]
    assert vec["alerts"] == ref["alerts"]
    assert vec["health"] == ref["health"]
    if dense is not None:
        assert vec["trace"] == dense["trace"]
        assert vec["alerts"] == dense["alerts"]


# ---------------------------------------------------------------------------
# Three-engine trace equality
# ---------------------------------------------------------------------------


def test_trace_parity_sensitivity_three_engines():
    program, mk, config = _sensitivity_inputs()
    vec = _run_observed(run_mp5_vector, program, mk(), config)
    fast = _run_observed(run_mp5, program, mk(), config)
    dense = _run_observed(run_mp5_reference, program, mk(), config)
    assert vec["events"] > 0
    _assert_parity(vec, fast, dense)
    assert vec["alerts"] == []  # fault-free: monitor stays silent


@pytest.mark.parametrize("app_name", sorted(ALL_APPS))
def test_trace_parity_apps(app_name):
    app = ALL_APPS[app_name]
    program = app.compile()
    config = MP5Config(num_pipelines=4)
    vec = _run_observed(
        run_mp5_vector, program, app.workload(200, 4, seed=0), config
    )
    fast = _run_observed(run_mp5, program, app.workload(200, 4, seed=0), config)
    assert vec["events"] > 0
    _assert_parity(vec, fast)
    assert vec["alerts"] == []


@pytest.mark.parametrize(
    "cfg_kw",
    (
        dict(),
        dict(remap_algorithm="none"),
        dict(remap_period=16),
        dict(flow_order_field="f0", flow_order_size=32),
    ),
    ids=("default", "no_remap", "short_period", "flow_order"),
)
def test_trace_parity_configs(cfg_kw):
    program, mk, config = _sensitivity_inputs(**cfg_kw)
    vec = _run_observed(run_mp5_vector, program, mk(), config)
    fast = _run_observed(run_mp5, program, mk(), config)
    _assert_parity(vec, fast)


@pytest.mark.parametrize("max_ticks", (0, 40))
def test_trace_parity_max_ticks_cut(max_ticks):
    """A mid-flight cut truncates the reconstructed stream at exactly
    the same tick the scalar engines stop stepping."""
    program, mk, config = _sensitivity_inputs()
    vec = _run_observed(
        run_mp5_vector, program, mk(), config, max_ticks=max_ticks
    )
    fast = _run_observed(run_mp5, program, mk(), config, max_ticks=max_ticks)
    _assert_parity(vec, fast)


def test_trace_parity_empty_trace():
    program, _mk, config = _sensitivity_inputs()
    vec = _run_observed(run_mp5_vector, program, [], config)
    fast = _run_observed(run_mp5, program, [], config)
    assert vec["events"] == 0
    _assert_parity(vec, fast)


# ---------------------------------------------------------------------------
# Monitor parity across acceleration tiers
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("native", (None, True), ids=("numpy", "native"))
@pytest.mark.parametrize("epoch_jobs", (None, 2), ids=("serial", "jobs2"))
def test_monitor_zero_alerts_every_tier(native, epoch_jobs):
    """Fault-free vector runs stay alert-free — and byte-identical to
    the fast engine — at every native/epoch-jobs combination."""
    program, mk, config = _sensitivity_inputs()
    vec = _run_observed(
        run_mp5_vector,
        program,
        mk(),
        config,
        native=native,
        epoch_jobs=epoch_jobs,
    )
    fast = _run_observed(run_mp5, program, mk(), config)
    _assert_parity(vec, fast)
    assert vec["alerts"] == []
    assert vec["health"]["verdict"] == "ok"


def test_results_identical_with_observability_on_and_off():
    """Attaching sinks must not perturb the simulation: stats and final
    registers are identical with observability on or off."""
    program, mk, config = _sensitivity_inputs()
    plain = run_mp5_vector(program, mk(), config)
    observed = _run_observed(run_mp5_vector, program, mk(), config)
    assert plain == (observed["stats"], observed["regs"])


def test_monitor_reuse_guard():
    """One monitor tracks one run, on the vector engine too."""
    program, mk, config = _sensitivity_inputs(n=60)
    monitor = InvariantMonitor()
    run_mp5_vector(program, mk(), config, monitor=monitor)
    with pytest.raises(ConfigError):
        run_mp5_vector(program, mk(), config, monitor=monitor)


def test_attach_after_run_raises():
    program, mk, config = _sensitivity_inputs(n=60)
    switch = VectorSwitch(program, config)
    switch.run(mk())
    with pytest.raises(ConfigError):
        switch.attach_observability(recorder=TraceRecorder())


# ---------------------------------------------------------------------------
# Profiler vector channels
# ---------------------------------------------------------------------------


def test_profiler_vector_channels_populate():
    program, mk, config = _sensitivity_inputs()
    vec = _run_observed(run_mp5_vector, program, mk(), config, profile=True)
    profiler = vec["profiler"]
    assert set(profiler.spans) >= {"phase_a", "phase_b", "trace_reconstruct"}
    assert profiler.kernels  # every stateful stage records a tier
    assert all(
        entry["tier"] in ("pool", "njit", "numpy", "python")
        for entry in profiler.kernels.values()
    )
    assert profiler.epochs and profiler.epochs[0]["start"] == 0
    report = profiler.report()
    assert "Vector phase breakdown" in report
    assert "Service kernel tiers" in report
    dumped = profiler.to_dict()
    assert json.dumps(dumped)  # JSON-safe for the trace header
    assert dumped["spans"] == profiler.spans


def test_profiler_scalar_channels_stay_empty():
    program, mk, config = _sensitivity_inputs(n=60)
    fast = _run_observed(run_mp5, program, mk(), config, profile=True)
    profiler = fast["profiler"]
    assert not profiler.spans and not profiler.kernels
    assert not profiler.pool and not profiler.epochs
    assert "Vector phase breakdown" not in profiler.report()


# ---------------------------------------------------------------------------
# CLI: trace-summary epoch section + hardening
# ---------------------------------------------------------------------------


def test_cli_trace_summary_epoch_section(tmp_path, capsys):
    trace_path = str(tmp_path / "vec.jsonl")
    assert main(
        ["run", "heavy_hitter", "--packets", "200", "--engine", "vector",
         "--profile", "--trace", trace_path, "--trace-format", "jsonl"]
    ) == 0
    capsys.readouterr()
    assert main(["trace-summary", trace_path]) == 0
    out = capsys.readouterr().out
    assert "Vector epochs" in out
    assert "Service kernel tiers" in out


def test_cli_trace_summary_without_profiler_block(tmp_path, capsys):
    """Scalar traces carry no profiler block: no epoch section, no
    error."""
    trace_path = str(tmp_path / "fast.jsonl")
    assert main(
        ["run", "heavy_hitter", "--packets", "200",
         "--trace", trace_path, "--trace-format", "jsonl"]
    ) == 0
    capsys.readouterr()
    assert main(["trace-summary", trace_path]) == 0
    assert "Vector epochs" not in capsys.readouterr().out


@pytest.mark.parametrize(
    "block",
    (
        {"spans": "not-a-dict"},
        {"kernels": {"s1": 3}},
        {"epochs": [{"start": 0}]},
        "garbage",
    ),
    ids=("bad_spans", "bad_kernels", "bad_epochs", "not_object"),
)
def test_cli_trace_summary_malformed_profiler_block(tmp_path, capsys, block):
    trace_path = tmp_path / "bad.jsonl"
    header = {"format": "mp5-trace-events", "version": 1, "profiler": block}
    trace_path.write_text(json.dumps(header) + "\n")
    assert main(["trace-summary", str(trace_path)]) == 2
    err_line = [
        line
        for line in capsys.readouterr().out.splitlines()
        if "malformed profiler block" in line
    ]
    assert len(err_line) == 1  # one-line diagnostic


def test_cli_monitor_report_shows_vector_epochs(tmp_path, capsys):
    """A profiled vector run embeds its (deterministic) epoch
    boundaries in the alert-log meta; monitor-report surfaces them."""
    alerts_path = str(tmp_path / "alerts.jsonl")
    assert main(
        ["run", "heavy_hitter", "--packets", "200", "--engine", "vector",
         "--profile", "--alerts-out", alerts_path]
    ) == 0
    capsys.readouterr()
    assert main(["monitor-report", alerts_path]) == 0
    out = capsys.readouterr().out
    assert "vector epochs:" in out
    assert "resolved" in out


# ---------------------------------------------------------------------------
# Harness: instrumented-run artifacts diff clean across engines
# ---------------------------------------------------------------------------


def test_observability_run_artifacts_identical_across_engines(tmp_path):
    """The CI ``obs-vector-smoke`` contract: every artifact the
    instrumented run writes — canonical trace, metrics, alerts, and the
    block embedded in ``results.json`` — is byte-identical between the
    vector and fast engines."""
    knobs = SCALES["tiny"]
    out_fast = tmp_path / "fast"
    out_vec = tmp_path / "vector"
    out_fast.mkdir()
    out_vec.mkdir()
    block_fast = _observability_run(out_fast, knobs, engine="fast")
    block_vec = _observability_run(out_vec, knobs, engine="vector")
    assert block_fast == block_vec
    # The raw trace.jsonl may interleave same-tick events of different
    # packets differently; trace_canonical.json is the order-free form
    # the contract (and the CI cmp) is defined over.
    for name in (
        "trace_canonical.json",
        "metrics.json",
        "alerts.jsonl",
        "trace_summary.txt",
    ):
        assert (out_fast / name).read_bytes() == (out_vec / name).read_bytes()
