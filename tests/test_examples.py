"""Smoke tests: every example script imports and the fast ones run."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


def load_module(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        names = {p.stem for p in EXAMPLES}
        assert {
            "quickstart",
            "compiler_tour",
            "heavy_hitter_detection",
            "network_sequencer",
            "flowlet_load_balancing",
            "partitioned_switch",
        } <= names

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_example_imports_and_has_main(self, path):
        module = load_module(path)
        assert callable(getattr(module, "main", None)), path.stem

    def test_compiler_tour_runs(self, capsys):
        module = load_module(
            Path(__file__).parent.parent / "examples" / "compiler_tour.py"
        )
        module.main()
        out = capsys.readouterr().out
        assert "preemptive address resolution" in out.lower() or "stage 0" in out
