"""Tests for the three-address-code IR and evaluator."""

import pytest

from repro.compiler import Const, OpKind, TacEvaluator, TacInstr, TacProgram, Temp
from repro.compiler.tac import TempFactory, _to_signed32
from repro.errors import CompilerError


def t(name):
    return Temp(name)


def run(instrs, headers=None, registers=None):
    headers = headers if headers is not None else {}
    registers = registers if registers is not None else {}
    ev = TacEvaluator(headers, registers)
    ev.run(instrs)
    return ev


class TestWrapSemantics:
    def test_positive_wrap(self):
        assert _to_signed32(2**31) == -(2**31)

    def test_negative_stays(self):
        assert _to_signed32(-1 & 0xFFFFFFFF) == -1

    def test_small_values_identity(self):
        for v in (-5, 0, 5, 1000):
            assert _to_signed32(v) == v


class TestEvaluator:
    def test_const(self):
        ev = run([TacInstr(OpKind.CONST, dest=t("a"), args=[Const(7)])])
        assert ev.env[t("a")] == 7

    def test_binary_add(self):
        ev = run(
            [
                TacInstr(OpKind.CONST, dest=t("a"), args=[Const(3)]),
                TacInstr(OpKind.BINARY, dest=t("b"), op="+", args=[t("a"), Const(4)]),
            ]
        )
        assert ev.env[t("b")] == 7

    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("-", 3, 5, -2),
            ("*", 6, 7, 42),
            ("/", 7, 2, 3),
            ("/", -7, 2, -3),  # C-style truncation toward zero
            ("%", 7, 4, 3),
            ("%", -7, 4, -3),  # C-style remainder keeps dividend sign
            ("==", 2, 2, 1),
            ("!=", 2, 2, 0),
            ("<", 1, 2, 1),
            ("<=", 2, 2, 1),
            (">", 3, 2, 1),
            (">=", 1, 2, 0),
            ("&&", 1, 0, 0),
            ("||", 0, 2, 1),
            ("&", 6, 3, 2),
            ("|", 6, 3, 7),
            ("^", 6, 3, 5),
            ("<<", 1, 4, 16),
            (">>", 16, 2, 4),
        ],
    )
    def test_binary_ops(self, op, a, b, expected):
        ev = run(
            [TacInstr(OpKind.BINARY, dest=t("r"), op=op, args=[Const(a), Const(b)])]
        )
        assert ev.env[t("r")] == expected

    def test_division_by_zero_yields_zero(self):
        # Hardware ALUs don't trap; the datapath convention is 0.
        ev = run(
            [TacInstr(OpKind.BINARY, dest=t("r"), op="/", args=[Const(5), Const(0)])]
        )
        assert ev.env[t("r")] == 0

    def test_multiply_wraps_32bit(self):
        ev = run(
            [
                TacInstr(
                    OpKind.BINARY,
                    dest=t("r"),
                    op="*",
                    args=[Const(2**30), Const(4)],
                )
            ]
        )
        assert ev.env[t("r")] == 0

    def test_unary_ops(self):
        ev = run(
            [
                TacInstr(OpKind.UNARY, dest=t("a"), op="!", args=[Const(0)]),
                TacInstr(OpKind.UNARY, dest=t("b"), op="-", args=[Const(5)]),
            ]
        )
        assert ev.env[t("a")] == 1
        assert ev.env[t("b")] == -5

    def test_select(self):
        ev = run(
            [
                TacInstr(
                    OpKind.SELECT, dest=t("r"), args=[Const(1), Const(10), Const(20)]
                ),
                TacInstr(
                    OpKind.SELECT, dest=t("s"), args=[Const(0), Const(10), Const(20)]
                ),
            ]
        )
        assert ev.env[t("r")] == 10
        assert ev.env[t("s")] == 20

    def test_call_builtin(self):
        ev = run(
            [TacInstr(OpKind.CALL, dest=t("h"), op="max", args=[Const(3), Const(9)])]
        )
        assert ev.env[t("h")] == 9

    def test_read_write_field(self):
        headers = {"x": 5}
        ev = run(
            [
                TacInstr(OpKind.READ_FIELD, dest=t("a"), field_name="x"),
                TacInstr(OpKind.WRITE_FIELD, field_name="y", args=[t("a")]),
            ],
            headers=headers,
        )
        assert headers["y"] == 5

    def test_read_missing_field_defaults_zero(self):
        ev = run([TacInstr(OpKind.READ_FIELD, dest=t("a"), field_name="nope")])
        assert ev.env[t("a")] == 0

    def test_reg_read_write(self):
        regs = {"r": [10, 20]}
        ev = run(
            [
                TacInstr(OpKind.REG_READ, dest=t("v"), reg="r", args=[Const(1)]),
                TacInstr(
                    OpKind.BINARY, dest=t("w"), op="+", args=[t("v"), Const(1)]
                ),
                TacInstr(OpKind.REG_WRITE, reg="r", args=[Const(1), t("w")]),
            ],
            registers=regs,
        )
        assert regs["r"][1] == 21

    def test_reg_index_wraps(self):
        regs = {"r": [10, 20]}
        ev = run(
            [TacInstr(OpKind.REG_READ, dest=t("v"), reg="r", args=[Const(5)])],
            registers=regs,
        )
        assert ev.env[t("v")] == 20  # 5 % 2 == 1

    def test_guard_false_skips_access(self):
        regs = {"r": [10]}
        instrs = [
            TacInstr(OpKind.CONST, dest=t("g"), args=[Const(0)]),
            TacInstr(
                OpKind.REG_WRITE, reg="r", args=[Const(0), Const(99)], guard=t("g")
            ),
        ]
        run(instrs, registers=regs)
        assert regs["r"][0] == 10

    def test_guard_true_performs_access(self):
        regs = {"r": [10]}
        instrs = [
            TacInstr(OpKind.CONST, dest=t("g"), args=[Const(1)]),
            TacInstr(
                OpKind.REG_WRITE, reg="r", args=[Const(0), Const(99)], guard=t("g")
            ),
        ]
        run(instrs, registers=regs)
        assert regs["r"][0] == 99

    def test_on_access_callback_fires_only_when_guarded_true(self):
        seen = []
        regs = {"r": [0]}
        ev = TacEvaluator({}, regs, on_access=lambda reg, idx, kind: seen.append(kind))
        ev.run(
            [
                TacInstr(OpKind.CONST, dest=t("g0"), args=[Const(0)]),
                TacInstr(
                    OpKind.REG_READ, dest=t("a"), reg="r", args=[Const(0)], guard=t("g0")
                ),
                TacInstr(OpKind.REG_READ, dest=t("b"), reg="r", args=[Const(0)]),
            ]
        )
        assert seen == ["read"]

    def test_undefined_temp_raises(self):
        with pytest.raises(CompilerError, match="no value"):
            run([TacInstr(OpKind.BINARY, dest=t("r"), op="+", args=[t("x"), Const(1)])])


class TestProgramValidation:
    def test_use_before_def_rejected(self):
        prog = TacProgram(
            instrs=[
                TacInstr(OpKind.BINARY, dest=t("b"), op="+", args=[t("a"), Const(1)])
            ],
            packet_fields=[],
            registers={},
        )
        with pytest.raises(CompilerError, match="before definition"):
            prog.validate()

    def test_double_definition_rejected(self):
        prog = TacProgram(
            instrs=[
                TacInstr(OpKind.CONST, dest=t("a"), args=[Const(1)]),
                TacInstr(OpKind.CONST, dest=t("a"), args=[Const(2)]),
            ],
            packet_fields=[],
            registers={},
        )
        with pytest.raises(CompilerError, match="twice"):
            prog.validate()

    def test_valid_program_passes(self):
        prog = TacProgram(
            instrs=[
                TacInstr(OpKind.CONST, dest=t("a"), args=[Const(1)]),
                TacInstr(OpKind.BINARY, dest=t("b"), op="+", args=[t("a"), Const(1)]),
            ],
            packet_fields=[],
            registers={},
        )
        prog.validate()

    def test_str_rendering(self):
        instr = TacInstr(OpKind.BINARY, dest=t("x"), op="+", args=[Const(1), Const(2)])
        assert "x = 1 + 2" in str(instr)


class TestTempFactory:
    def test_unique_names(self):
        factory = TempFactory()
        names = {factory.fresh().name for _ in range(100)}
        assert len(names) == 100

    def test_hint_embedded(self):
        factory = TempFactory()
        assert "idx" in factory.fresh("idx").name
