"""The parallel sweep harness must be invisible in the results: any job
count produces exactly the serial output, in the same order."""

import pytest

import repro.harness.parallel as par
from repro.harness.parallel import (
    default_jobs,
    parallel_map,
    resolve_jobs,
    shutdown_pool,
)
from repro.harness.realapps import RealAppSettings, run_figure8
from repro.harness.sensitivity import SweepSettings, sweep_pipelines


def _default_pool():
    """The cached default-key pool executor (None when absent)."""
    state = par._pools.get(None)
    return None if state is None else state.pool


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(x)


@pytest.fixture(autouse=True)
def _teardown_pool():
    yield
    shutdown_pool()


def test_parallel_map_preserves_task_order():
    tasks = list(range(23))
    assert parallel_map(_square, tasks, jobs=3) == [x * x for x in tasks]


def test_parallel_map_serial_modes():
    assert parallel_map(_square, [1, 2, 3], jobs=None) == [1, 4, 9]
    assert parallel_map(_square, [1, 2, 3], jobs=1) == [1, 4, 9]
    assert parallel_map(_square, [7], jobs=8) == [49]  # single task: serial
    assert parallel_map(_square, [], jobs=8) == []


def test_resolve_jobs():
    assert resolve_jobs(None) == 1
    assert resolve_jobs(1) == 1
    assert resolve_jobs(5) == 5
    assert resolve_jobs(0) == default_jobs() >= 1
    with pytest.raises(ValueError):
        resolve_jobs(-2)


def test_worker_exception_propagates():
    with pytest.raises(ValueError):
        parallel_map(_boom, [1, 2, 3, 4], jobs=2)


def test_sweep_results_independent_of_jobs():
    settings = SweepSettings(num_packets=200, seeds=(0, 1))
    serial = sweep_pipelines(settings, values=(1, 2), jobs=1)
    parallel = sweep_pipelines(settings, values=(1, 2), jobs=2)
    assert serial == parallel


def test_figure8_results_independent_of_jobs():
    settings = RealAppSettings(num_packets=150, seeds=(0,))
    serial = run_figure8(pipeline_counts=(1, 2), settings=settings, jobs=1)
    parallel = run_figure8(pipeline_counts=(1, 2), settings=settings, jobs=2)
    assert serial == parallel


def test_pool_reused_across_sweep_families():
    """One reproduction run spans several sweep families; all of them
    must share a single worker pool (workers pay import cost once)."""
    sweep_settings = SweepSettings(num_packets=150, seeds=(0,))
    first = sweep_pipelines(sweep_settings, values=(1, 2), jobs=2)
    pool_after_fig7 = _default_pool()
    app_settings = RealAppSettings(num_packets=150, seeds=(0,))
    second = run_figure8(
        pipeline_counts=(1, 2), settings=app_settings, jobs=2
    )
    assert pool_after_fig7 is not None
    assert _default_pool() is pool_after_fig7
    # ...and sharing the pool is invisible in the results.
    assert first == sweep_pipelines(sweep_settings, values=(1, 2), jobs=1)
    assert second == run_figure8(
        pipeline_counts=(1, 2), settings=app_settings, jobs=1
    )


def test_pool_recreated_when_jobs_change():
    assert parallel_map(_square, list(range(6)), jobs=2) == [
        x * x for x in range(6)
    ]
    pool2 = _default_pool()
    assert parallel_map(_square, list(range(6)), jobs=3) == [
        x * x for x in range(6)
    ]
    assert _default_pool() is not pool2


def test_unproven_pool_failure_memoized(monkeypatch):
    """An environment where workers can never spawn pays the doomed
    attempt once; later families go straight to the serial path."""
    shutdown_pool()
    attempts = []

    class Doomed:
        def __init__(self, max_workers, **kwargs):
            attempts.append(max_workers)
            raise OSError("spawn forbidden")

    monkeypatch.setattr(par, "ProcessPoolExecutor", Doomed)
    assert parallel_map(_square, [1, 2, 3], jobs=2) == [1, 4, 9]
    assert parallel_map(_square, [4, 5, 6], jobs=2) == [16, 25, 36]
    assert attempts == [2]  # second family never retried
    assert par._pool_unavailable
    # shutdown_pool clears the verdict for a changed environment.
    shutdown_pool()
    assert not par._pool_unavailable


def test_proven_pool_breakage_not_memoized(monkeypatch):
    """A pool that already delivered results may break transiently
    (worker OOM-kill); the next sweep gets a fresh pool."""
    assert parallel_map(_square, list(range(6)), jobs=2) == [
        x * x for x in range(6)
    ]
    assert par._pools[None].proven
    broken = _default_pool()

    def explode(*args, **kwargs):
        raise par.BrokenProcessPool("worker died")

    monkeypatch.setattr(broken, "map", explode)
    assert parallel_map(_square, [7, 8], jobs=2) == [49, 64]  # serial fallback
    assert not par._pool_unavailable
    assert parallel_map(_square, [9, 10], jobs=2) == [81, 100]
    assert _default_pool() is not broken
