"""Tests for PVSM construction (the pipelining phase)."""

import pytest

from repro.compiler import preprocess, schedule
from repro.compiler.pvsm import DependenceGraph
from repro.domino import analyze, parse, get_program


def tac_of(body, regs="", fields="int a; int b; int c;"):
    program = parse(
        f"struct Packet {{ {fields} }};\n{regs}\n"
        f"void func(struct Packet p) {{ {body} }}"
    )
    analyze(program)
    return preprocess(program)


class TestDependenceGraph:
    def test_def_use_edges(self):
        tac = tac_of("int x = p.a + 1; p.b = x * 2;")
        graph = DependenceGraph(tac.instrs)
        # Every instruction with uses has at least one predecessor
        # (except field reads and consts).
        for n, instr in enumerate(graph.instrs):
            for used in instr.uses():
                assert any(
                    graph.instrs[m].defines() == used for m in graph.preds[n]
                )

    def test_read_write_order_edge(self):
        tac = tac_of("r[0] = p.a;", regs="int r[1];")
        graph = DependenceGraph(tac.instrs)
        read = next(i for i, x in enumerate(graph.instrs) if x.kind.value == "reg_read")
        write = next(
            i for i, x in enumerate(graph.instrs) if x.kind.value == "reg_write"
        )
        assert read in graph.preds[write]

    def test_reachability(self):
        tac = tac_of("int x = p.a; int y = x + 1; p.b = y;")
        graph = DependenceGraph(tac.instrs)
        assert graph.reachable_from(0) >= {0}
        assert graph.reaching(len(graph.instrs) - 1) >= {len(graph.instrs) - 1}


class TestScheduling:
    def test_stateless_program_single_stage_possible(self):
        tac = tac_of("p.a = p.b;")
        pvsm = schedule(tac)
        assert pvsm.num_stages >= 1
        assert pvsm.stateful_stages == []

    def test_dependent_ops_in_order(self):
        tac = tac_of("int x = p.a + 1; p.b = x * 2;")
        pvsm = schedule(tac)
        # Execution order across stages must match TAC order semantics:
        # concatenating stages yields a valid execution.
        flat = pvsm.all_instrs()
        defined = set()
        for instr in flat:
            for used in instr.uses():
                assert used in defined
            if instr.defines():
                defined.add(instr.defines())

    def test_cluster_holds_read_and_write_together(self):
        tac = tac_of("r[0] = r[0] + p.a;", regs="int r[1];")
        pvsm = schedule(tac)
        stage = pvsm.stage_of_array("r")
        instrs = pvsm.stages[stage].instrs
        assert any(i.kind.value == "reg_read" for i in instrs)
        assert any(i.kind.value == "reg_write" for i in instrs)

    def test_dependent_arrays_in_different_stages(self):
        tac = tac_of(
            "p.a = r1[0]; r2[0] = p.a + 1;", regs="int r1[1]; int r2[1];"
        )
        pvsm = schedule(tac)
        assert pvsm.stage_of_array("r1") < pvsm.stage_of_array("r2")

    def test_independent_arrays_share_stage_without_serialization(self):
        tac = tac_of(
            "r1[0] = p.a; r2[0] = p.b;", regs="int r1[1]; int r2[1];"
        )
        pvsm = schedule(tac, serialize_arrays=False)
        assert pvsm.stage_of_array("r1") == pvsm.stage_of_array("r2")

    def test_serialization_separates_arrays(self):
        tac = tac_of(
            "r1[0] = p.a; r2[0] = p.b;", regs="int r1[1]; int r2[1];"
        )
        pvsm = schedule(tac, serialize_arrays=True)
        assert pvsm.stage_of_array("r1") != pvsm.stage_of_array("r2")

    def test_serialization_respects_dependencies(self):
        tac = tac_of(
            "p.a = r1[0]; r2[0] = p.a; r3[0] = p.b;",
            regs="int r1[1]; int r2[1]; int r3[1];",
        )
        pvsm = schedule(tac, serialize_arrays=True)
        stages = {r: pvsm.stage_of_array(r) for r in ("r1", "r2", "r3")}
        assert stages["r1"] < stages["r2"]
        assert len(set(stages.values())) == 3

    def test_min_cluster_level(self):
        tac = tac_of("r[0] = r[0] + 1;", regs="int r[1];")
        pvsm = schedule(tac, min_cluster_level=3)
        assert pvsm.stage_of_array("r") >= 3

    def test_mutually_dependent_arrays_fused(self):
        # swap: each array's write needs the other's read.
        tac = tac_of(
            "int t = r1[0]; r1[0] = r2[0]; r2[0] = t;",
            regs="int r1[1] = {1}; int r2[1] = {2};",
        )
        pvsm = schedule(tac)
        assert pvsm.stage_of_array("r1") == pvsm.stage_of_array("r2")

    def test_conga_fuses_pair_atoms(self):
        from repro.compiler import preprocess as pp

        tac = pp(get_program("conga"))
        pvsm = schedule(tac, serialize_arrays=True)
        assert pvsm.stage_of_array("best_path") == pvsm.stage_of_array(
            "best_path_util"
        )

    def test_stage_of_unknown_array_raises(self):
        tac = tac_of("p.a = p.b;")
        pvsm = schedule(tac)
        with pytest.raises(KeyError):
            pvsm.stage_of_array("ghost")

    def test_stateful_stage_listing(self):
        tac = tac_of(
            "r1[0] = p.a; r2[0] = p.b;", regs="int r1[1]; int r2[1];"
        )
        pvsm = schedule(tac, serialize_arrays=True)
        assert len(pvsm.stateful_stages) == 2

    def test_str_rendering(self):
        tac = tac_of("r[0] = p.a;", regs="int r[1];")
        text = str(schedule(tac))
        assert "stage" in text
