"""MP5 core: the multi-pipelined programmable switch (architecture + runtime).

The four design decisions of §3 map onto this package:

* **D1** (k identical feed-forward pipelines) — the occupancy grid and
  per-tick movement in :mod:`repro.mp5.switch` (fast sparse engine) and
  :mod:`repro.mp5.reference` (dense executable specification).
* **D2** (dynamically sharded register state) — the index-to-pipeline
  map, access/in-flight counters, the Figure 6 remap heuristic, and the
  emergency evacuation used under faults, all in
  :mod:`repro.mp5.sharding`.
* **D3** (inter-stage crossbars) — steering happens inline in the
  engines; :mod:`repro.mp5.crossbar` adds the telemetry/assertion model.
* **D4** (phantom packets + per-stage k-FIFO groups) — the
  push/insert/pop discipline of :mod:`repro.mp5.fifo`, which enforces
  correctness condition **C1**: every register state is accessed in
  packet-arrival order (accounting in :mod:`repro.mp5.stats`).

Three engines execute the same semantics and are differentially tested
against each other (``tests/test_fastpath_equivalence.py``,
``tests/test_vector_equivalence.py``):

* ``dense`` — :class:`~repro.mp5.reference.ReferenceSwitch`, the
  executable specification (full per-tick occupancy scan);
* ``fast`` — :class:`~repro.mp5.switch.MP5Switch`, the sparse worklist
  engine, and the only one that supports every config knob and faults;
* ``vector`` — :class:`~repro.mp5.vector.VectorSwitch`, the
  structure-of-arrays NumPy batch engine; falls back to ``fast`` when a
  run needs something the batch reduction cannot express (faults,
  unsupported configs or program shapes). Observability sinks attach
  natively: the engine reconstructs the scalar engines' event stream
  from its epoch schedule (:mod:`repro.obs.reconstruct`). Its run
  splits into an exact timing sweep and a service replay
  (:mod:`repro.mp5.epochs`), which optionally engages the fused native
  kernel tier (:mod:`repro.compiler.native`, ``native=True``) and
  residue-class multi-core execution (``epoch_jobs``) — both
  byte-identical to the plain NumPy path.

Pick one by name through :data:`ENGINES` (the ``--engine`` CLI flag)::

    from repro.mp5 import ENGINES

    stats, registers = ENGINES["vector"](program, trace, config)

Public surface::

    from repro.mp5 import MP5Switch, MP5Config, run_mp5

    program = compile_program("flowlet")
    stats, registers = run_mp5(program, trace, MP5Config(num_pipelines=4))
"""

from ..compiler.native import native_available, native_unavailable_reason
from .config import MP5Config
from .crossbar import CrossbarTelemetry
from .epochs import (
    EpochSchedule,
    EpochStreamer,
    build_epoch_schedule,
    execute_epoch_service,
    execute_service,
)
from .fifo import IdealOrderBuffer, Slot, StageFifoGroup
from .packet import DataPacket, PhantomPacket, StateAccess
from .partition import LogicalPartition, PartitionedMP5, PartitionResult
from .reference import ReferenceSwitch, run_mp5_reference
from .sharding import ShardedArray, ShardingRuntime
from .stats import C1Report, SwitchStats, c1_metrics, c1_violations
from .switch import FLOW_ORDER_ARRAY, MP5Switch, run_mp5
from .vector import VectorSwitch, VectorUnsupported, run_mp5_vector

#: Engine registry: every runner shares the signature of
#: :func:`~repro.mp5.switch.run_mp5` and produces identical results.
ENGINES = {
    "dense": run_mp5_reference,
    "fast": run_mp5,
    "vector": run_mp5_vector,
}

__all__ = [
    "ENGINES",
    "EpochSchedule",
    "EpochStreamer",
    "VectorSwitch",
    "VectorUnsupported",
    "build_epoch_schedule",
    "execute_epoch_service",
    "execute_service",
    "native_available",
    "native_unavailable_reason",
    "run_mp5_vector",
    "CrossbarTelemetry",
    "DataPacket",
    "FLOW_ORDER_ARRAY",
    "IdealOrderBuffer",
    "LogicalPartition",
    "PartitionResult",
    "PartitionedMP5",
    "MP5Config",
    "MP5Switch",
    "PhantomPacket",
    "ReferenceSwitch",
    "ShardedArray",
    "ShardingRuntime",
    "Slot",
    "StageFifoGroup",
    "StateAccess",
    "C1Report",
    "SwitchStats",
    "c1_metrics",
    "c1_violations",
    "run_mp5",
    "run_mp5_reference",
]
