"""White-box tests of MP5Switch internals: drop cleanup, steering
metadata validity under remapping, resolution details."""

import pytest

from repro.compiler import compile_program
from repro.mp5 import MP5Config, MP5Switch
from repro.workloads import (
    clone_packets,
    line_rate_trace,
    make_sensitivity_program,
    sensitivity_trace,
)


class TestDropCleanup:
    def test_dropped_packet_releases_in_flight_counters(self):
        program = compile_program("heavy_hitter")
        trace = line_rate_trace(
            400, 4, lambda r, i: {"src_ip": int(r.integers(0, 4)), "hot": 0}, seed=0
        )
        switch = MP5Switch(program, MP5Config(num_pipelines=4, fifo_capacity=2))
        stats = switch.run(trace)
        assert stats.dropped > 0
        # After the run drains, every in-flight counter is back to zero —
        # a leak would permanently block remapping of those indexes.
        assert int(switch.sharder.arrays["counts"].in_flight.sum()) == 0

    def test_dropped_packet_phantoms_do_not_block_forever(self):
        # Two stateful stages: packets dropped at the first stage have a
        # phantom waiting at the second; it must be expired, or the
        # second stage would deadlock.
        program = make_sensitivity_program(2, 2)
        trace = sensitivity_trace(400, 4, 2, 2, pattern="uniform", seed=0)
        switch = MP5Switch(program, MP5Config(num_pipelines=4, fifo_capacity=2))
        stats = switch.run(trace)
        assert stats.dropped > 0
        assert stats.egressed + stats.dropped == stats.offered
        # All queues fully drained.
        for fifo in switch.fifos.values():
            assert fifo.data_occupancy() == 0

    def test_drop_reason_propagates(self):
        program = compile_program("sequencer")
        trace = line_rate_trace(300, 4, lambda r, i: {"seq": 0}, seed=0)
        packets = clone_packets(trace)
        switch = MP5Switch(program, MP5Config(num_pipelines=4, fifo_capacity=1))
        switch.run(packets)
        dropped = [p for p in packets if p.dropped]
        assert dropped
        assert all(p.egress_tick is None for p in dropped)


class TestSteeringMetadataValidity:
    def test_in_flight_indexes_never_remapped(self):
        # Instrumented run: after every tick, any index with in-flight
        # packets must still map to the pipeline its packets were
        # resolved to. We approximate by checking the engine completes a
        # heavy remapping run without no_phantom drops, which is the
        # failure signature of stale steering metadata.
        program = compile_program("heavy_hitter")
        trace = line_rate_trace(
            3000,
            4,
            lambda r, i: {"src_ip": int(r.integers(0, 32)), "hot": 0},
            seed=1,
        )
        switch = MP5Switch(
            program, MP5Config(num_pipelines=4, remap_period=10)
        )
        stats = switch.run(trace)
        assert stats.drops_no_phantom == 0
        assert stats.dropped == 0
        assert stats.remap_moves > 0

    def test_remap_moves_counted_per_changed_array(self):
        program = make_sensitivity_program(4, 64)
        trace = sensitivity_trace(2000, 4, 4, 64, pattern="skewed", seed=2)
        switch = MP5Switch(program, MP5Config(num_pipelines=4, remap_period=25))
        stats = switch.run(trace)
        total_array_moves = sum(
            state.moves for state in switch.sharder.arrays.values()
        )
        assert stats.remap_moves == total_array_moves


class TestResolutionDetails:
    def test_entry_metadata_recorded(self):
        program = compile_program("heavy_hitter")
        trace = line_rate_trace(
            40, 4, lambda r, i: {"src_ip": i, "hot": 0}, seed=0
        )
        packets = clone_packets(trace)
        switch = MP5Switch(program, MP5Config(num_pipelines=4))
        switch.run(packets)
        for pkt in packets:
            assert 0 <= pkt.entry_pipeline < 4
            assert pkt.entry_tick >= 0
            assert len(pkt.accesses) == 1
            assert pkt.accesses[0].completed

    def test_spray_is_round_robin_in_arrival_order(self):
        program = compile_program("stateless_rewrite")
        trace = line_rate_trace(
            8, 4, lambda r, i: {"ttl": 64, "dscp": 0, "out": 0}, seed=0
        )
        packets = clone_packets(trace)
        switch = MP5Switch(program, MP5Config(num_pipelines=4))
        switch.run(packets)
        pipes = [p.entry_pipeline for p in sorted(packets, key=lambda p: p.pkt_id)]
        assert pipes == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_resolved_index_wraps_array_size(self):
        program = compile_program("heavy_hitter")  # counts[4096]
        trace = line_rate_trace(
            10, 2, lambda r, i: {"src_ip": 2**30 + i, "hot": 0}, seed=0
        )
        packets = clone_packets(trace)
        switch = MP5Switch(program, MP5Config(num_pipelines=2))
        switch.run(packets)
        for pkt in packets:
            assert 0 <= pkt.accesses[0].index < 4096

    def test_depth_extends_to_pipeline_depth(self):
        program = compile_program("packet_counter")  # 2 stages
        switch = MP5Switch(program, MP5Config(num_pipelines=2, pipeline_depth=16))
        assert switch.depth == 16

    def test_depth_grows_for_deep_programs(self):
        program = compile_program("bloom_filter")  # 8 stages
        switch = MP5Switch(program, MP5Config(num_pipelines=2, pipeline_depth=4))
        assert switch.depth == program.stage_count


class TestAffinitySpray:
    def test_affinity_reduces_steering(self):
        from repro.mp5 import MP5Config, MP5Switch

        program = compile_program("heavy_hitter")
        trace = line_rate_trace(
            1500, 4, lambda r, i: {"src_ip": int(r.integers(0, 512)), "hot": 0},
            seed=5,
        )
        results = {}
        for policy in ("roundrobin", "affinity"):
            switch = MP5Switch(
                program, MP5Config(num_pipelines=4, spray_policy=policy)
            )
            stats = switch.run(clone_packets(trace))
            results[policy] = stats
        assert (
            results["affinity"].steering_moves
            < results["roundrobin"].steering_moves
        )
        assert results["affinity"].throughput_normalized() >= (
            results["roundrobin"].throughput_normalized() - 0.03
        )

    def test_affinity_preserves_equivalence(self):
        from repro.equivalence import check_equivalence
        from repro.mp5 import MP5Config

        program = compile_program("figure3")
        trace = line_rate_trace(
            400,
            2,
            lambda r, i: {
                "h1": int(r.integers(0, 4)),
                "h2": int(r.integers(0, 4)),
                "h3": int(r.integers(0, 4)),
                "mux": int(r.integers(0, 2)),
                "val": 0,
            },
            seed=6,
        )
        report = check_equivalence(
            program, trace, MP5Config(num_pipelines=2, spray_policy="affinity")
        )
        assert report.equivalent
        assert report.c1_violating_packets == 0

    def test_stateless_program_falls_back_to_roundrobin(self):
        from repro.mp5 import MP5Config, MP5Switch

        program = compile_program("stateless_rewrite")
        trace = line_rate_trace(
            8, 4, lambda r, i: {"ttl": 64, "dscp": 0, "out": 0}, seed=0
        )
        packets = clone_packets(trace)
        switch = MP5Switch(
            program, MP5Config(num_pipelines=4, spray_policy="affinity")
        )
        switch.run(packets)
        pipes = [p.entry_pipeline for p in sorted(packets, key=lambda p: p.pkt_id)]
        assert pipes == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_unknown_policy_rejected(self):
        from repro.errors import ConfigError
        from repro.mp5 import MP5Config

        with pytest.raises(ConfigError):
            MP5Config(spray_policy="magic")
