"""The MP5 compiler: Domino source -> Banzai/MP5 pipeline configuration.

Pipeline of phases (Figure 5 of the paper)::

    Domino AST --preprocess--> three-address code
               --pipelining--> PVSM
               --PVSM-to-PVSM transform--> PVSM w/ address resolution
               --code generation--> CompiledProgram

The top-level entry point is :func:`compile_program`::

    from repro.compiler import compile_program, BanzaiTarget

    compiled = compile_program("flowlet")                  # bundled name
    compiled = compile_program(source_text)                # raw Domino
    compiled = compile_program(ast, target=BanzaiTarget(num_stages=8))
"""

from __future__ import annotations

from typing import Optional, Union

from ..domino.ast_nodes import Program
from ..domino.parser import parse
from ..domino.programs import PROGRAM_SOURCES, get_program
from ..domino.semantic import analyze
from ..errors import ResourceError
from .codegen import BanzaiTarget, CompiledProgram, StageProgram, generate
from .preprocess import preprocess
from .pvsm import Pvsm, PvsmStage, schedule
from .tac import (
    Const,
    OpKind,
    Operand,
    TacEvaluator,
    TacInstr,
    TacProgram,
    Temp,
    TempFactory,
)
from .transformer import ArrayPlan, TransformedProgram, transform

__all__ = [
    "ArrayPlan",
    "BanzaiTarget",
    "CompiledProgram",
    "Const",
    "OpKind",
    "Operand",
    "Pvsm",
    "PvsmStage",
    "StageProgram",
    "TacEvaluator",
    "TacInstr",
    "TacProgram",
    "Temp",
    "TempFactory",
    "TransformedProgram",
    "compile_program",
    "generate",
    "preprocess",
    "schedule",
    "transform",
]


def compile_program(
    program: Union[str, Program],
    target: Optional[BanzaiTarget] = None,
    name: Optional[str] = None,
) -> CompiledProgram:
    """Compile a Domino program for an MP5 target.

    ``program`` may be a bundled program name (see
    :func:`repro.domino.program_names`), raw Domino source text, or an
    already-parsed :class:`~repro.domino.Program` (it will be semantically
    checked if given as source).

    Tries the fully serialized schedule first (one register array per
    stage, all arrays sharding-eligible); if that exceeds the target's
    stage budget, falls back to co-staging arrays and pinning them to a
    common pipeline, per §3.3.
    """
    if isinstance(program, str):
        if program in PROGRAM_SOURCES:
            ast = get_program(program)
            name = name or program
        else:
            ast = parse(program, source_name=name or "<domino>")
            analyze(ast)
    else:
        ast = program
    name = name or ast.source_name

    target = target or BanzaiTarget()
    tac = preprocess(ast)

    transformed = transform(tac, serialize_arrays=True)
    if transformed.num_stages > target.num_stages:
        transformed = transform(tac, serialize_arrays=False)
    return generate(transformed, target, name=name)
